"""Figure 5 — SRS vs TWCS sample size and evaluation time as the confidence level varies."""

from __future__ import annotations

from conftest import bench_trials, emit, movie_scale, run_once

from repro.experiments import figure5_confidence_sweep, format_table


def test_figure5_confidence_sweep(benchmark):
    rows = run_once(
        benchmark,
        figure5_confidence_sweep,
        num_trials=bench_trials(),
        seed=0,
        movie_scale=movie_scale(),
    )
    emit(
        "Figure 5: sample size / evaluation time vs confidence level "
        "(paper: TWCS up to ~20% cheaper)",
        format_table(
            rows,
            columns=[
                "dataset",
                "confidence_level",
                "method",
                "num_units",
                "num_triples",
                "num_entities",
                "annotation_hours",
                "cost_reduction_vs_srs",
            ],
        )
        + "\nexpected shape: TWCS identifies fewer entities than SRS;"
        + " positive cost reduction on MOVIE/NELL,"
        + "\n                near-zero (possibly negative) reduction on the highly accurate YAGO",
    )
    movie_twcs = [
        row
        for row in rows
        if row["dataset"] == "MOVIE" and row["method"] == "TWCS" and row["confidence_level"] == 0.95
    ]
    assert movie_twcs and movie_twcs[0]["cost_reduction_vs_srs"] > 0.0
