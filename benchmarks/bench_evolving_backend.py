"""Evolving-KG backend benchmark: columnar + delta segments vs in-memory.

Reproduces the Figure 8/9 update loops — base evaluation followed by a stream
of insertion batches handled by the position-surface incremental evaluators
(Algorithms 1 and 2) — on a >=1M-triple synthetic KG, once per storage
backend:

* **memory** — the evolving graph is a full object copy of the base
  (O(M) per-triple adds before the first batch even arrives) and position
  draws go through the dict-of-lists cluster index;
* **columnar** — the evolving graph is a zero-copy
  :class:`~repro.storage.delta.DeltaStore` view over the frozen columnar
  base, update batches append CSR segments, and draws run on the frozen CSR
  index.

Because position-mode evaluators consume the random stream identically on
every backend, the two runs must produce **bit-identical** estimate
trajectories — the benchmark asserts that — while the columnar run is
expected to finish the whole update loop >=3x faster at 1M triples (the
speed assertion is only enforced at full scale so the CI smoke run at ~50k
triples stays a correctness check).

Environment knobs: ``REPRO_BENCH_EVOLVING_TRIPLES`` (default 1_000_000)
scales the KG; ``REPRO_BENCH_EVOLVING_BATCHES`` (default 5) and
``REPRO_BENCH_EVOLVING_BATCH_FRACTION`` (default 0.01) shape the update
stream.  Set ``REPRO_BENCH_RESULTS_DIR`` to also dump the raw numbers as
JSON (uploaded as a CI artifact by the benchmark-smoke job).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

# --------------------------------------------------------------------------- #
# Shared configuration
# --------------------------------------------------------------------------- #
_TARGET_TRIPLES = int(os.environ.get("REPRO_BENCH_EVOLVING_TRIPLES", 1_000_000))
_NUM_BATCHES = int(os.environ.get("REPRO_BENCH_EVOLVING_BATCHES", 5))
_BATCH_FRACTION = float(os.environ.get("REPRO_BENCH_EVOLVING_BATCH_FRACTION", 0.01))
_FULL_SCALE = 1_000_000
_MEAN_CLUSTER_SIZE = 9.0
_GRAPH_SEED = 0
_LABEL_SEED = 1
_EVAL_SEED = 2
_WORKLOAD_SEED = 3
_ACCURACY = 0.9
_UPDATE_ACCURACY = 0.7


def _kg_config():
    from repro.generators.synthetic_kg import SyntheticKGConfig

    num_entities = max(10, int(round(_TARGET_TRIPLES / _MEAN_CLUSTER_SIZE * 1.04)))
    return SyntheticKGConfig(
        num_entities=num_entities,
        mean_cluster_size=_MEAN_CLUSTER_SIZE,
        size_skew=1.1,
        max_cluster_size=500,
        name="bench-evolving",
    )


# --------------------------------------------------------------------------- #
# Subprocess worker
# --------------------------------------------------------------------------- #
def _worker_run(backend: str, method: str) -> dict:
    """Run one evaluator's full update loop on one backend (fresh process,
    so neither warm string-hash caches nor a polluted shared vocabulary can
    distort the comparison)."""
    import numpy as np

    from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
    from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
    from repro.generators.datasets import LabelledKG
    from repro.generators.synthetic_kg import generate_kg
    from repro.generators.workload import UpdateWorkloadGenerator
    from repro.labels.oracle import LabelOracle

    started = time.perf_counter()
    graph = generate_kg(_kg_config(), seed=_GRAPH_SEED, backend=backend)
    build_seconds = time.perf_counter() - started

    label_array = np.random.default_rng(_LABEL_SEED).random(graph.num_triples) < _ACCURACY
    # The position surface reads ground truth from the label array, so the
    # Triple-keyed oracle can stay an empty stub even at 1M triples.
    base = LabelledKG(graph, LabelOracle({}, strict=False))

    # Pre-generate the identical update stream outside the timed section.
    workload = UpdateWorkloadGenerator(base, seed=_WORKLOAD_SEED)
    batch_size = max(1, int(round(_BATCH_FRACTION * graph.num_triples)))
    updates = list(workload.generate_sequence(_NUM_BATCHES, batch_size, _UPDATE_ACCURACY))

    cls = {
        "SS": StratifiedIncrementalEvaluator,
        "RS": ReservoirIncrementalEvaluator,
    }[method]
    started = time.perf_counter()
    evaluator = cls(base, seed=_EVAL_SEED, surface="position", position_labels=label_array)
    setup_seconds = time.perf_counter() - started

    started = time.perf_counter()
    evaluator.evaluate_base()
    base_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for batch, batch_oracle in updates:
        evaluator.apply_update(batch, batch_oracle)
    batches_seconds = time.perf_counter() - started

    return {
        "backend": backend,
        "method": method,
        "num_triples": graph.num_triples,
        "num_entities": graph.num_entities,
        "build_seconds": build_seconds,
        "num_batches": _NUM_BATCHES,
        "batch_size": batch_size,
        "setup_seconds": setup_seconds,
        "base_eval_seconds": base_seconds,
        "batches_seconds": batches_seconds,
        "loop_seconds": setup_seconds + base_seconds + batches_seconds,
        "estimates": [e.accuracy for e in evaluator.history],
        "moes": [e.report.margin_of_error for e in evaluator.history],
        "cost_hours": evaluator.total_cost_hours,
        "true_accuracy": evaluator.current_true_accuracy(),
    }


def _run_worker(backend: str, method: str) -> dict:
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else "")
    completed = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), backend, method],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if completed.returncode != 0:
        raise RuntimeError(f"worker {backend}/{method} failed:\n{completed.stderr}")
    return json.loads(completed.stdout.strip().splitlines()[-1])


def _dump_results(name: str, payload: dict) -> None:
    results_dir = os.environ.get("REPRO_BENCH_RESULTS_DIR")
    if not results_dir:
        return
    target = Path(results_dir)
    target.mkdir(parents=True, exist_ok=True)
    with open(target / f"{name}.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


# --------------------------------------------------------------------------- #
# Benchmark
# --------------------------------------------------------------------------- #
def test_evolving_backend_update_loop(benchmark):
    from conftest import emit, run_once

    def run_comparison():
        return {
            method: {backend: _run_worker(backend, method) for backend in ("memory", "columnar")}
            for method in ("SS", "RS")
        }

    results = run_once(benchmark, run_comparison)
    _dump_results("bench_evolving_backend", results)

    reference = results["SS"]["memory"]
    lines = [
        f"{'':34}{'memory':>12}{'columnar':>12}{'speedup':>9}",
        f"{'graph build seconds':34}{reference['build_seconds']:>12.1f}"
        f"{results['SS']['columnar']['build_seconds']:>12.1f}",
    ]
    speedups = {}
    for method in ("SS", "RS"):
        mem, col = results[method]["memory"], results[method]["columnar"]
        speedups[method] = mem["loop_seconds"] / col["loop_seconds"]
        lines += [
            f"{method + ' setup (evolving view) s':34}{mem['setup_seconds']:>12.2f}"
            f"{col['setup_seconds']:>12.2f}",
            f"{method + ' base evaluation s':34}{mem['base_eval_seconds']:>12.2f}"
            f"{col['base_eval_seconds']:>12.2f}",
            f"{method + ' update batches s':34}{mem['batches_seconds']:>12.2f}"
            f"{col['batches_seconds']:>12.2f}",
            f"{method + ' update loop total s':34}{mem['loop_seconds']:>12.2f}"
            f"{col['loop_seconds']:>12.2f}{speedups[method]:>8.1f}x",
            f"{method + ' final estimate':34}{mem['estimates'][-1]:>12.4f}"
            f"{col['estimates'][-1]:>12.4f}",
        ]
    emit(
        "Evolving update loop: columnar + delta segments vs in-memory copy "
        f"({reference['num_triples']:,} triples, {reference['num_batches']} batches "
        f"of {reference['batch_size']:,})",
        "\n".join(lines),
    )

    for method in ("SS", "RS"):
        mem, col = results[method]["memory"], results[method]["columnar"]
        assert mem["num_triples"] == col["num_triples"]
        # The statistical contract: same seed, same draws, same labels on
        # both backends — the trajectories must match bit for bit.
        assert mem["estimates"] == col["estimates"], method
        assert mem["moes"] == col["moes"], method
        assert mem["cost_hours"] == col["cost_hours"], method
        assert mem["true_accuracy"] == col["true_accuracy"], method
        # Sanity: the estimate tracks the (diluted) true accuracy.
        assert abs(mem["estimates"][-1] - mem["true_accuracy"]) < 0.08
    if reference["num_triples"] >= _FULL_SCALE:
        for method, speedup in speedups.items():
            assert speedup >= 3.0, (
                f"{method} update-loop speedup {speedup:.1f}x below the 3x target"
            )


# --------------------------------------------------------------------------- #
# Worker entry point
# --------------------------------------------------------------------------- #
if __name__ == "__main__":
    print(json.dumps(_worker_run(sys.argv[1], sys.argv[2])))
