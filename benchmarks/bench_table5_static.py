"""Table 5 — SRS / RCS / WCS / TWCS annotation cost and estimates on MOVIE, NELL, YAGO."""

from __future__ import annotations

from conftest import bench_trials, emit, movie_scale, run_once

from repro.experiments import format_table, table5_static_comparison


def test_table5_static_comparison(benchmark):
    rows = run_once(
        benchmark,
        table5_static_comparison,
        num_trials=bench_trials(),
        seed=0,
        movie_scale=movie_scale(),
    )
    emit(
        "Table 5: static-KG evaluation (paper: TWCS cheapest everywhere; RCS worst)",
        format_table(
            rows,
            columns=[
                "dataset",
                "method",
                "gold_accuracy",
                "annotation_hours",
                "annotation_hours_std",
                "accuracy_estimate",
                "accuracy_estimate_std",
                "num_triples",
                "num_entities",
            ],
        )
        + "\nexpected shape: TWCS lowest annotation_hours per dataset;"
        + " all estimates within a few points of gold",
    )
    for dataset in {row["dataset"] for row in rows}:
        subset = {
            row["method"]: row["annotation_hours"]
            for row in rows
            if row["dataset"] == dataset
        }
        assert subset["TWCS"] <= subset["RCS"]
        assert subset["TWCS"] <= subset["WCS"] * 1.25
