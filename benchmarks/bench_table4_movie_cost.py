"""Table 4 — manual evaluation cost on MOVIE: SRS vs TWCS (m=10)."""

from __future__ import annotations

from conftest import bench_trials, emit, movie_scale, run_once

from repro.experiments import format_table, table4_movie_cost


def test_table4_movie_cost(benchmark):
    rows = run_once(
        benchmark,
        table4_movie_cost,
        num_trials=bench_trials(),
        seed=0,
        movie_scale=movie_scale(),
    )
    emit(
        "Table 4: MOVIE evaluation cost (paper: SRS 3.53h/174 triples, TWCS 1.4h/24 entities)",
        format_table(
            rows,
            columns=[
                "method",
                "num_entities",
                "num_triples",
                "annotation_hours",
                "annotation_hours_std",
                "accuracy_estimate",
                "moe",
            ],
        )
        + "\nexpected shape: TWCS identifies far fewer entities and costs noticeably less than SRS",
    )
    by_method = {row["method"]: row for row in rows}
    srs = by_method["SRS"]
    twcs = next(row for name, row in by_method.items() if name.startswith("TWCS"))
    assert twcs["num_entities"] < srs["num_entities"]
