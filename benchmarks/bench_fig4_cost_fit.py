"""Figure 4 — fitting the annotation cost function Eq. (4) to observed task times."""

from __future__ import annotations

from conftest import emit, movie_scale, run_once

from repro.experiments import figure4_cost_fit, format_table


def test_figure4_cost_fit(benchmark):
    result = run_once(benchmark, figure4_cost_fit, seed=0, movie_scale=movie_scale())
    rows = [
        {
            "task": index,
            "entities": obs.num_entities,
            "triples": obs.num_triples,
            "observed_minutes": obs.observed_seconds / 60,
            "fitted_minutes": predicted / 60,
        }
        for index, (obs, predicted) in enumerate(zip(result.observations, result.predicted_seconds))
    ]
    emit(
        "Figure 4: cost-function fit",
        format_table(rows)
        + f"\nfitted c1={result.fit.identification_cost:.1f}s (paper: 45s), "
        + f"c2={result.fit.validation_cost:.1f}s (paper: 25s), R^2={result.fit.r_squared:.3f}",
    )
    assert result.fit.r_squared > 0.7
