"""Table 3 — data characteristics of the evaluation datasets (synthetic stand-ins)."""

from __future__ import annotations

from conftest import emit, movie_scale, run_once

from repro.experiments import format_table, table3_dataset_characteristics


def test_table3_dataset_characteristics(benchmark):
    rows = run_once(benchmark, table3_dataset_characteristics, seed=0, movie_scale=movie_scale())
    emit(
        "Table 3: dataset characteristics (stand-in vs published)",
        format_table(
            rows,
            columns=[
                "dataset",
                "num_entities",
                "paper_entities",
                "num_triples",
                "paper_triples",
                "avg_cluster_size",
                "gold_accuracy",
                "paper_accuracy",
            ],
        )
        + "\nexpected shape: NELL/YAGO match the published sizes exactly;"
        + " MOVIE is a documented scale-down"
        + "\n                with the published average cluster size and gold accuracy",
    )
    by_name = {row["dataset"]: row for row in rows}
    assert by_name["NELL-like"]["num_entities"] == 817
    assert by_name["YAGO-like"]["num_entities"] == 822
    assert abs(by_name["MOVIE-like"]["gold_accuracy"] - 0.90) < 0.03
