"""Parallel shard-per-CSR-range draw engine vs the serial position surface.

Builds a >=1M-triple synthetic KG on the columnar backend, then times one
large TWCS draw/estimate loop four ways:

* **serial design loop** — the single-stream position surface
  (``draw_positions`` / ``update_all_positions``), the PR-1 fast path;
* **engine, serial** — the sharded engine executing every shard task
  in-process (``workers=None``): the parity reference;
* **engine, pool** — the same plan fanned across ``REPRO_BENCH_PARALLEL_
  WORKERS`` processes;
* **engine, auto** — the adaptive planner's pick, calibrated from this very
  run's serial/pool measurements, executed twice: once cold (paying any
  pool/segment startup) and once warm (adopting the parked keep-alive
  pool).  The planner is pinned to the same shard count, so its run must
  be bit-identical to the serial engine whatever transport it picks.

The statistical contract is asserted unconditionally: the pool and auto
runs must be **bit-identical** (estimates and Eq. (4) cost) to the serial
engine run, all must agree with the ground truth to sampling accuracy, and
the planner's *never-slower-than-serial* invariant is gated at every scale:
the warm auto run must stay within 10% of the serial engine plus an
absolute noise floor.  The >=2.5x pool speedup and the >=2x auto-vs-pool
assertions only fire at full scale on a machine with at least 4 CPUs, so
the CI smoke run (~50k triples, 2 workers, shared runners) stays a
correctness check — mirroring the other benchmarks' full-scale gating.

Environment knobs: ``REPRO_BENCH_PARALLEL_TRIPLES`` (default 1_000_000),
``REPRO_BENCH_PARALLEL_DRAWS`` (default 200_000 cluster draws),
``REPRO_BENCH_PARALLEL_WORKERS`` (default 4), ``REPRO_BENCH_PARALLEL_SHARDS``
(default = workers).  Set ``REPRO_BENCH_RESULTS_DIR`` to dump the timings —
including the per-shard worker seconds — as JSON (uploaded as a CI
artifact).  The JSON carries host/run provenance (python, platform, git sha,
UTC timestamp) plus the run's metrics snapshot, and the results dir also
receives the snapshot standalone as ``bench_parallel_metrics.json`` for
``repro metrics summarize``.

``test_observability_overhead`` guards the instrumentation cost: the same
serial engine loop runs bare and then with debug JSON logging, tracing and
metrics all on; the instrumented run must stay within 5% (plus an absolute
noise floor) and produce the bit-identical estimate.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_TARGET_TRIPLES = int(os.environ.get("REPRO_BENCH_PARALLEL_TRIPLES", 1_000_000))
_DRAWS = int(os.environ.get("REPRO_BENCH_PARALLEL_DRAWS", 200_000))
_WORKERS = int(os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", 4))
_SHARDS = int(os.environ.get("REPRO_BENCH_PARALLEL_SHARDS", _WORKERS))
_FULL_SCALE = 1_000_000
_BATCH = 5_000
_MEAN_CLUSTER_SIZE = 9.0
_GRAPH_SEED = 0
_LABEL_SEED = 1
_DRAW_SEED = 2
_ACCURACY = 0.9
_SECOND_STAGE = 5
# Absolute noise floor for the planner's never-slower-than-serial gate: at
# smoke scale the loops are sub-second, so the 10% relative bound only binds
# once runs are long enough to time (same shape as the obs-overhead guard).
_AUTO_FLOOR_SECONDS = 0.5


def _git_sha() -> str | None:
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return probe.stdout.strip() or None if probe.returncode == 0 else None


def _available_cpus() -> int:
    """CPUs this process may actually schedule on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_meta() -> dict:
    """Host/run provenance stamped into BENCH_parallel.json at run time."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_sha": _git_sha(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def _build_graph():
    from repro.generators.synthetic_kg import SyntheticKGConfig, generate_kg

    num_entities = max(10, int(round(_TARGET_TRIPLES / _MEAN_CLUSTER_SIZE * 1.04)))
    config = SyntheticKGConfig(
        num_entities=num_entities,
        mean_cluster_size=_MEAN_CLUSTER_SIZE,
        size_skew=1.1,
        max_cluster_size=500,
        name="bench-parallel",
    )
    return generate_kg(config, seed=_GRAPH_SEED, backend="columnar")


def _serial_design_loop(graph, labels) -> dict:
    from repro.sampling.twcs import TwoStageWeightedClusterDesign

    design = TwoStageWeightedClusterDesign(
        graph, second_stage_size=_SECOND_STAGE, seed=_DRAW_SEED
    )
    started = time.perf_counter()
    drawn = 0
    while drawn < _DRAWS:
        units = design.draw_positions(min(_BATCH, _DRAWS - drawn))
        design.update_all_positions(units, labels)
        drawn += len(units)
    elapsed = time.perf_counter() - started
    estimate = design.estimate()
    return {"seconds": elapsed, "estimate": estimate.value, "std_error": estimate.std_error}


def _engine_loop(graph, labels, workers, *, transport=None, planner_decision=None) -> dict:
    from repro.sampling.parallel import ParallelSamplingExecutor

    with ParallelSamplingExecutor(
        graph,
        workers=None if transport is not None else workers,
        num_shards=_SHARDS,
        transport=transport,
        planner_decision=planner_decision,
    ) as executor:
        run = executor.run(
            "twcs", labels, seed=_DRAW_SEED, second_stage_size=_SECOND_STAGE
        )
        started = time.perf_counter()
        drawn = 0
        while drawn < _DRAWS:
            for draw in run.step(min(_BATCH, _DRAWS - drawn)):
                drawn += draw.num_units
        elapsed = time.perf_counter() - started
        estimate = run.estimate()
        cost = run.cost_summary()
        width = getattr(transport, "workers", None) or workers or 1
        return {
            "workers": workers or 0,
            "transport": executor.transport.kind,
            "shards": run.plan.num_shards,
            "cpus_used": min(int(width), _available_cpus()),
            "seconds": elapsed,
            "estimate": estimate.value,
            "std_error": estimate.std_error,
            "num_units": estimate.num_units,
            "num_triples": estimate.num_triples,
            "cost_seconds": cost.cost_seconds,
            "entities_identified": cost.entities_identified,
            "triples_annotated": cost.triples_annotated,
            "shard_stats": run.shard_stats(),
        }


def _auto_loop(graph, serial_result, pool_result, labels) -> dict:
    """Plan from this run's own measurements, then execute cold and warm.

    The profile is calibrated *from the serial/pool legs just timed* — the
    planner never sees hand-tuned numbers — and the shard count is pinned
    to ``_SHARDS`` so whatever transport it picks must replay the serial
    engine's trajectory bit for bit.
    """
    from repro.sampling.planner import AdaptivePlanner, CalibrationProfile

    profile = CalibrationProfile()
    calibrated = profile.calibrate_from_bench(
        {"draws": _DRAWS, "engine_serial": serial_result, "engine_pool": pool_result}
    )
    planner = AdaptivePlanner(profile)
    decision = planner.plan(graph.backend.stats(), draws=_DRAWS, batch_size=_BATCH, shards=_SHARDS)
    transport = AdaptivePlanner.build_transport(decision)
    # Cold pays pool/segment startup; warm adopts the parked keep-alive pool.
    cold = _engine_loop(graph, labels, None, transport=transport, planner_decision=decision)
    warm = _engine_loop(graph, labels, None, transport=transport, planner_decision=decision)
    return {
        "decision": decision.as_dict(),
        "calibrated_transports": calibrated,
        "profile": profile.to_dict(),
        "cold": cold,
        "warm": warm,
    }


def _dump_results(payload: dict) -> None:
    # The repo-root copy is rewritten on every run (latest numbers win); the
    # perf trajectory accumulates through *committed* snapshots of this file,
    # one per PR, rather than by appending locally.
    root_target = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    with open(root_target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    results_dir = os.environ.get("REPRO_BENCH_RESULTS_DIR")
    if not results_dir:
        return
    target = Path(results_dir)
    target.mkdir(parents=True, exist_ok=True)
    with open(target / "bench_parallel_sampling.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    # The metrics snapshot also lands standalone in the artifact dir, in the
    # exact format `repro metrics summarize` consumes.
    snapshot = {"meta": payload.get("meta", {}), "series": payload["metrics"]["series"]}
    with open(target / "bench_parallel_metrics.json", "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2)
    # The calibration profile the planner derived from this run, in the exact
    # format `repro planner calibrate` writes — uploaded as a CI artifact so a
    # production profile can be seeded from benchmark hardware.
    auto = payload.get("engine_auto")
    if auto:
        with open(target / "planner_profile.json", "w", encoding="utf-8") as handle:
            json.dump(auto["profile"], handle, indent=2)
            handle.write("\n")


def test_parallel_draw_loop(benchmark):
    import numpy as np
    from conftest import emit, run_once

    def run_comparison():
        from repro.obs import metrics as obs_metrics

        graph = _build_graph()
        labels = np.random.default_rng(_LABEL_SEED).random(graph.num_triples) < _ACCURACY
        obs_metrics.reset()  # scope the exported snapshot to this comparison
        payload = {
            "meta": _run_meta(),
            "num_triples": graph.num_triples,
            "num_entities": graph.num_entities,
            "draws": _DRAWS,
            "cpu_count": os.cpu_count(),
            "cpus_available": _available_cpus(),
            "serial_design": _serial_design_loop(graph, labels),
            "engine_serial": _engine_loop(graph, labels, workers=None),
            "engine_pool": _engine_loop(graph, labels, workers=_WORKERS),
            "true_accuracy": float(labels.mean()),
        }
        payload["engine_auto"] = _auto_loop(
            graph, payload["engine_serial"], payload["engine_pool"], labels
        )
        payload["metrics"] = obs_metrics.snapshot()
        return payload

    results = run_once(benchmark, run_comparison)
    _dump_results(results)

    serial = results["serial_design"]
    engine = results["engine_serial"]
    pool = results["engine_pool"]
    auto = results["engine_auto"]
    speedup = serial["seconds"] / pool["seconds"]
    engine_speedup = engine["seconds"] / pool["seconds"]
    emit(
        f"Parallel sharded TWCS draw loop ({results['num_triples']:,} triples, "
        f"{results['draws']:,} draws, {pool['shards']} shards, "
        f"{_WORKERS} workers, {results['cpus_available']} CPUs usable)",
        "\n".join(
            [
                f"{'serial design loop s':28}{serial['seconds']:>10.2f}",
                f"{'engine serial s':28}{engine['seconds']:>10.2f}",
                f"{'engine pool s':28}{pool['seconds']:>10.2f}",
                f"{'engine auto cold s':28}{auto['cold']['seconds']:>10.2f}",
                f"{'engine auto warm s':28}{auto['warm']['seconds']:>10.2f}",
                f"{'planner picked':28}{auto['decision']['transport']:>10}",
                f"{'speedup vs design loop':28}{speedup:>9.1f}x",
                f"{'speedup vs engine serial':28}{engine_speedup:>9.1f}x",
                f"{'estimate (pool)':28}{pool['estimate']:>10.4f}",
                f"{'true accuracy':28}{results['true_accuracy']:>10.4f}",
                "per-shard worker seconds    "
                + ", ".join(
                    f"{s['shard']}: {s['draw_seconds']:.2f}" for s in pool["shard_stats"]
                ),
            ]
        ),
    )

    # The determinism contract always holds: pool and both auto runs replay
    # the serial engine bit for bit.
    compared_keys = (
        "estimate",
        "std_error",
        "num_units",
        "num_triples",
        "cost_seconds",
        "entities_identified",
        "triples_annotated",
    )
    for key in compared_keys:
        assert pool[key] == engine[key], key
    for leg in (auto["cold"], auto["warm"]):
        for key in compared_keys:
            assert leg[key] == engine[key], f"auto/{leg['transport']}: {key}"
    # All estimators agree with the truth to sampling accuracy.
    for estimate in (serial["estimate"], pool["estimate"], auto["warm"]["estimate"]):
        assert abs(estimate - results["true_accuracy"]) < 0.01

    # Planner invariant, gated at EVERY scale: the planned configuration is
    # never slower than the serial engine beyond noise (10% + absolute floor).
    auto_budget = engine["seconds"] * 1.10 + _AUTO_FLOOR_SECONDS
    assert auto["warm"]["seconds"] <= auto_budget, (
        f"planner pick '{auto['decision']['transport']}' took "
        f"{auto['warm']['seconds']:.3f}s warm, budget {auto_budget:.3f}s "
        f"(engine serial {engine['seconds']:.3f}s)"
    )

    if results["num_triples"] >= _FULL_SCALE and _available_cpus() >= max(4, _WORKERS):
        assert speedup >= 2.5, (
            f"parallel draw-loop speedup {speedup:.1f}x below the 2.5x target "
            f"({_WORKERS} workers)"
        )
        auto_vs_pool = pool["seconds"] / auto["warm"]["seconds"]
        assert auto_vs_pool >= 2.0, (
            f"planner pick '{auto['decision']['transport']}' only "
            f"{auto_vs_pool:.2f}x faster than the pool transport at full scale"
        )


# --------------------------------------------------------------------------- #
# Observability overhead guard
# --------------------------------------------------------------------------- #
_OVERHEAD_TRIPLES = 50_000
_OVERHEAD_DRAWS = 10_000
_OVERHEAD_SHARDS = 2
# Absolute noise floor on shared CI runners: the 5% relative bound only
# becomes the binding constraint once the loop is long enough to time.
_OVERHEAD_FLOOR_SECONDS = 0.5


def _overhead_loop(graph, labels):
    from repro.sampling.parallel import ParallelSamplingExecutor

    with ParallelSamplingExecutor(graph, workers=None, num_shards=_OVERHEAD_SHARDS) as executor:
        run = executor.run("twcs", labels, seed=_DRAW_SEED, second_stage_size=_SECOND_STAGE)
        started = time.perf_counter()
        drawn = 0
        while drawn < _OVERHEAD_DRAWS:
            for draw in run.step(min(_BATCH, _OVERHEAD_DRAWS - drawn)):
                drawn += draw.num_units
        elapsed = time.perf_counter() - started
        estimate = run.estimate()
        return elapsed, (estimate.value, estimate.std_error, estimate.num_units)


def test_observability_overhead(benchmark, tmp_path):
    """Full instrumentation must cost <5% (+noise floor) and move nothing."""
    import numpy as np
    from conftest import emit, run_once

    from repro.generators.synthetic_kg import SyntheticKGConfig, generate_kg
    from repro.obs import logging as obs_logging
    from repro.obs import trace as obs_trace

    num_entities = max(10, int(round(_OVERHEAD_TRIPLES / _MEAN_CLUSTER_SIZE * 1.04)))
    config = SyntheticKGConfig(
        num_entities=num_entities,
        mean_cluster_size=_MEAN_CLUSTER_SIZE,
        size_skew=1.1,
        max_cluster_size=500,
        name="bench-obs-overhead",
    )
    graph = generate_kg(config, seed=_GRAPH_SEED, backend="columnar")
    labels = np.random.default_rng(_LABEL_SEED).random(graph.num_triples) < _ACCURACY

    def compare():
        estimates = []

        def timed_pair():
            # Best of two: absorbs one-off cache/GC hiccups on noisy runners.
            times = []
            for _ in range(2):
                elapsed, estimate = _overhead_loop(graph, labels)
                times.append(elapsed)
                estimates.append(estimate)
            return min(times)

        bare = timed_pair()
        obs_logging.configure(
            tmp_path / "overhead.jsonl", level="debug", run_id="bench-overhead"
        )
        obs_trace.enable()
        try:
            instrumented = timed_pair()
        finally:
            obs_trace.disable()
            obs_logging.reset()
        return {"bare_s": bare, "instrumented_s": instrumented, "estimates": estimates}

    results = run_once(benchmark, compare)
    overhead = results["instrumented_s"] / results["bare_s"] - 1.0
    emit(
        f"Observability overhead ({graph.num_triples:,} triples, "
        f"{_OVERHEAD_DRAWS:,} draws, debug logs + tracing + metrics)",
        "\n".join(
            [
                f"{'bare s':28}{results['bare_s']:>10.3f}",
                f"{'instrumented s':28}{results['instrumented_s']:>10.3f}",
                f"{'overhead':28}{overhead:>9.1%}",
            ]
        ),
    )
    # Observability on or off, the trajectory is bit-identical.
    assert len(set(results["estimates"])) == 1, results["estimates"]
    budget = results["bare_s"] * 1.05 + _OVERHEAD_FLOOR_SECONDS
    assert results["instrumented_s"] <= budget, (
        f"instrumented loop took {results['instrumented_s']:.3f}s, "
        f"budget {budget:.3f}s (bare {results['bare_s']:.3f}s)"
    )
