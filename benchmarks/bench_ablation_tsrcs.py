"""Ablation — two-stage *random* vs two-stage *weighted* cluster sampling.

Section 5.2.3 of the paper omits two-stage random cluster sampling "due to its
inferior performance".  This ablation regenerates that comparison: both
designs use the same second-stage cap, the same datasets and the same quality
requirement; the weighted first stage should need far less annotation time
whenever cluster sizes are skewed.
"""

from __future__ import annotations

from conftest import bench_trials, emit, movie_scale, run_once

from repro.core.config import EvaluationConfig
from repro.core.framework import StaticEvaluator
from repro.cost.annotator import SimulatedAnnotator
from repro.experiments import format_table
from repro.experiments.harness import run_trials
from repro.generators.datasets import make_movie_like, make_nell_like
from repro.sampling.tsrcs import TwoStageRandomClusterDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign


def _compare(num_trials: int, scale: float) -> list[dict[str, object]]:
    config = EvaluationConfig(moe_target=0.05, confidence_level=0.95)
    datasets = {
        "NELL": lambda: make_nell_like(seed=0),
        "MOVIE": lambda: make_movie_like(seed=0, scale=scale),
    }
    designs = {
        "TSRCS (uniform 1st stage)": TwoStageRandomClusterDesign,
        "TWCS (weighted 1st stage)": TwoStageWeightedClusterDesign,
    }
    rows = []
    for dataset_name, build in datasets.items():
        for design_name, design_cls in designs.items():

            def trial(seed: int, build=build, design_cls=design_cls) -> dict[str, float]:
                data = build()
                design = design_cls(data.graph, second_stage_size=5, seed=seed)
                annotator = SimulatedAnnotator(data.oracle, seed=seed)
                report = StaticEvaluator(design, annotator, config).run()
                return {
                    "annotation_hours": report.annotation_cost_hours,
                    "num_units": float(report.num_units),
                    "accuracy_estimate": report.accuracy,
                }

            stats = run_trials(trial, num_trials, base_seed=0)
            rows.append(
                {
                    "dataset": dataset_name,
                    "design": design_name,
                    "annotation_hours": stats["annotation_hours"].mean,
                    "annotation_hours_std": stats["annotation_hours"].std,
                    "cluster_draws": stats["num_units"].mean,
                    "accuracy_estimate": stats["accuracy_estimate"].mean,
                }
            )
    return rows


def test_ablation_tsrcs_vs_twcs(benchmark):
    rows = run_once(benchmark, _compare, bench_trials(), movie_scale(0.008))
    emit(
        "Ablation: first-stage sampling probabilities (uniform vs size-weighted)",
        format_table(rows)
        + "\nexpected shape: TWCS needs far fewer cluster draws / hours than TSRCS on both KGs,"
        + "\n                confirming the paper's reason for omitting TSRCS",
    )
    for dataset in {row["dataset"] for row in rows}:
        subset = {
            row["design"]: row["annotation_hours"]
            for row in rows
            if row["dataset"] == dataset
        }
        assert subset["TWCS (weighted 1st stage)"] < subset["TSRCS (uniform 1st stage)"]
