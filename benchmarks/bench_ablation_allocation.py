"""Ablation — proportional vs Neyman allocation for stratified TWCS.

The paper's stratified evaluation allocates cluster draws to strata
proportionally to their triple counts; classic survey sampling suggests Neyman
allocation (proportional to ``W_h · S_h``) when per-stratum spreads differ.
This ablation measures how much the allocation rule matters on a KG whose
strata have very different internal variability (MOVIE-SYN with BMM labels).
"""

from __future__ import annotations

from conftest import bench_trials, emit, movie_scale, run_once

from repro.core.config import EvaluationConfig
from repro.core.framework import StaticEvaluator
from repro.cost.annotator import SimulatedAnnotator
from repro.experiments import format_table
from repro.experiments.harness import run_trials
from repro.generators.datasets import make_movie_syn
from repro.sampling.stratification import stratify_by_size
from repro.sampling.stratified import StratifiedTWCSDesign


def _compare(num_trials: int, scale: float) -> list[dict[str, object]]:
    config = EvaluationConfig(moe_target=0.05, confidence_level=0.95)
    rows = []
    for allocation in ("proportional", "neyman"):

        def trial(seed: int, allocation=allocation) -> dict[str, float]:
            data = make_movie_syn(c=0.05, sigma=0.1, seed=0, scale=scale)
            strata = stratify_by_size(data.graph, num_strata=4)
            design = StratifiedTWCSDesign(
                data.graph, strata, second_stage_size=5, seed=seed, allocation=allocation
            )
            annotator = SimulatedAnnotator(data.oracle, seed=seed)
            report = StaticEvaluator(design, annotator, config).run()
            return {
                "annotation_hours": report.annotation_cost_hours,
                "num_units": float(report.num_units),
                "accuracy_estimate": report.accuracy,
                "moe": report.margin_of_error,
            }

        stats = run_trials(trial, num_trials, base_seed=0)
        rows.append(
            {
                "allocation": allocation,
                "annotation_hours": stats["annotation_hours"].mean,
                "annotation_hours_std": stats["annotation_hours"].std,
                "cluster_draws": stats["num_units"].mean,
                "accuracy_estimate": stats["accuracy_estimate"].mean,
                "moe": stats["moe"].mean,
            }
        )
    return rows


def test_ablation_allocation_rule(benchmark):
    rows = run_once(benchmark, _compare, bench_trials(), movie_scale())
    emit(
        "Ablation: batch allocation across strata (proportional vs Neyman)",
        format_table(rows)
        + "\nexpected shape: both rules meet the 5% MoE with unbiased estimates; Neyman"
        + "\n                allocation matches or modestly improves the annotation cost"
        + "\n                when strata spreads differ",
    )
    by_rule = {row["allocation"]: row for row in rows}
    neyman_hours = by_rule["neyman"]["annotation_hours"]
    assert neyman_hours <= by_rule["proportional"]["annotation_hours"] * 1.3
    for row in rows:
        assert abs(row["accuracy_estimate"] - rows[0]["accuracy_estimate"]) < 0.08
