"""Table 7 — TWCS with size / oracle stratification vs SRS and plain TWCS."""

from __future__ import annotations

from conftest import bench_trials, emit, movie_scale, run_once

from repro.experiments import format_table, table7_stratification


def test_table7_stratification(benchmark):
    rows = run_once(
        benchmark,
        table7_stratification,
        num_trials=bench_trials(),
        seed=0,
        movie_scale=movie_scale(),
    )
    emit(
        "Table 7: stratified TWCS "
        "(paper: size stratification helps most on MOVIE-SYN; oracle is the lower bound)",
        format_table(
            rows,
            columns=[
                "dataset",
                "method",
                "num_strata",
                "gold_accuracy",
                "annotation_hours",
                "annotation_hours_std",
                "accuracy_estimate",
            ],
        )
        + "\nexpected shape: oracle stratification cheapest per dataset;"
        + " size stratification helps where"
        + "\n                cluster size predicts accuracy (MOVIE-SYN), is neutral elsewhere",
    )
    for dataset in {row["dataset"] for row in rows}:
        subset = {
            row["method"]: row["annotation_hours"]
            for row in rows
            if row["dataset"] == dataset
        }
        assert subset["TWCS+ORACLE"] <= subset["SRS"]
