"""Storage backend benchmark: columnar + snapshot vs the seed in-memory graph.

Demonstrates the two headline wins of the columnar storage subsystem on a
>=1M-triple synthetic KG (MOVIE-FULL-like shape: mean cluster size ~9,
lognormal skew 1.1):

* **draw/estimate loop speed** — TWCS cluster draws through the position
  surface (``draw_positions`` / ``update_all_positions`` on a
  snapshot-loaded columnar graph) vs the object surface on the seed
  in-memory graph (per-draw Triple tuples + label-dict lookups).  Target:
  >=5x more draws per second.
* **resident memory** — a memory-mapped snapshot directory holds the graph
  in interned ``int32`` columns and only pages in what the sampler touches,
  vs the object graph's Triples / key-tuples / index lists.  Target: >=3x
  lower RSS delta.

Each configuration runs in its own subprocess so RSS is measured cleanly;
the build->snapshot->reload flow is exactly the "build big KGs once,
memory-map thereafter" workflow the snapshot store exists for.  A separate
test confirms the statistical contract: the *same* TWCS evaluation (object
surface, fixed seed) returns the identical estimate on both backends.

A second comparison pits the **sqlite backend** (out-of-core: graph columns
and vocabulary stay in the WAL database, only the CSR position index is
materialised) against the columnar backend held fully in RAM.  Peak resident
memory (``VmHWM`` delta) of both evaluation workers lands in the results
JSON; at full scale the sqlite peak must come in *below* the columnar one —
that is the whole point of the backend.  A thaw micro-benchmark guards the
``frombytes`` fast path in ``ColumnarStore._thaw``.

Environment knobs: ``REPRO_BENCH_STORAGE_TRIPLES`` (default 1_000_000)
scales the KG; ``REPRO_BENCH_STORAGE_DRAWS`` (default 50_000) scales the
timed draw loop.  Below 1M triples (e.g. the CI benchmark-smoke job at ~50k)
the speed/memory thresholds are not enforced — estimate parity always is.
Set ``REPRO_BENCH_RESULTS_DIR`` to dump the raw numbers as JSON.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

# --------------------------------------------------------------------------- #
# Shared configuration
# --------------------------------------------------------------------------- #
_TARGET_TRIPLES = int(os.environ.get("REPRO_BENCH_STORAGE_TRIPLES", 1_000_000))
_TARGET_DRAWS = int(os.environ.get("REPRO_BENCH_STORAGE_DRAWS", 50_000))
_FULL_SCALE = 1_000_000
_MEAN_CLUSTER_SIZE = 9.0
_GRAPH_SEED = 0
_LABEL_SEED = 1
_DESIGN_SEED = 2
_ACCURACY = 0.9
_SECOND_STAGE = 5
_BATCH = 1024


def _kg_config():
    from repro.generators.synthetic_kg import SyntheticKGConfig

    # Oversize the entity count slightly so the realised lognormal draw stays
    # above the requested triple floor.
    num_entities = max(10, int(round(_TARGET_TRIPLES / _MEAN_CLUSTER_SIZE * 1.04)))
    return SyntheticKGConfig(
        num_entities=num_entities,
        mean_cluster_size=_MEAN_CLUSTER_SIZE,
        size_skew=1.1,
        max_cluster_size=500,
        name="bench-storage",
    )


def _rss_kb() -> int:
    with open("/proc/self/status", "r", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError("VmRSS not found")  # pragma: no cover


def _peak_rss_kb() -> int:
    """Process high-water-mark RSS (``VmHWM``) — the honest "peak memory"."""
    with open("/proc/self/status", "r", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmHWM:"):
                return int(line.split()[1])
    raise RuntimeError("VmHWM not found")  # pragma: no cover


# --------------------------------------------------------------------------- #
# Subprocess workers
# --------------------------------------------------------------------------- #
def _worker_seed() -> dict:
    """Seed baseline: in-memory graph, object-surface TWCS draw loop."""
    import numpy as np

    from repro.generators.synthetic_kg import generate_kg
    from repro.sampling.twcs import TwoStageWeightedClusterDesign

    rss_before = _rss_kb()
    started = time.perf_counter()
    graph = generate_kg(_kg_config(), seed=_GRAPH_SEED, backend="memory")
    build_seconds = time.perf_counter() - started
    graph_rss_kb = _rss_kb() - rss_before

    label_values = np.random.default_rng(_LABEL_SEED).random(graph.num_triples) < _ACCURACY
    labels = {triple: bool(value) for triple, value in zip(graph, label_values)}

    design = TwoStageWeightedClusterDesign(
        graph, second_stage_size=_SECOND_STAGE, seed=_DESIGN_SEED
    )
    design.update_all(design.draw(_BATCH), labels)  # warm-up
    design.reset()
    drawn = 0
    started = time.perf_counter()
    while drawn < _TARGET_DRAWS:
        units = design.draw(min(_BATCH, _TARGET_DRAWS - drawn))
        design.update_all(units, labels)
        drawn += len(units)
    loop_seconds = time.perf_counter() - started
    return {
        "backend": "memory (seed)",
        "num_triples": graph.num_triples,
        "num_entities": graph.num_entities,
        "build_seconds": build_seconds,
        "graph_rss_kb": graph_rss_kb,
        "draws": drawn,
        "draws_per_second": drawn / loop_seconds,
        "estimate": design.estimate().value,
    }


def _worker_build_snapshot(snapshot_path: str) -> dict:
    """Bulk-build the columnar twin and persist it as a snapshot directory."""
    from repro.generators.synthetic_kg import generate_kg
    from repro.storage.snapshot import SnapshotStore

    started = time.perf_counter()
    graph = generate_kg(_kg_config(), seed=_GRAPH_SEED, backend="columnar")
    build_seconds = time.perf_counter() - started
    started = time.perf_counter()
    SnapshotStore(snapshot_path).save(graph, name=graph.name)
    return {
        "backend": "columnar build",
        "num_triples": graph.num_triples,
        "build_seconds": build_seconds,
        "save_seconds": time.perf_counter() - started,
    }


def _worker_columnar(snapshot_path: str) -> dict:
    """Columnar path: mmap-load the snapshot, position-surface TWCS loop."""
    import numpy as np

    from repro.kg.graph import KnowledgeGraph
    from repro.sampling.twcs import TwoStageWeightedClusterDesign

    rss_before = _rss_kb()
    started = time.perf_counter()
    graph = KnowledgeGraph.from_snapshot(snapshot_path, mmap=True)
    design = TwoStageWeightedClusterDesign(
        graph, second_stage_size=_SECOND_STAGE, seed=_DESIGN_SEED
    )
    load_seconds = time.perf_counter() - started
    graph_rss_kb = _rss_kb() - rss_before

    label_array = np.random.default_rng(_LABEL_SEED).random(graph.num_triples) < _ACCURACY
    design.update_all_positions(design.draw_positions(_BATCH), label_array)  # warm-up
    design.reset()
    drawn = 0
    started = time.perf_counter()
    while drawn < _TARGET_DRAWS:
        units = design.draw_positions(min(_BATCH, _TARGET_DRAWS - drawn))
        design.update_all_positions(units, label_array)
        drawn += len(units)
    loop_seconds = time.perf_counter() - started
    rss_after_loop_kb = _rss_kb() - rss_before
    return {
        "backend": "columnar (mmap snapshot)",
        "num_triples": graph.num_triples,
        "num_entities": graph.num_entities,
        "load_seconds": load_seconds,
        "graph_rss_kb": graph_rss_kb,
        "rss_after_loop_kb": rss_after_loop_kb,
        "draws": drawn,
        "draws_per_second": drawn / loop_seconds,
        "estimate": design.estimate().value,
    }


def _worker_build_sqlite(snapshot_path: str, db_path: str) -> dict:
    """Bulk-copy the snapshot's columns into a WAL sqlite database."""
    from repro.kg.graph import KnowledgeGraph
    from repro.storage.sqlite import SqliteStore

    graph = KnowledgeGraph.from_snapshot(snapshot_path, mmap=True)
    started = time.perf_counter()
    store = SqliteStore.from_columnar(graph.backend, path=db_path, name=graph.name)
    build_seconds = time.perf_counter() - started
    store.close()
    db_bytes = sum(
        p.stat().st_size for p in (Path(db_path), Path(db_path + "-wal")) if p.exists()
    )
    return {
        "backend": "sqlite build",
        "num_triples": graph.num_triples,
        "build_seconds": build_seconds,
        "db_size_mb": db_bytes / (1024 * 1024),
    }


def _worker_columnar_ram(snapshot_path: str) -> dict:
    """Columnar fully in RAM (mmap off): the in-core cost sqlite competes with."""
    import numpy as np

    from repro.kg.graph import KnowledgeGraph
    from repro.sampling.twcs import TwoStageWeightedClusterDesign

    rss_before = _rss_kb()
    started = time.perf_counter()
    graph = KnowledgeGraph.from_snapshot(snapshot_path, mmap=False)
    design = TwoStageWeightedClusterDesign(
        graph, second_stage_size=_SECOND_STAGE, seed=_DESIGN_SEED
    )
    load_seconds = time.perf_counter() - started

    label_array = np.random.default_rng(_LABEL_SEED).random(graph.num_triples) < _ACCURACY
    drawn = 0
    started = time.perf_counter()
    while drawn < _TARGET_DRAWS:
        units = design.draw_positions(min(_BATCH, _TARGET_DRAWS - drawn))
        design.update_all_positions(units, label_array)
        drawn += len(units)
    loop_seconds = time.perf_counter() - started
    return {
        "backend": "columnar (in RAM)",
        "num_triples": graph.num_triples,
        "num_entities": graph.num_entities,
        "load_seconds": load_seconds,
        "peak_rss_kb": _peak_rss_kb() - rss_before,
        "draws": drawn,
        "draws_per_second": drawn / loop_seconds,
        "estimate": design.estimate().value,
    }


def _worker_sqlite(db_path: str) -> dict:
    """Out-of-core path: open the WAL database, position-surface TWCS loop.

    ``mmap_size=0`` keeps reads on sqlite's bounded page cache — the
    configuration whose resident footprint the backend is claimed at.  Only
    the materialised CSR position index (~12 bytes/triple) lives in Python
    memory; the string columns and vocabulary never leave the file.
    """
    import numpy as np

    from repro.kg.graph import KnowledgeGraph
    from repro.sampling.twcs import TwoStageWeightedClusterDesign
    from repro.storage.sqlite import SqliteStore

    rss_before = _rss_kb()
    started = time.perf_counter()
    store = SqliteStore(db_path, mmap_size=0)
    graph = KnowledgeGraph(name=store.graph_name() or "bench", backend=store)
    design = TwoStageWeightedClusterDesign(
        graph, second_stage_size=_SECOND_STAGE, seed=_DESIGN_SEED
    )
    store.csr_arrays()  # materialise the position index up front
    load_seconds = time.perf_counter() - started

    label_array = np.random.default_rng(_LABEL_SEED).random(graph.num_triples) < _ACCURACY
    drawn = 0
    started = time.perf_counter()
    while drawn < _TARGET_DRAWS:
        units = design.draw_positions(min(_BATCH, _TARGET_DRAWS - drawn))
        design.update_all_positions(units, label_array)
        drawn += len(units)
    loop_seconds = time.perf_counter() - started
    return {
        "backend": "sqlite (out of core)",
        "num_triples": graph.num_triples,
        "num_entities": graph.num_entities,
        "load_seconds": load_seconds,
        "peak_rss_kb": _peak_rss_kb() - rss_before,
        "draws": drawn,
        "draws_per_second": drawn / loop_seconds,
        "estimate": design.estimate().value,
    }


def _run_worker(role: str, *args: str) -> dict:
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else "")
    completed = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), role, *args],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if completed.returncode != 0:
        raise RuntimeError(f"worker {role} failed:\n{completed.stderr}")
    return json.loads(completed.stdout.strip().splitlines()[-1])


# --------------------------------------------------------------------------- #
# Benchmarks
# --------------------------------------------------------------------------- #
def test_storage_backend_draw_loop_and_memory(benchmark, tmp_path):
    from conftest import emit, run_once

    snapshot_path = str(tmp_path / "bench-kg")

    def run_comparison():
        build = _run_worker("build-snapshot", snapshot_path)
        seed = _run_worker("seed")
        columnar = _run_worker("columnar", snapshot_path)
        return build, seed, columnar

    build, seed, columnar = run_once(benchmark, run_comparison)
    results_dir = os.environ.get("REPRO_BENCH_RESULTS_DIR")
    if results_dir:
        Path(results_dir).mkdir(parents=True, exist_ok=True)
        with open(Path(results_dir) / "bench_storage_backend.json", "w", encoding="utf-8") as f:
            json.dump({"build": build, "seed": seed, "columnar": columnar}, f, indent=2)
    speedup = columnar["draws_per_second"] / seed["draws_per_second"]
    memory_ratio = seed["graph_rss_kb"] / max(1, columnar["graph_rss_kb"])
    loop_memory_ratio = seed["graph_rss_kb"] / max(1, columnar["rss_after_loop_kb"])
    emit(
        "Storage backend: columnar + mmap snapshot vs seed in-memory graph "
        f"({seed['num_triples']:,} triples, {seed['num_entities']:,} entities, "
        f"TWCS m={_SECOND_STAGE})",
        "\n".join(
            [
                f"{'':28}{'seed (memory)':>16}{'columnar':>16}{'ratio':>9}",
                f"{'build seconds':28}{seed['build_seconds']:>16.1f}"
                f"{build['build_seconds']:>16.1f}"
                f"{seed['build_seconds'] / build['build_seconds']:>8.1f}x",
                f"{'graph RSS (MB)':28}{seed['graph_rss_kb'] / 1024:>16.1f}"
                f"{columnar['graph_rss_kb'] / 1024:>16.1f}{memory_ratio:>8.1f}x",
                f"{'RSS after draw loop (MB)':28}{seed['graph_rss_kb'] / 1024:>16.1f}"
                f"{columnar['rss_after_loop_kb'] / 1024:>16.1f}{loop_memory_ratio:>8.1f}x",
                f"{'draws per second':28}{seed['draws_per_second']:>16,.0f}"
                f"{columnar['draws_per_second']:>16,.0f}{speedup:>8.1f}x",
                f"{'estimate (true 0.900)':28}{seed['estimate']:>16.4f}"
                f"{columnar['estimate']:>16.4f}",
                f"(snapshot load+design init: {columnar['load_seconds'] * 1000:.0f} ms; "
                f"snapshot save: {build['save_seconds']:.1f} s)",
            ]
        ),
    )
    assert seed["num_triples"] >= _TARGET_TRIPLES, "realised KG smaller than requested"
    assert seed["num_triples"] == columnar["num_triples"] == build["num_triples"]
    if seed["num_triples"] >= _FULL_SCALE:
        # The headline thresholds hold at the 1M-triple scale they were
        # claimed at; reduced-scale smoke runs only check correctness.
        assert speedup >= 5.0, f"draw-loop speedup {speedup:.1f}x below the 5x target"
        assert memory_ratio >= 3.0, f"resident-memory ratio {memory_ratio:.1f}x below the 3x target"
    # Both loops estimate the same population quantity from 50k cluster draws.
    assert abs(seed["estimate"] - _ACCURACY) < 0.01
    assert abs(columnar["estimate"] - _ACCURACY) < 0.01


def test_sqlite_backend_out_of_core_memory(benchmark, tmp_path):
    """Sqlite vs in-RAM columnar: identical estimates, lower peak RSS.

    The draw loops run the same TWCS position-surface evaluation with the
    same seeds on both backends; the estimates must agree bit-for-bit at any
    scale.  At the full 1M-triple scale the sqlite worker's peak resident
    memory must come in below the columnar worker's — the columns and
    vocabulary stay in the database file.
    """
    from conftest import emit, run_once

    snapshot_path = str(tmp_path / "bench-kg")
    db_path = str(tmp_path / "bench-kg.sqlite")

    def run_comparison():
        build = _run_worker("build-snapshot", snapshot_path)
        sqlite_build = _run_worker("build-sqlite", snapshot_path, db_path)
        columnar_ram = _run_worker("columnar-ram", snapshot_path)
        sqlite = _run_worker("sqlite", db_path)
        return build, sqlite_build, columnar_ram, sqlite

    build, sqlite_build, columnar_ram, sqlite = run_once(benchmark, run_comparison)
    results_dir = os.environ.get("REPRO_BENCH_RESULTS_DIR")
    if results_dir:
        Path(results_dir).mkdir(parents=True, exist_ok=True)
        out = Path(results_dir) / "bench_storage_backend_sqlite.json"
        with open(out, "w", encoding="utf-8") as f:
            json.dump(
                {
                    "build": build,
                    "sqlite_build": sqlite_build,
                    "columnar_ram": columnar_ram,
                    "sqlite": sqlite,
                },
                f,
                indent=2,
            )
    peak_ratio = columnar_ram["peak_rss_kb"] / max(1, sqlite["peak_rss_kb"])
    emit(
        "Sqlite backend: out-of-core evaluation vs columnar in RAM "
        f"({sqlite['num_triples']:,} triples, TWCS m={_SECOND_STAGE})",
        "\n".join(
            [
                f"{'':28}{'columnar (RAM)':>16}{'sqlite':>16}{'ratio':>9}",
                f"{'peak RSS delta (MB)':28}{columnar_ram['peak_rss_kb'] / 1024:>16.1f}"
                f"{sqlite['peak_rss_kb'] / 1024:>16.1f}{peak_ratio:>8.1f}x",
                f"{'draws per second':28}{columnar_ram['draws_per_second']:>16,.0f}"
                f"{sqlite['draws_per_second']:>16,.0f}",
                f"{'estimate (true 0.900)':28}{columnar_ram['estimate']:>16.4f}"
                f"{sqlite['estimate']:>16.4f}",
                f"(sqlite bulk copy: {sqlite_build['build_seconds']:.1f} s, "
                f"database {sqlite_build['db_size_mb']:.1f} MB; "
                f"open+CSR: {sqlite['load_seconds'] * 1000:.0f} ms)",
            ]
        ),
    )
    assert sqlite["num_triples"] == columnar_ram["num_triples"] == sqlite_build["num_triples"]
    # Same seeds, same CSR layout -> the draw streams and estimates are
    # bit-identical however the bytes are stored.
    assert sqlite["estimate"] == columnar_ram["estimate"]
    if sqlite["num_triples"] >= _FULL_SCALE:
        assert sqlite["peak_rss_kb"] < columnar_ram["peak_rss_kb"], (
            f"sqlite peak RSS {sqlite['peak_rss_kb']} kB not below "
            f"columnar's {columnar_ram['peak_rss_kb']} kB"
        )


def test_columnar_thaw_budget(benchmark):
    """``ColumnarStore._thaw`` must stay a memcpy, not an object storm.

    Builds a frozen store at the benchmark scale and times one
    frozen->building transition.  The budget scales with the triple count
    (2 s per 1M triples, 0.5 s floor) — generous for ``frombytes``, far
    below what per-element ``.tolist()`` round-trips cost.
    """
    import numpy as np

    from conftest import emit, run_once
    from repro.storage.columnar import ColumnarStore, Vocabulary

    num_triples = _TARGET_TRIPLES
    sizes_rng = np.random.default_rng(_GRAPH_SEED)
    num_entities = max(1, int(num_triples / _MEAN_CLUSTER_SIZE))
    vocab = Vocabulary()
    vocab.intern_many(f"t{i}" for i in range(num_entities))
    counts = np.full(num_entities, num_triples // num_entities, dtype=np.int64)
    counts[: num_triples - int(counts.sum())] += 1
    subjects = np.repeat(np.arange(num_entities, dtype=np.int32), counts)
    predicates = sizes_rng.integers(0, num_entities, num_triples, dtype=np.int32)
    objects = sizes_rng.integers(0, num_entities, num_triples, dtype=np.int32)

    def thaw_once():
        store = ColumnarStore.from_arrays(vocab, subjects, predicates, objects)
        store.cluster_size_array()  # force the row table like a real reader
        started = time.perf_counter()
        store._thaw()
        return time.perf_counter() - started

    thaw_seconds = run_once(benchmark, thaw_once)
    budget = max(0.5, 2.0 * num_triples / 1_000_000)
    results_dir = os.environ.get("REPRO_BENCH_RESULTS_DIR")
    if results_dir:
        Path(results_dir).mkdir(parents=True, exist_ok=True)
        out = Path(results_dir) / "bench_columnar_thaw.json"
        with open(out, "w", encoding="utf-8") as f:
            json.dump(
                {"num_triples": num_triples, "thaw_seconds": thaw_seconds, "budget": budget}, f
            )
    emit(
        f"Columnar thaw (frozen -> building) at {num_triples:,} triples",
        f"thaw: {thaw_seconds * 1000:.1f} ms (budget {budget:.1f} s)",
    )
    assert thaw_seconds < budget, f"thaw took {thaw_seconds:.2f}s, budget {budget:.2f}s"


def test_twcs_estimate_identical_across_backends(benchmark):
    """Same evaluation, fixed seed, both backends -> bit-identical estimate."""
    from conftest import emit, movie_scale, run_once

    from repro.core.config import EvaluationConfig
    from repro.core.framework import StaticEvaluator
    from repro.cost.annotator import SimulatedAnnotator
    from repro.generators.datasets import make_movie_like
    from repro.sampling.twcs import TwoStageWeightedClusterDesign

    def run_both():
        data = make_movie_like(seed=0, scale=movie_scale())
        reports = {}
        for backend_name in ("memory", "columnar"):
            graph = data.graph if backend_name == "memory" else data.graph.to_columnar()
            design = TwoStageWeightedClusterDesign(graph, second_stage_size=5, seed=17)
            annotator = SimulatedAnnotator(data.oracle, seed=17)
            config = EvaluationConfig(moe_target=0.05, confidence_level=0.95)
            reports[backend_name] = StaticEvaluator(design, annotator, config).run()
        return reports

    reports = run_once(benchmark, run_both)
    memory_report, columnar_report = reports["memory"], reports["columnar"]
    emit(
        "TWCS evaluation parity across storage backends (MOVIE-like, seed 17)",
        f"memory  : accuracy={memory_report.accuracy:.6f} moe={memory_report.margin_of_error:.6f} "
        f"triples={memory_report.num_triples_annotated}\n"
        f"columnar: accuracy={columnar_report.accuracy:.6f} "
        f"moe={columnar_report.margin_of_error:.6f} "
        f"triples={columnar_report.num_triples_annotated}",
    )
    assert memory_report.accuracy == columnar_report.accuracy
    assert memory_report.margin_of_error == columnar_report.margin_of_error
    assert memory_report.num_triples_annotated == columnar_report.num_triples_annotated
    assert memory_report.annotation_cost_seconds == columnar_report.annotation_cost_seconds


# --------------------------------------------------------------------------- #
# Worker entry point
# --------------------------------------------------------------------------- #
if __name__ == "__main__":
    role = sys.argv[1]
    if role == "seed":
        print(json.dumps(_worker_seed()))
    elif role == "build-snapshot":
        print(json.dumps(_worker_build_snapshot(sys.argv[2])))
    elif role == "columnar":
        print(json.dumps(_worker_columnar(sys.argv[2])))
    elif role == "build-sqlite":
        print(json.dumps(_worker_build_sqlite(sys.argv[2], sys.argv[3])))
    elif role == "columnar-ram":
        print(json.dumps(_worker_columnar_ram(sys.argv[2])))
    elif role == "sqlite":
        print(json.dumps(_worker_sqlite(sys.argv[2])))
    else:  # pragma: no cover
        raise SystemExit(f"unknown worker role {role!r}")
