"""Shared configuration for the reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper.  Because a
single regeneration already aggregates many randomised evaluation trials, the
pytest-benchmark timer runs each experiment once (``rounds=1``); the
interesting output is the printed table, which mirrors the corresponding
table/figure rows of the paper.

Two environment variables trade precision for wall-clock time:

* ``REPRO_BENCH_TRIALS`` — number of randomised trials per configuration
  (default 5; the paper uses 1000);
* ``REPRO_BENCH_MOVIE_SCALE`` — scale of the MOVIE-like dataset relative to
  the real 288 770-entity graph (default 0.01).
"""

from __future__ import annotations

import os

import pytest

__all__ = ["bench_trials", "movie_scale", "run_once", "emit"]


def bench_trials(default: int = 5) -> int:
    """Number of randomised trials per benchmark configuration."""
    return int(os.environ.get("REPRO_BENCH_TRIALS", default))


def movie_scale(default: float = 0.01) -> float:
    """Scale of the MOVIE-like dataset used by the benchmarks."""
    return float(os.environ.get("REPRO_BENCH_MOVIE_SCALE", default))


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, text: str) -> None:
    """Print a reproduced table/figure so it appears in the benchmark log."""
    print(f"\n===== {title} =====")
    print(text)


@pytest.fixture(autouse=True)
def _show_output(capsys):
    """Let the printed tables through even without ``-s``."""
    yield
    captured = capsys.readouterr()
    if captured.out:
        # Re-emit through the live terminal writer so the tables stay visible.
        with capsys.disabled():
            print(captured.out, end="")
