"""Table 6 — TWCS vs KGEval on NELL and YAGO (machine time, annotations, estimate)."""

from __future__ import annotations

from conftest import bench_trials, emit, run_once

from repro.experiments import format_table, table6_kgeval_comparison


def test_table6_kgeval_comparison(benchmark):
    rows = run_once(
        benchmark,
        table6_kgeval_comparison,
        num_trials=max(2, bench_trials() // 2),
        seed=0,
    )
    emit(
        "Table 6: TWCS vs KGEval (paper: TWCS needs seconds of machine time, KGEval hours)",
        format_table(
            rows,
            columns=[
                "dataset",
                "method",
                "gold_accuracy",
                "machine_time_seconds",
                "num_triples",
                "annotation_hours",
                "accuracy_estimate",
                "estimation_error",
            ],
        )
        + "\nexpected shape: KGEval machine time ≫ TWCS machine time;"
        + " TWCS annotation cost no worse; both estimates near gold",
    )
    for dataset in {row["dataset"] for row in rows}:
        subset = {row["method"]: row for row in rows if row["dataset"] == dataset}
        assert subset["KGEval"]["machine_time_seconds"] > subset["TWCS"]["machine_time_seconds"]
