"""Figure 8 — evolving KG, single update batch: Baseline vs RS vs SS."""

from __future__ import annotations

from conftest import bench_trials, emit, movie_scale, run_once

from repro.experiments import figure8_single_update, format_table


def test_figure8_single_update(benchmark):
    result = run_once(
        benchmark,
        figure8_single_update,
        num_trials=max(2, bench_trials() // 2),
        seed=0,
        movie_scale=movie_scale(0.008),
    )
    emit(
        "Figure 8: single update batch (paper: SS cheapest, Baseline most expensive)",
        format_table(
            result["varying_size"],
            columns=[
                "update_fraction",
                "method",
                "update_cost_hours",
                "accuracy_estimate",
                "true_accuracy",
                "moe",
            ],
            title="Figure 8-1: varying update size (update accuracy fixed at 90%)",
        )
        + "\n"
        + format_table(
            result["varying_accuracy"],
            columns=[
                "update_accuracy",
                "method",
                "update_cost_hours",
                "accuracy_estimate",
                "true_accuracy",
                "moe",
            ],
            title="Figure 8-2: varying update accuracy (update size fixed at 50% of base)",
        )
        + "\nexpected shape: SS and RS well below Baseline; RS cost grows with update size;"
        + "\n                SS cost peaks when update accuracy is near 50%",
    )
    for row_set in (result["varying_size"], result["varying_accuracy"]):
        by_key: dict[tuple, dict[str, float]] = {}
        for row in row_set:
            key = (row["update_fraction"], row["update_accuracy"])
            by_key.setdefault(key, {})[row["method"]] = row["update_cost_hours"]
        for costs in by_key.values():
            assert costs["SS"] <= costs["Baseline"]
            # RS is usually below the Baseline as well, but for very inaccurate
            # updates (high variance) single low-trial runs can land close to
            # it; allow some slack so the benchmark is robust at small trial
            # counts while still catching gross regressions.
            assert costs["RS"] <= costs["Baseline"] * 1.5
