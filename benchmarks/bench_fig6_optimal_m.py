"""Figure 6 — finding the optimal second-stage sample size m for TWCS."""

from __future__ import annotations

from conftest import bench_trials, emit, movie_scale, run_once

from repro.experiments import figure6_optimal_m, format_table


def test_figure6_optimal_m(benchmark):
    rows = run_once(
        benchmark,
        figure6_optimal_m,
        num_trials=max(2, bench_trials() // 2),
        seed=0,
        movie_scale=movie_scale(0.008),
    )
    simulated = [row for row in rows if "annotation_hours" in row]
    optima = [row for row in rows if row.get("optimal")]
    emit(
        "Figure 6: TWCS cost vs second-stage size m (paper: optimum in the 3-5 range)",
        format_table(
            simulated,
            columns=[
                "dataset",
                "m",
                "num_units",
                "num_triples",
                "annotation_hours",
                "srs_annotation_hours",
                "theoretical_cost_upper_hours",
                "theoretical_cost_lower_hours",
            ],
        )
        + "\n"
        + format_table(optima, columns=["dataset", "m", "theoretical_cost_upper_hours"],
                       title="Optimal m per dataset (minimiser of Eq. 12)")
        + "\nexpected shape: cluster draws fall sharply from m=1 then plateau;"
        + " cost is U-shaped (or flat for NELL)",
    )
    assert all(1 <= row["m"] <= 10 for row in optima)
