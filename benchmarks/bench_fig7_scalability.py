"""Figure 7 — scalability of TWCS: cost vs KG size and vs overall accuracy."""

from __future__ import annotations

from conftest import bench_trials, emit, run_once

from repro.experiments import figure7_scalability, format_table


def test_figure7_scalability(benchmark):
    result = run_once(
        benchmark,
        figure7_scalability,
        num_trials=max(2, bench_trials() // 2),
        seed=0,
    )
    emit(
        "Figure 7: TWCS scalability (paper sweeps 26M-130M triples; "
        "here a 1/1000-scale sweep with the same 1x..8x progression)",
        format_table(
            result["varying_size"],
            columns=["num_triples_in_kg", "accuracy", "annotation_hours", "annotation_hours_std"],
            title="Figure 7-1: varying KG size (accuracy fixed at 90%)",
        )
        + "\n"
        + format_table(
            result["varying_accuracy"],
            columns=["num_triples_in_kg", "accuracy", "annotation_hours", "annotation_hours_std"],
            title="Figure 7-2: varying overall accuracy (size fixed)",
        )
        + "\nexpected shape: cost flat in KG size; cost peaks at 50% accuracy",
    )
    size_hours = [row["annotation_hours"] for row in result["varying_size"]]
    assert max(size_hours) < 2.5 * min(size_hours)
    by_accuracy = {row["accuracy"]: row["annotation_hours"] for row in result["varying_accuracy"]}
    assert by_accuracy[0.5] >= max(by_accuracy[0.1], by_accuracy[0.9]) * 0.8
