"""Figure 9 — evolving KG, sequence of updates: unbiasedness and fault tolerance of RS vs SS."""

from __future__ import annotations

from conftest import bench_trials, emit, movie_scale, run_once

from repro.experiments import figure9_update_sequence, format_table


def test_figure9_update_sequence(benchmark):
    result = run_once(
        benchmark,
        figure9_update_sequence,
        num_trials=max(2, bench_trials() // 2),
        seed=0,
        movie_scale=movie_scale(0.004),
        num_batches=10,
    )
    rows = []
    for method, trajectory in result["mean"].items():
        for index in trajectory["batch_index"]:
            rows.append(
                {
                    "method": method,
                    "batch": index,
                    "estimated_accuracy_mean": trajectory["estimated_accuracy_mean"][index],
                    "true_accuracy_mean": trajectory["true_accuracy_mean"][index],
                    "cumulative_cost_hours": trajectory["cumulative_cost_hours_mean"][index],
                }
            )
    recovery_rows = []
    for scenario in ("overestimation_run", "underestimation_run"):
        for method, trajectory in result[scenario].items():
            recovery_rows.append(
                {
                    "scenario": scenario,
                    "method": method,
                    "initial_error": trajectory.estimated_accuracy[0]
                    - trajectory.true_accuracy[0],
                    "final_error": trajectory.final_error,
                    "mean_error": trajectory.mean_error,
                }
            )
    emit(
        "Figure 9: sequence of updates "
        "(paper: both unbiased on average; RS recovers faster from a bad start)",
        format_table(rows, title="Figure 9-1: mean trajectory across trials")
        + "\n"
        + format_table(
            recovery_rows, title="Figures 9-2/9-3: recovery from an unlucky initial estimate"
        )
        + "\nexpected shape: mean estimates hug the ground truth for both methods;"
        + "\n                in the unlucky runs RS's error shrinks over the sequence"
        + " faster than SS's",
    )
    for trajectory in result["mean"].values():
        final_gap = abs(
            trajectory["estimated_accuracy_mean"][-1] - trajectory["true_accuracy_mean"][-1]
        )
        assert final_gap < 0.06
