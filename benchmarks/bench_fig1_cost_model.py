"""Figure 1 — cumulative annotation cost: triple-level vs entity-level tasks."""

from __future__ import annotations

from conftest import emit, movie_scale, run_once

from repro.experiments import figure1_cost_curves


def test_figure1_cost_curves(benchmark):
    result = run_once(
        benchmark, figure1_cost_curves, seed=0, num_triples=50, movie_scale=movie_scale()
    )
    rows = []
    for checkpoint in (10, 20, 30, 40, 50):
        rows.append(
            {
                "triples_annotated": checkpoint,
                "triple_level_minutes": result.triple_level_seconds[checkpoint - 1] / 60,
                "entity_level_minutes": result.entity_level_seconds[checkpoint - 1] / 60,
            }
        )
    from repro.experiments import format_table

    emit(
        "Figure 1: cumulative annotation time (50 triples)",
        format_table(rows)
        + f"\nentity-level task uses {result.entity_level_num_entities} entity clusters"
        + f"\nexpected shape: entity-level curve well below triple-level curve",
    )
    assert result.entity_level_seconds[-1] < result.triple_level_seconds[-1]
