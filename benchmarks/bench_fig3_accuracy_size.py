"""Figure 3 — correlation between entity accuracy and cluster size (NELL, YAGO)."""

from __future__ import annotations

import numpy as np
from conftest import emit, run_once

from repro.experiments import figure3_accuracy_vs_size, format_table


def test_figure3_accuracy_vs_size(benchmark):
    result = run_once(benchmark, figure3_accuracy_vs_size, seed=0)
    rows = []
    for dataset, payload in result.items():
        points = payload["points"]
        sizes = np.array([size for size, _ in points])
        accuracies = np.array([accuracy for _, accuracy in points])
        for low, high in ((1, 2), (3, 5), (6, 10), (11, 1_000)):
            mask = (sizes >= low) & (sizes <= high)
            if not mask.any():
                continue
            rows.append(
                {
                    "dataset": dataset,
                    "cluster_size_bin": f"{low}-{high}",
                    "num_entities": int(mask.sum()),
                    "mean_entity_accuracy": float(accuracies[mask].mean()),
                }
            )
        rows.append(
            {
                "dataset": dataset,
                "cluster_size_bin": "ALL",
                "num_entities": len(points),
                "mean_entity_accuracy": float(accuracies.mean()),
                "size_accuracy_correlation": payload["correlation"],
            }
        )
    emit(
        "Figure 3: entity accuracy vs cluster size",
        format_table(rows)
        + "\nexpected shape: mean entity accuracy increases with cluster size"
        + " (positive correlation)",
    )
    assert result["NELL"]["correlation"] > 0
