"""Statistical building blocks shared by every sampling design.

* confidence intervals and margins of error (:mod:`repro.stats.ci`);
* running (Welford) moments for incremental estimation
  (:mod:`repro.stats.running`);
* stratum construction and sample allocation
  (:mod:`repro.stats.allocation`), including the cumulative-square-root-of-
  frequency rule of Dalenius & Hodges used by the paper's size stratification.
"""

from repro.stats.allocation import (
    cumulative_sqrt_frequency_boundaries,
    neyman_allocation,
    proportional_allocation,
)
from repro.stats.ci import (
    ConfidenceInterval,
    margin_of_error,
    normal_critical_value,
    normal_interval,
    required_sample_size,
    wilson_interval,
)
from repro.stats.running import RunningMean

__all__ = [
    "ConfidenceInterval",
    "normal_critical_value",
    "normal_interval",
    "wilson_interval",
    "margin_of_error",
    "required_sample_size",
    "RunningMean",
    "proportional_allocation",
    "neyman_allocation",
    "cumulative_sqrt_frequency_boundaries",
]
