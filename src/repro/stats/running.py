"""Running (incremental) moment computation.

The iterative evaluation framework of the paper draws samples in small batches
and re-estimates after each batch.  :class:`RunningMean` keeps Welford-style
running moments so the estimate, sample variance and standard error of the
mean are available at any time without revisiting earlier observations.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = ["RunningMean"]


class RunningMean:
    """Numerically stable running mean / variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def add(self, value: float) -> None:
        """Add one observation."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def add_all(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for value in values:
            self.add(value)

    def add_many(self, values) -> None:
        """Add a batch of observations in one vectorised step.

        Computes the batch moments with NumPy and folds them in through
        :meth:`merge`, so cost is one pass over the array instead of one
        Python-level :meth:`add` per value.  (Floating-point rounding may
        differ from sequential adds at the last few ulps.)
        """
        import numpy as np

        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            return
        batch = RunningMean()
        batch._count = int(array.size)
        batch._mean = float(array.mean())
        batch._m2 = float(((array - batch._mean) ** 2).sum())
        self.merge(batch)

    def remove(self, value: float) -> None:
        """Remove one previously added observation (inverse Welford update).

        Lets a bounded accumulator (e.g. the reservoir evaluator's per-cluster
        accuracy stats) stay O(1) per estimate read even when items are
        evicted.  The caller must only remove values that were actually added;
        numerical drift after many add/remove cycles is bounded by clamping
        the second moment at zero.
        """
        if self._count == 0:
            raise ValueError("cannot remove from an empty accumulator")
        if self._count == 1:
            self._count = 0
            self._mean = 0.0
            self._m2 = 0.0
            return
        mean_excl = (self._count * self._mean - value) / (self._count - 1)
        self._m2 -= (value - mean_excl) * (value - self._mean)
        if self._m2 < 0.0:
            self._m2 = 0.0
        self._mean = mean_excl
        self._count -= 1

    def merge(self, other: "RunningMean") -> None:
        """Merge another accumulator into this one (parallel Welford merge)."""
        if other._count == 0:
            return
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            return
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._mean = (self._count * self._mean + other._count * other._mean) / total
        self._count = total

    # ------------------------------------------------------------------ #
    # Read-outs
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of observations seen so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def sample_variance(self) -> float:
        """Unbiased sample variance (``ddof=1``); 0.0 with fewer than 2 points."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def population_variance(self) -> float:
        """Population variance (``ddof=0``); 0.0 when empty."""
        if self._count == 0:
            return 0.0
        return self._m2 / self._count

    @property
    def std_error(self) -> float:
        """Standard error of the mean ``sqrt(s^2 / n)``.

        Returns ``inf`` with fewer than 2 observations so that any
        margin-of-error stopping rule keeps sampling.
        """
        if self._count < 2:
            return math.inf
        return math.sqrt(self.sample_variance / self._count)

    def copy(self) -> "RunningMean":
        """Return an independent copy of this accumulator."""
        clone = RunningMean()
        clone._count = self._count
        clone._mean = self._mean
        clone._m2 = self._m2
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunningMean(count={self._count}, mean={self.mean:.4f})"
