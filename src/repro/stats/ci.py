"""Confidence intervals and margins of error.

The paper constructs Normal-approximation confidence intervals (Eq. 1) around
each estimator and stops the iterative evaluation once the margin of error
(half-width of the interval) drops below a user threshold.  A Wilson interval
is also provided for the proportion case: it behaves better for highly
accurate KGs such as YAGO (99 % accuracy), where the Normal interval collapses
to zero width whenever a small sample happens to contain no errors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as scipy_stats

__all__ = [
    "ConfidenceInterval",
    "normal_critical_value",
    "normal_interval",
    "wilson_interval",
    "margin_of_error",
    "required_sample_size",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval around a point estimate."""

    estimate: float
    lower: float
    upper: float
    confidence_level: float

    @property
    def margin_of_error(self) -> float:
        """Half-width of the interval (the paper's MoE)."""
        return (self.upper - self.lower) / 2.0

    @property
    def width(self) -> float:
        """Full width of the interval."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Return whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    def clipped(self, low: float = 0.0, high: float = 1.0) -> "ConfidenceInterval":
        """Clip the interval to ``[low, high]`` (accuracies live in [0, 1])."""
        return ConfidenceInterval(
            estimate=min(max(self.estimate, low), high),
            lower=max(self.lower, low),
            upper=min(self.upper, high),
            confidence_level=self.confidence_level,
        )


def normal_critical_value(confidence_level: float) -> float:
    """Return ``z_{alpha/2}`` for a two-sided interval at ``confidence_level``.

    For example ``normal_critical_value(0.95)`` is approximately 1.96.
    """
    if not 0.0 < confidence_level < 1.0:
        raise ValueError(f"confidence_level must be in (0, 1), got {confidence_level}")
    alpha = 1.0 - confidence_level
    return float(scipy_stats.norm.ppf(1.0 - alpha / 2.0))


def margin_of_error(std_error: float, confidence_level: float) -> float:
    """Margin of error ``z_{alpha/2} * std_error`` (Eq. 1)."""
    if std_error < 0:
        raise ValueError("std_error must be non-negative")
    return normal_critical_value(confidence_level) * std_error


def normal_interval(
    estimate: float, std_error: float, confidence_level: float
) -> ConfidenceInterval:
    """Normal-approximation interval ``estimate ± z * std_error`` (Eq. 1)."""
    moe = margin_of_error(std_error, confidence_level)
    return ConfidenceInterval(
        estimate=estimate,
        lower=estimate - moe,
        upper=estimate + moe,
        confidence_level=confidence_level,
    )


def wilson_interval(successes: int, trials: int, confidence_level: float) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion.

    More reliable than the Normal interval when the proportion is near 0 or 1
    or the sample is small — exactly the YAGO situation in the paper, where an
    empirical interval is reported instead of a symmetric one.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be between 0 and trials")
    z = normal_critical_value(confidence_level)
    p_hat = successes / trials
    denominator = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denominator
    spread = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / trials + z * z / (4.0 * trials * trials))
        / denominator
    )
    # Guard against floating-point round-off pushing the point estimate just
    # outside the interval at the extremes (e.g. successes == trials).
    lower = max(0.0, min(centre - spread, p_hat))
    upper = min(1.0, max(centre + spread, p_hat))
    return ConfidenceInterval(
        estimate=p_hat,
        lower=lower,
        upper=upper,
        confidence_level=confidence_level,
    )


def required_sample_size(variance: float, moe_target: float, confidence_level: float) -> int:
    """Smallest ``n`` with ``z * sqrt(variance / n) <= moe_target``.

    This is the closed-form sample size ``n = variance * z^2 / eps^2`` used in
    the SRS cost analysis (Section 5.1) and in the optimal-m objective
    (Eq. 12), rounded up to an integer.
    """
    if moe_target <= 0:
        raise ValueError("moe_target must be positive")
    if variance < 0:
        raise ValueError("variance must be non-negative")
    z = normal_critical_value(confidence_level)
    return max(1, math.ceil(variance * z * z / (moe_target * moe_target)))
