"""Stratum construction and sample allocation.

Two pieces back the paper's stratified designs (Section 5.3):

* :func:`cumulative_sqrt_frequency_boundaries` — the Dalenius–Hodges
  cumulative-square-root-of-frequency rule used by "size stratification" to
  cut cluster sizes into strata;
* :func:`proportional_allocation` / :func:`neyman_allocation` — how many
  cluster draws to spend in each stratum.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "cumulative_sqrt_frequency_boundaries",
    "largest_remainder",
    "proportional_allocation",
    "neyman_allocation",
]


def largest_remainder(weights: Sequence[float] | np.ndarray, total_samples: int) -> np.ndarray:
    """Split ``total_samples`` by weight with the largest-remainder method.

    The deterministic core shared by :func:`proportional_allocation` and the
    parallel shard engine's per-round draw allocation: floor the proportional
    shares, then hand the leftover draws to the largest fractional parts
    (stable tie-break).  No minimum-per-entry guarantee — zero-share entries
    stay at zero; returns an ``int64`` array.  A non-positive total or weight
    sum yields all zeros.
    """
    weights = np.asarray(weights, dtype=float)
    allocation = np.zeros(weights.shape[0], dtype=np.int64)
    weight_sum = weights.sum()
    if total_samples <= 0 or weight_sum <= 0:
        return allocation
    raw = total_samples * weights / weight_sum
    allocation = np.floor(raw).astype(np.int64)
    remainder = total_samples - int(allocation.sum())
    if remainder > 0:
        order = np.argsort(-(raw - allocation), kind="stable")
        allocation[order[:remainder]] += 1
    return allocation


def cumulative_sqrt_frequency_boundaries(
    values: Sequence[int] | np.ndarray, num_strata: int
) -> list[float]:
    """Compute stratum boundaries with the cumulative-√F rule.

    The values (here: cluster sizes) are binned; the square roots of the bin
    frequencies are accumulated and the cumulative curve is cut into
    ``num_strata`` equal slices.  Returns the ``num_strata - 1`` interior
    boundaries; a value ``v`` belongs to stratum ``h`` when
    ``boundaries[h-1] < v <= boundaries[h]`` (with implicit -inf / +inf ends).

    Raises
    ------
    ValueError
        If ``num_strata < 1`` or ``values`` is empty.
    """
    if num_strata < 1:
        raise ValueError("num_strata must be at least 1")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("values must be non-empty")
    if num_strata == 1:
        return []
    unique_values, counts = np.unique(array, return_counts=True)
    if unique_values.size <= num_strata:
        # Degenerate case: fewer distinct values than strata; put each distinct
        # value in its own stratum by cutting between consecutive values.
        midpoints = (unique_values[:-1] + unique_values[1:]) / 2.0
        return [float(b) for b in midpoints[: num_strata - 1]]
    cumulative = np.cumsum(np.sqrt(counts))
    total = cumulative[-1]
    boundaries: list[float] = []
    for h in range(1, num_strata):
        target = total * h / num_strata
        index = int(np.searchsorted(cumulative, target))
        index = min(index, unique_values.size - 2)
        boundaries.append(float(unique_values[index]))
    # Ensure boundaries are strictly increasing (duplicates can appear when the
    # distribution is extremely skewed); collapse duplicates by nudging upward.
    deduplicated: list[float] = []
    for boundary in boundaries:
        if deduplicated and boundary <= deduplicated[-1]:
            boundary = deduplicated[-1] + 1.0
        deduplicated.append(boundary)
    return deduplicated


def proportional_allocation(stratum_weights: Sequence[float], total_samples: int) -> list[int]:
    """Allocate ``total_samples`` draws proportionally to stratum weights.

    Every non-empty stratum receives at least one draw; remainders are assigned
    to the strata with the largest fractional parts (largest-remainder method).
    """
    if total_samples < 0:
        raise ValueError("total_samples must be non-negative")
    weights = np.asarray(stratum_weights, dtype=float)
    if weights.size == 0:
        return []
    if np.any(weights < 0):
        raise ValueError("stratum weights must be non-negative")
    total_weight = weights.sum()
    if total_weight == 0:
        raise ValueError("at least one stratum weight must be positive")
    allocation = largest_remainder(weights, total_samples)
    # Guarantee a minimum of one sample in every positive-weight stratum.
    for index, weight in enumerate(weights):
        if weight > 0 and allocation[index] == 0 and total_samples >= 1:
            donor = int(np.argmax(allocation))
            if allocation[donor] > 1:
                allocation[donor] -= 1
                allocation[index] += 1
    return [int(a) for a in allocation]


def neyman_allocation(
    stratum_weights: Sequence[float],
    stratum_stds: Sequence[float],
    total_samples: int,
) -> list[int]:
    """Neyman (optimal) allocation: draws proportional to ``W_h * S_h``.

    Falls back to proportional allocation when every stratum standard
    deviation is zero (e.g. a perfectly accurate KG).
    """
    weights = np.asarray(stratum_weights, dtype=float)
    stds = np.asarray(stratum_stds, dtype=float)
    if weights.shape != stds.shape:
        raise ValueError("stratum_weights and stratum_stds must have the same length")
    if np.any(stds < 0):
        raise ValueError("stratum standard deviations must be non-negative")
    products = weights * stds
    if np.all(products == 0):
        return proportional_allocation(list(weights), total_samples)
    return proportional_allocation(list(products), total_samples)
