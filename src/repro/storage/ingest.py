"""Streaming ingest of triple files straight into columnar storage.

The plain-text loaders in :mod:`repro.kg.io` build one
:class:`~repro.kg.triple.Triple` object per line and route it through
``KnowledgeGraph.add``.  That is fine at thousands of triples but wasteful at
millions: every line allocates a Triple, a key tuple and set/dict entries
that the columnar backend immediately re-encodes.

The functions here instead intern each field *as the line is read* and append
the ids directly to the store's growable buffers — no intermediate Triple
list ever exists.  Duplicate lines are removed vectorised at
:meth:`~repro.storage.columnar.ColumnarStore.finalize` time (first occurrence
wins), matching the graph-as-set semantics of the ``add`` path exactly.

Supported formats:

* **Triple TSV** — ``subject<TAB>predicate<TAB>object`` with optional extra
  columns (ignored); blank lines and ``#`` comments skipped.
* **N-Triples (subset)** — ``<s> <p> <o> .`` / ``<s> <p> "literal" .`` lines.
  IRIs are stripped of their angle brackets; an object in angle brackets is
  recorded as an entity object.  Literals are *normalised to their bare
  lexical form*: the N-Triples escape sequences (``\\"``, ``\\\\``, ``\\n``,
  ``\\t``, ``\\r``, ``\\uXXXX``, ``\\UXXXXXXXX``) are decoded and any
  ``@lang`` or ``^^<datatype IRI>`` suffix is stripped, so the interned
  vocabulary string is identical to what the Triple-object loader would
  intern for the same logical value.  Malformed escapes raise ``ValueError``
  with the offending line number.  Full Turtle (prefixes, bnodes) is out of
  scope.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.storage.columnar import ColumnarStore

__all__ = ["ingest_tsv", "ingest_nt", "ingest_rows", "iter_tsv_rows", "iter_nt_rows"]

#: One parsed statement: (subject, predicate, object, object-is-entity).
Row = tuple[str, str, str, bool]


def iter_tsv_rows(path: str | Path) -> Iterator[Row]:
    """Stream ``(s, p, o, is_entity_object)`` rows from a triple TSV file.

    Shares the line filter of :mod:`repro.kg.io` so the streaming and
    object-based TSV loaders accept byte-identical inputs.
    """
    from repro.kg.io import _iter_data_lines

    for line_number, line in _iter_data_lines(Path(path)):
        fields = line.split("\t")
        if len(fields) < 3:
            raise ValueError(f"line {line_number}: expected >= 3 columns, got {len(fields)}")
        yield fields[0], fields[1], fields[2], False


#: Single-character N-Triples string escapes (``ECHAR`` in the grammar).
_ECHAR = {
    '"': '"',
    "'": "'",
    "\\": "\\",
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
}

_HEX_DIGITS = set("0123456789abcdefABCDEF")


def _decode_escapes(text: str, line_number: int) -> str:
    """Decode N-Triples ``ECHAR`` / ``\\uXXXX`` / ``\\UXXXXXXXX`` escapes.

    Malformed escapes raise :class:`ValueError` carrying the line number —
    silently interning a corrupt string would poison the vocabulary.
    """
    if "\\" not in text:
        return text
    out: list[str] = []
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char != "\\":
            out.append(char)
            i += 1
            continue
        if i + 1 >= length:
            raise ValueError(f"line {line_number}: dangling escape at end of literal {text!r}")
        code = text[i + 1]
        if code in _ECHAR:
            out.append(_ECHAR[code])
            i += 2
            continue
        if code in ("u", "U"):
            width = 4 if code == "u" else 8
            digits = text[i + 2 : i + 2 + width]
            if len(digits) != width or not set(digits) <= _HEX_DIGITS:
                raise ValueError(
                    f"line {line_number}: malformed \\{code} escape in literal {text!r}"
                )
            out.append(chr(int(digits, 16)))
            i += 2 + width
            continue
        raise ValueError(f"line {line_number}: unknown escape '\\{code}' in literal {text!r}")
    return "".join(out)


def _strip_term(term: str, line_number: int = 0) -> tuple[str, bool]:
    """Normalise one N-Triples term to ``(vocab string, is-entity)``.

    IRIs lose their angle brackets.  Literals are reduced to the bare lexical
    form: the closing quote is located respecting backslash escapes, any
    ``@lang`` / ``^^<datatype IRI>`` suffix is dropped, and the escape
    sequences inside the body are decoded — so the interned string matches
    what the Triple-object loader interns for the same logical value.
    """
    if term.startswith("<") and term.endswith(">"):
        return term[1:-1], True
    if term.startswith('"'):
        i = 1
        length = len(term)
        while i < length and term[i] != '"':
            i += 2 if term[i] == "\\" else 1
        if i >= length:
            raise ValueError(f"line {line_number}: unterminated literal {term!r}")
        body = term[1:i]
        suffix = term[i + 1 :]
        if suffix and not (
            suffix.startswith("@") or (suffix.startswith("^^<") and suffix.endswith(">"))
        ):
            raise ValueError(f"line {line_number}: malformed literal suffix {suffix!r}")
        return _decode_escapes(body, line_number), False
    return term, False


def iter_nt_rows(path: str | Path) -> Iterator[Row]:
    """Stream rows from an N-Triples file (``<s> <p> <o|"literal"> .``)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if line.endswith("."):
                line = line[:-1].rstrip()
            parts = line.split(None, 2)
            if len(parts) != 3:
                raise ValueError(f"line {line_number}: expected '<s> <p> <o> .'")
            subject, _ = _strip_term(parts[0], line_number)
            predicate, _ = _strip_term(parts[1], line_number)
            obj, is_entity = _strip_term(parts[2], line_number)
            yield subject, predicate, obj, is_entity


def ingest_rows(rows: Iterable[Row], name: str = "kg"):
    """Build a columnar-backed graph from parsed rows, deduplicating at the end."""
    from repro.kg.graph import KnowledgeGraph

    store = ColumnarStore()
    intern = store.vocab.intern
    append = store.append_interned
    for subject, predicate, obj, is_entity_object in rows:
        append(intern(subject), intern(predicate), intern(obj), is_entity_object)
    store.finalize(dedupe=True)
    return KnowledgeGraph(name=name, backend=store)


def ingest_tsv(path: str | Path, name: str | None = None):
    """Stream a triple TSV file into a columnar-backed knowledge graph."""
    path = Path(path)
    return ingest_rows(iter_tsv_rows(path), name=name if name is not None else path.stem)


def ingest_nt(path: str | Path, name: str | None = None):
    """Stream an N-Triples file into a columnar-backed knowledge graph."""
    path = Path(path)
    return ingest_rows(iter_nt_rows(path), name=name if name is not None else path.stem)
