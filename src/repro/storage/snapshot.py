"""Persistent snapshots of columnar knowledge graphs.

A snapshot stores the interned columns, the vocabulary and the CSR cluster
index, so a big (synthetic or ingested) KG is built once and reopened in
milliseconds thereafter.  Two on-disk layouts are supported, chosen by the
target path:

* ``*.npz`` — a single NumPy archive (``np.savez`` /
  ``np.savez_compressed``).  Compact and portable; arrays are read into
  memory on load.
* any other path — a *snapshot directory* holding one ``.npy`` file per
  column.  Loading with ``mmap=True`` memory-maps every column
  (``np.load(..., mmap_mode="r")``), so the resident footprint of a loaded
  graph is only the pages the sampler actually touches.

Array names (both layouts, ``format_version`` 3):

==================  ======================================================
``subjects``        ``int32 (M,)`` interned subject ids
``predicates``      ``int32 (M,)`` interned predicate ids
``objects``         ``int32 (M,)`` interned object ids
``entity_flags``    ``bool  (M,)`` object-is-entity flags
``vocab``           ``str_  (V,)`` id -> string table
``cluster_offsets``   ``int64 (N+1,)`` CSR offsets in row order
``cluster_positions`` ``int32 (M,)`` CSR triple positions
``row_subjects``    ``int32 (N,)`` row -> subject vocab id
``meta``            ``str_ (2,)`` graph name, format version
``labels``          ``bool (M,)`` position-aligned ground-truth labels
                    *(optional, v2)*
``annotated``       ``bool (M,)`` positions annotated so far *(optional,
                    v2)*
==================  ======================================================

Format v2 adds the two optional boolean arrays, so an evaluation or
monitoring run can persist its label oracle (and annotation progress) next to
the graph and resume later without re-annotating.  Format v1 snapshots (no
``labels`` / ``annotated`` arrays) still load; :meth:`SnapshotStore.
load_labels` simply returns ``None`` for them.

Format v3 adds an optional *evaluator-state sidecar* (``evaluator_state.pkl``
inside a snapshot directory, ``<path>.state.pkl`` next to an archive): the
full mid-sequence state of an incremental evaluator — reservoir keys and
candidate heaps or per-stratum accumulators, the annotation account, random
streams and the delta tail — captured by :mod:`repro.evolving.state`, so a
monitoring run resumes after any update batch with a bit-identical
trajectory.  v1/v2 snapshots still load; the sidecar is simply absent.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.storage.columnar import ColumnarStore, Vocabulary

__all__ = ["SnapshotStore"]

_FORMAT_VERSION = 3
_ARRAY_NAMES = (
    "subjects",
    "predicates",
    "objects",
    "entity_flags",
    "vocab",
    "cluster_offsets",
    "cluster_positions",
    "row_subjects",
)
#: Optional v2 arrays; absent from v1 snapshots and legal to omit in v2.
_OPTIONAL_ARRAY_NAMES = ("labels", "annotated")


class SnapshotStore:
    """Save/load a :class:`~repro.storage.columnar.ColumnarStore` on disk.

    Parameters
    ----------
    path:
        Target location.  A ``.npz`` suffix selects the single-file archive
        layout; anything else is treated as a snapshot directory (created on
        save) whose columns can be memory-mapped on load.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @property
    def is_archive(self) -> bool:
        """Whether this snapshot uses the single-file ``.npz`` layout."""
        return self.path.suffix == ".npz"

    def exists(self) -> bool:
        """Whether a snapshot is already present at the target path."""
        if self.is_archive:
            return self.path.is_file()
        return (self.path / "subjects.npy").is_file()

    # ------------------------------------------------------------------ #
    # Save
    # ------------------------------------------------------------------ #
    def save(
        self,
        source,
        name: str | None = None,
        compress: bool = False,
        labels: np.ndarray | None = None,
        annotated: np.ndarray | None = None,
    ) -> Path:
        """Persist ``source`` (a ``ColumnarStore`` or ``KnowledgeGraph``).

        Graphs on a non-columnar backend are converted on the fly.  Returns
        the path written.  ``compress`` only applies to the ``.npz`` layout.
        ``labels`` / ``annotated`` are optional position-aligned boolean
        arrays stored next to the columns (format v2).
        """
        store, graph_name = _as_store(source)
        arrays = dict(store.columns())
        num_triples = int(arrays["subjects"].shape[0])
        for array_name, optional in zip(_OPTIONAL_ARRAY_NAMES, (labels, annotated)):
            if optional is None:
                continue
            optional = np.asarray(optional, dtype=bool)
            if optional.shape[0] != num_triples:
                raise ValueError(
                    f"{array_name} must have one entry per triple "
                    f"({optional.shape[0]} != {num_triples})"
                )
            arrays[array_name] = optional
        arrays["meta"] = np.asarray(
            [name if name is not None else graph_name, str(_FORMAT_VERSION)], dtype=np.str_
        )
        if self.is_archive:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            writer = np.savez_compressed if compress else np.savez
            writer(self.path, **arrays)
        else:
            self.path.mkdir(parents=True, exist_ok=True)
            for array_name, array in arrays.items():
                np.save(self.path / f"{array_name}.npy", array)
        return self.path

    # ------------------------------------------------------------------ #
    # Load
    # ------------------------------------------------------------------ #
    def load(self, mmap: bool = False) -> tuple[ColumnarStore, str]:
        """Reopen the snapshot; return ``(store, graph_name)``.

        ``mmap=True`` memory-maps the columns and is only available for the
        directory layout; the vocabulary stays a fixed-width unicode array on
        disk, so no per-string Python objects are created until strings are
        actually requested.
        """
        if not self.exists():
            raise FileNotFoundError(f"no snapshot at {self.path}")
        if self.is_archive:
            if mmap:
                raise ValueError(
                    ".npz archives cannot be memory-mapped; save the snapshot "
                    "to a directory path (no .npz suffix) to use mmap=True"
                )
            with np.load(self.path, allow_pickle=False) as archive:
                arrays = {array_name: archive[array_name] for array_name in _ARRAY_NAMES}
                meta = archive["meta"]
        else:
            mode = "r" if mmap else None
            arrays = {
                array_name: np.load(self.path / f"{array_name}.npy", mmap_mode=mode)
                for array_name in _ARRAY_NAMES
            }
            meta = np.load(self.path / "meta.npy")
        version = int(str(meta[1]))
        if version > _FORMAT_VERSION:
            raise ValueError(
                f"snapshot format v{version} is newer than supported v{_FORMAT_VERSION}"
            )
        store = ColumnarStore.from_arrays(
            Vocabulary(arrays["vocab"]),
            arrays["subjects"],
            arrays["predicates"],
            arrays["objects"],
            flags=arrays["entity_flags"],
            offsets=arrays["cluster_offsets"],
            positions=arrays["cluster_positions"],
            row_subjects=arrays["row_subjects"],
        )
        return store, str(meta[0])

    def _load_optional(self, array_name: str, mmap: bool = False) -> np.ndarray | None:
        if not self.exists():
            raise FileNotFoundError(f"no snapshot at {self.path}")
        if self.is_archive:
            with np.load(self.path, allow_pickle=False) as archive:
                if array_name not in archive.files:
                    return None
                return archive[array_name]
        target = self.path / f"{array_name}.npy"
        if not target.is_file():
            return None
        return np.load(target, mmap_mode="r" if mmap else None)

    def load_labels(self, mmap: bool = False) -> np.ndarray | None:
        """The persisted position-aligned label array, or ``None`` (v1)."""
        return self._load_optional("labels", mmap=mmap)

    def load_annotated(self, mmap: bool = False) -> np.ndarray | None:
        """The persisted annotated-positions mask, or ``None`` (v1)."""
        return self._load_optional("annotated", mmap=mmap)

    def load_graph(self, mmap: bool = False, name: str | None = None):
        """Reopen the snapshot as a :class:`~repro.kg.graph.KnowledgeGraph`."""
        from repro.kg.graph import KnowledgeGraph

        store, graph_name = self.load(mmap=mmap)
        return KnowledgeGraph(name=name if name is not None else graph_name, backend=store)

    # ------------------------------------------------------------------ #
    # Evaluator-state sidecar (format v3)
    # ------------------------------------------------------------------ #
    @property
    def evaluator_state_path(self) -> Path:
        """Where the v3 evaluator-state sidecar lives for this snapshot."""
        if self.is_archive:
            return self.path.with_suffix(".state.pkl")
        return self.path / "evaluator_state.pkl"

    def has_evaluator_state(self) -> bool:
        """Whether an evaluator-state sidecar has been saved."""
        return self.evaluator_state_path.is_file()

    def save_evaluator_state(self, evaluator) -> Path:
        """Persist an incremental evaluator's mid-sequence state (format v3).

        Capture at a batch boundary; see :mod:`repro.evolving.state` for the
        supported evaluators and the state contents.
        """
        import pickle

        from repro.evolving.state import capture_evaluator_state

        state = capture_evaluator_state(evaluator)
        target = self.evaluator_state_path
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "wb") as handle:
            pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return target

    def load_evaluator_state(
        self,
        base,
        workers: int | None = None,
        num_shards: int | None = None,
        transport=None,
    ):
        """Rebuild the persisted evaluator over ``base`` (a reloaded LabelledKG).

        Returns an evaluator ready for the next ``apply_update`` call; its
        remaining trajectory is bit-identical to an uninterrupted run.
        """
        import pickle

        from repro.evolving.state import restore_evaluator

        target = self.evaluator_state_path
        if not target.is_file():
            raise FileNotFoundError(f"no evaluator state at {target}")
        with open(target, "rb") as handle:
            state = pickle.load(handle)
        return restore_evaluator(
            state, base, workers=workers, num_shards=num_shards, transport=transport
        )


def _as_store(source) -> tuple[ColumnarStore, str]:
    if isinstance(source, ColumnarStore):
        return source, "kg"
    backend = getattr(source, "backend", None)
    if isinstance(backend, ColumnarStore):
        return backend, source.name
    name = getattr(source, "name", "kg")
    return ColumnarStore.from_graph(iter(source)), name
