"""The storage contract :class:`~repro.kg.graph.KnowledgeGraph` delegates to.

A *storage backend* owns the physical representation of a set of triples plus
the entity-cluster index over it.  Two views are exposed:

* a flat, positional view — every triple has a stable integer *position*
  (its insertion rank), and
* a cluster view — entities are numbered by *row* in first-seen order, and
  each row maps to the positions of its triples.

Backends must preserve three invariants the sampling designs rely on:

1. positions are assigned in insertion order and never change;
2. entity rows are assigned in first-seen order of the subject id;
3. ``cluster_positions*`` return positions in insertion order.

Two implementations ship with the package:

* :class:`~repro.storage.memory.InMemoryStore` — Python objects, cheap
  incremental mutation, the behaviour-compatible default;
* :class:`~repro.storage.columnar.ColumnarStore` — interned ``int32`` NumPy
  columns with a CSR cluster index, built for bulk loads, million-triple
  graphs, zero-copy cluster slices and persistent snapshots
  (:class:`~repro.storage.snapshot.SnapshotStore`).

Choose the in-memory store when the workload interleaves many small ``add``
calls with reads; choose the columnar store when the graph is built once (or
loaded from a snapshot) and then sampled heavily.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.kg.triple import Triple

__all__ = ["StorageBackend", "StorageStats", "make_backend", "stats_from_moments"]


@dataclass(frozen=True)
class StorageStats:
    """Size and cluster-shape summary of one stored graph.

    The adaptive transport planner reads this to size a run: ``num_triples``
    bounds the total draw work, ``num_entities`` bounds first-stage
    population, and the cluster-size distribution (mean, max, coefficient of
    variation) measures how *skewed* the entity clusters are — heavily
    skewed graphs need finer shard plans so one giant cluster cannot
    serialise a whole round.
    """

    num_triples: int
    num_entities: int
    mean_cluster_size: float
    max_cluster_size: int
    size_cv: float

    @property
    def skew(self) -> float:
        """Max-over-mean cluster size; ``1.0`` for perfectly uniform clusters."""
        if self.mean_cluster_size <= 0.0:
            return 1.0
        return self.max_cluster_size / self.mean_cluster_size


def stats_from_moments(
    num_triples: int, num_entities: int, max_size: int, sum_squares: int
) -> StorageStats:
    """Fold exact integer cluster-size moments into a :class:`StorageStats`.

    Every backend reduces its cluster sizes to the same four integers —
    triple count (the sizes' sum), entity count, max size, and sum of
    squared sizes — and this one function does the float math.  Whether the
    moments came from a NumPy pass or a SQL aggregate, the resulting floats
    are bit-identical, which keeps the planner's shard decisions (part of a
    run's random-stream identity) independent of the storage backend.
    """
    if num_entities == 0:
        return StorageStats(0, 0, 0.0, 0, 0.0)
    mean = num_triples / num_entities
    variance = max(sum_squares / num_entities - mean * mean, 0.0)
    std = float(np.sqrt(variance))
    return StorageStats(
        num_triples=int(num_triples),
        num_entities=int(num_entities),
        mean_cluster_size=mean,
        max_cluster_size=int(max_size),
        size_cv=std / mean if mean > 0 else 0.0,
    )


class StorageBackend(ABC):
    """Abstract physical storage for a deduplicated, cluster-indexed triple set."""

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    @abstractmethod
    def add(self, triple: Triple) -> bool:
        """Insert ``triple``; return ``True`` if it was not already present."""

    def add_batch(self, triples: Iterable[Triple]) -> list[bool]:
        """Insert many triples; return one added-flag per input triple.

        The default loops over :meth:`add`; backends with a cheaper bulk path
        (vectorised dedup, segment append) override it.
        """
        return [self.add(triple) for triple in triples]

    # ------------------------------------------------------------------ #
    # Size / membership
    # ------------------------------------------------------------------ #
    @property
    @abstractmethod
    def num_triples(self) -> int:
        """Total number of stored triples (``M``)."""

    @property
    @abstractmethod
    def num_entities(self) -> int:
        """Number of distinct subject entities (``N``)."""

    @abstractmethod
    def contains(self, triple: Triple) -> bool:
        """Whether an equal ``(s, p, o)`` triple is stored."""

    # ------------------------------------------------------------------ #
    # Positional triple access
    # ------------------------------------------------------------------ #
    @abstractmethod
    def triple_at(self, position: int) -> Triple:
        """Materialise the triple stored at ``position``."""

    @abstractmethod
    def triples_at(self, positions: Sequence[int] | np.ndarray) -> list[Triple]:
        """Materialise the triples at the given positions, in the given order."""

    @abstractmethod
    def iter_triples(self) -> Iterator[Triple]:
        """Iterate over all triples in insertion order."""

    # ------------------------------------------------------------------ #
    # Cluster access — entity-id keyed (compatibility path)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def entity_ids(self) -> Sequence[str]:
        """All subject entity ids in first-seen (row) order."""

    @abstractmethod
    def has_entity(self, entity_id: str) -> bool:
        """Whether any stored triple has ``entity_id`` as its subject."""

    @abstractmethod
    def cluster_positions(self, entity_id: str) -> np.ndarray:
        """Positions of the entity's triples, insertion-ordered.

        Raises
        ------
        KeyError
            If the entity id has no triples.
        """

    @abstractmethod
    def cluster_size(self, entity_id: str) -> int:
        """``M_i`` for the given entity id (``KeyError`` if absent)."""

    # ------------------------------------------------------------------ #
    # Cluster access — row keyed (fast path)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def entity_row(self, entity_id: str) -> int:
        """Row index of the entity in first-seen order (``KeyError`` if absent)."""

    @abstractmethod
    def entity_id_of_row(self, row: int) -> str:
        """Subject id of cluster ``row``."""

    @abstractmethod
    def cluster_positions_by_row(self, row: int) -> np.ndarray:
        """Positions of cluster ``row``'s triples (zero-copy where possible)."""

    @abstractmethod
    def cluster_size_array(self) -> np.ndarray:
        """``int64`` cluster sizes aligned with row order."""

    def stats(self) -> StorageStats:
        """Measured size/skew statistics over the stored clusters.

        Computed from :meth:`cluster_size_array` in one vectorised pass;
        backends holding the sizes in another form may override with a
        cheaper path.  This is the planner-facing summary — see
        :class:`StorageStats`.
        """
        sizes = np.asarray(self.cluster_size_array(), dtype=np.int64)
        num_entities = int(sizes.shape[0])
        if num_entities == 0:
            return StorageStats(0, 0, 0.0, 0, 0.0)
        return stats_from_moments(
            num_triples=int(sizes.sum()),
            num_entities=num_entities,
            max_size=int(sizes.max()),
            sum_squares=int(np.dot(sizes, sizes)),
        )

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Return the raw ``(offsets, positions)`` CSR arrays, if the backend
        has them.

        ``offsets`` has length ``N + 1``; cluster ``row`` owns
        ``positions[offsets[row]:offsets[row + 1]]``.  Backends without a
        physical CSR index return ``None`` and callers fall back to
        :meth:`cluster_positions_by_row`.
        """
        return None


def make_backend(kind: str) -> StorageBackend:
    """Instantiate a storage backend by name (``"memory"``, ``"columnar"``, or ``"sqlite"``)."""
    if kind == "memory":
        from repro.storage.memory import InMemoryStore

        return InMemoryStore()
    if kind == "columnar":
        from repro.storage.columnar import ColumnarStore

        return ColumnarStore()
    if kind == "sqlite":
        from repro.storage.sqlite import SqliteStore

        return SqliteStore()
    raise ValueError(
        f"unknown storage backend {kind!r}; choose 'memory', 'columnar', or 'sqlite'"
    )
