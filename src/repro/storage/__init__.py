"""Pluggable physical storage for knowledge graphs.

:class:`~repro.kg.graph.KnowledgeGraph` delegates all triple/cluster storage
to a :class:`~repro.storage.backend.StorageBackend`:

* :class:`InMemoryStore` (default) — Python objects, O(1) incremental adds;
  behaviour-identical to the original seed representation.
* :class:`ColumnarStore` — interned ``int32`` NumPy columns with a CSR
  cluster index: O(1) cluster sizes, zero-copy per-cluster position slices,
  vectorised deduplication, and million-triple scale.
* :class:`DeltaStore` — an append-only view layering growable tail segments
  over a frozen columnar base, so applying evolving-KG update batches never
  thaws or rebuilds the frozen index.
* :class:`SnapshotStore` — persists columnar graphs to ``.npz`` archives or
  memory-mappable snapshot directories (format v2 optionally carries
  label/annotation arrays), so big KGs are built once and reopened instantly.
* :class:`SqliteStore` — disk-resident WAL-mode SQLite backend for graphs
  larger than memory: the cluster index is an indexed table, planner stats
  push down into SQL aggregates, and streaming ingest is resumable from a
  per-batch checkpoint.
* :mod:`repro.storage.ingest` — streaming TSV / N-Triples ingest that
  interns ids on the fly without materialising intermediate Triple lists.
"""

from repro.storage.backend import StorageBackend, StorageStats, make_backend
from repro.storage.columnar import ColumnarStore, Vocabulary
from repro.storage.delta import DeltaStore
from repro.storage.ingest import ingest_nt, ingest_rows, ingest_tsv
from repro.storage.memory import InMemoryStore
from repro.storage.shard import ShardPlan, ShardView
from repro.storage.snapshot import SnapshotStore
from repro.storage.sqlite import SqliteStore

__all__ = [
    "StorageBackend",
    "StorageStats",
    "make_backend",
    "InMemoryStore",
    "ColumnarStore",
    "DeltaStore",
    "SqliteStore",
    "Vocabulary",
    "ShardPlan",
    "ShardView",
    "SnapshotStore",
    "ingest_tsv",
    "ingest_nt",
    "ingest_rows",
]
