"""Append-only delta view over a frozen columnar store.

Applying an update batch to a :class:`~repro.storage.columnar.ColumnarStore`
would thaw it (one O(M) pass) and rebuild the CSR index on the next read
(another O(M) pass) — per batch.  :class:`DeltaStore` instead layers growable
*tail segments* on top of a frozen base store:

* the base columns, CSR index and vocabulary are shared zero-copy (the base
  must not be mutated independently afterwards; new strings are interned into
  the shared vocabulary, which is append-only and keeps existing ids valid);
* inserted triples receive positions ``M_base, M_base + 1, …`` in a compact
  tail (``array`` buffers, as in the columnar building mode);
* entity rows follow the standard backend contract: an insertion for an
  existing subject extends that subject's base row, a new subject gets the
  next row, so positions/rows match what an
  :class:`~repro.storage.memory.InMemoryStore` fed the same triples would
  report — the evolving evaluators rely on this for cross-backend estimate
  parity;
* bulk dedup (:meth:`add_batch`) is vectorised: batch keys are checked
  against a sorted structured view of the base columns with one
  ``searchsorted`` instead of a Python key-set over all M base triples.

The merged graph-wide CSR index is only materialised if somebody asks for it
(:meth:`csr_arrays`); the evolving evaluators never do — they sample the
frozen base index and the per-batch segments directly.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.kg.triple import Triple
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.storage.backend import StorageBackend
from repro.storage.columnar import ColumnarStore

__all__ = ["DeltaStore"]

_log = get_logger("storage.delta")


def _key_view(subjects: np.ndarray, predicates: np.ndarray, objects: np.ndarray) -> np.ndarray:
    """Pack (s, p, o) id columns into a single comparable structured array."""
    stacked = np.ascontiguousarray(
        np.column_stack(
            (
                subjects.astype(np.int32, copy=False),
                predicates.astype(np.int32, copy=False),
                objects.astype(np.int32, copy=False),
            )
        )
    )
    return stacked.view([("", np.int32)] * 3).ravel()


class DeltaStore(StorageBackend):
    """A frozen :class:`ColumnarStore` plus append-only tail segments."""

    def __init__(self, base: ColumnarStore) -> None:
        base.finalize()
        self.base = base
        self._base_triples = base.num_triples
        self._base_entities = base.num_entities
        # Ids larger than every id used by the base columns cannot occur in
        # the base, so a triple carrying one skips the base membership check
        # (and typically the whole sorted-key build) entirely.  Derived from
        # the columns, not the vocabulary, because the shared vocabulary may
        # carry ids interned by other users of the base store.
        if self._base_triples:
            subjects, predicates, objects, _ = base.id_columns()
            self._base_id_limit = 1 + max(
                int(np.max(subjects)), int(np.max(predicates)), int(np.max(objects))
            )
        else:
            self._base_id_limit = 0
        # Tail columns (positions >= _base_triples), interned into base.vocab.
        self._tail_s: array = array("i")
        self._tail_p: array = array("i")
        self._tail_o: array = array("i")
        self._tail_f: array = array("B")
        # Tail cluster bookkeeping: subject vocab id -> global tail positions.
        self._tail_positions: dict[int, list[int]] = {}
        self._new_subjects: list[int] = []
        self._new_row_of: dict[int, int] = {}
        # Dedup state: sorted base keys (built lazily, shared per base) plus a
        # plain set for the (small) tail.
        self._base_sorted_keys: np.ndarray | None = None
        self._tail_keys: set[tuple[int, int, int]] = set()
        # Caches invalidated by appends.
        self._csr: tuple[np.ndarray, np.ndarray] | None = None
        self._sizes: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Dedup helpers
    # ------------------------------------------------------------------ #
    def _ensure_base_keys(self) -> np.ndarray:
        if self._base_sorted_keys is None:
            subjects, predicates, objects, _ = self.base.id_columns()
            self._base_sorted_keys = np.sort(_key_view(subjects, predicates, objects))
        return self._base_sorted_keys

    def _in_base(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised membership of packed keys against the base columns."""
        base_keys = self._ensure_base_keys()
        if base_keys.size == 0:
            return np.zeros(keys.shape[0], dtype=bool)
        index = np.searchsorted(base_keys, keys)
        index = np.minimum(index, base_keys.size - 1)
        return base_keys[index] == keys

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _append_interned(
        self, subject_id: int, predicate_id: int, object_id: int, flag: bool
    ) -> None:
        position = self._base_triples + len(self._tail_s)
        self._tail_s.append(subject_id)
        self._tail_p.append(predicate_id)
        self._tail_o.append(object_id)
        self._tail_f.append(1 if flag else 0)
        tail = self._tail_positions.get(subject_id)
        if tail is None:
            self._tail_positions[subject_id] = [position]
            if subject_id not in self.base.subject_row_map() and subject_id not in self._new_row_of:
                self._new_row_of[subject_id] = self._base_entities + len(self._new_subjects)
                self._new_subjects.append(subject_id)
        else:
            tail.append(position)
        self._tail_keys.add((subject_id, predicate_id, object_id))
        self._csr = None
        self._sizes = None

    def _maybe_in_base(self, subject_id: int, predicate_id: int, object_id: int) -> bool:
        limit = self._base_id_limit
        return subject_id < limit and predicate_id < limit and object_id < limit

    def add(self, triple: Triple) -> bool:
        vocab = self.base.vocab
        subject_id = vocab.intern(triple.subject)
        predicate_id = vocab.intern(triple.predicate)
        object_id = vocab.intern(triple.obj)
        key = (subject_id, predicate_id, object_id)
        if key in self._tail_keys:
            return False
        if self._maybe_in_base(subject_id, predicate_id, object_id):
            key_array = _key_view(
                np.asarray([subject_id]), np.asarray([predicate_id]), np.asarray([object_id])
            )
            if bool(self._in_base(key_array)[0]):
                return False
        self._append_interned(subject_id, predicate_id, object_id, triple.is_entity_object)
        return True

    def add_batch(self, triples: Iterable[Triple]) -> list[bool]:
        """Vectorised bulk insert: one membership pass for the whole batch."""
        batch = list(triples)
        if not batch:
            return []
        vocab = self.base.vocab
        pre_batch_vocab = len(vocab)
        subject_ids = vocab.intern_many(t.subject for t in batch)
        predicate_ids = vocab.intern_many(t.predicate for t in batch)
        object_ids = vocab.intern_many(t.obj for t in batch)
        subject_arr = np.asarray(subject_ids, dtype=np.int64)
        predicate_arr = np.asarray(predicate_ids, dtype=np.int64)
        object_arr = np.asarray(object_ids, dtype=np.int64)
        keys = _key_view(subject_arr, predicate_arr, object_arr)
        # Base membership needs all three ids below the base columns' id
        # ceiling; tail membership needs them interned before this batch.
        # Typical insertion workloads carry fresh object strings and skip
        # both checks (and the sorted-key build) entirely.
        keep = np.ones(keys.shape[0], dtype=bool)
        limit = self._base_id_limit
        maybe_base = (subject_arr < limit) & (predicate_arr < limit) & (object_arr < limit)
        base_indices = np.flatnonzero(maybe_base)
        if base_indices.size:
            keep[base_indices] = ~self._in_base(keys[base_indices])
        if self._tail_keys:
            maybe_tail = (
                keep
                & (subject_arr < pre_batch_vocab)
                & (predicate_arr < pre_batch_vocab)
                & (object_arr < pre_batch_vocab)
            )
            tail_keys = self._tail_keys
            for i in np.flatnonzero(maybe_tail).tolist():
                if (subject_ids[i], predicate_ids[i], object_ids[i]) in tail_keys:
                    keep[i] = False
        # Keep only the first occurrence of each key within the batch.
        _, first = np.unique(keys, return_index=True)
        first_mask = np.zeros(keys.shape[0], dtype=bool)
        first_mask[first] = True
        keep &= first_mask
        kept = np.flatnonzero(keep)
        if kept.size == 0:
            return keep.tolist()
        kept_list = kept.tolist()
        kept_s = [subject_ids[i] for i in kept_list]
        kept_p = [predicate_ids[i] for i in kept_list]
        kept_o = [object_ids[i] for i in kept_list]
        self._tail_keys.update(zip(kept_s, kept_p, kept_o))
        self._tail_s.extend(kept_s)
        self._tail_p.extend(kept_p)
        self._tail_o.extend(kept_o)
        self._tail_f.extend(1 if batch[i].is_entity_object else 0 for i in kept_list)
        # Group the appended positions by subject: one pass over the unique
        # subjects of the batch instead of one dict round-trip per triple.
        start = self._base_triples + len(self._tail_s) - kept.size
        positions = start + np.arange(kept.size, dtype=np.int64)
        kept_subjects = subject_arr[kept]
        order = np.argsort(kept_subjects, kind="stable")
        sorted_subjects = kept_subjects[order]
        sorted_positions = positions[order]
        boundaries = np.flatnonzero(np.diff(sorted_subjects)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [kept.size]))
        tail_positions = self._tail_positions
        base_rows = self.base.subject_row_map()
        new_row_of = self._new_row_of
        new_subjects = self._new_subjects
        sorted_position_list = sorted_positions.tolist()
        for subject_id, lo, hi in zip(
            sorted_subjects[starts].tolist(), starts.tolist(), ends.tolist()
        ):
            chunk = sorted_position_list[lo:hi]
            existing = tail_positions.get(subject_id)
            if existing is None:
                tail_positions[subject_id] = chunk
                if subject_id not in base_rows and subject_id not in new_row_of:
                    new_row_of[subject_id] = self._base_entities + len(new_subjects)
                    new_subjects.append(subject_id)
            else:
                existing.extend(chunk)
        self._csr = None
        self._sizes = None
        return keep.tolist()

    # ------------------------------------------------------------------ #
    # Size / membership
    # ------------------------------------------------------------------ #
    @property
    def num_triples(self) -> int:
        return self._base_triples + len(self._tail_s)

    @property
    def num_entities(self) -> int:
        return self._base_entities + len(self._new_subjects)

    @property
    def num_tail_triples(self) -> int:
        """Triples appended on top of the frozen base."""
        return len(self._tail_s)

    def contains(self, triple: Triple) -> bool:
        vocab = self.base.vocab
        subject_id = vocab.get(triple.subject)
        predicate_id = vocab.get(triple.predicate)
        object_id = vocab.get(triple.obj)
        if subject_id is None or predicate_id is None or object_id is None:
            return False
        if (subject_id, predicate_id, object_id) in self._tail_keys:
            return True
        key_array = _key_view(
            np.asarray([subject_id]), np.asarray([predicate_id]), np.asarray([object_id])
        )
        return bool(self._in_base(key_array)[0])

    # ------------------------------------------------------------------ #
    # Positional triple access
    # ------------------------------------------------------------------ #
    def _materialise_tail(self, offset: int) -> Triple:
        vocab = self.base.vocab
        return Triple(
            vocab[self._tail_s[offset]],
            vocab[self._tail_p[offset]],
            vocab[self._tail_o[offset]],
            is_entity_object=bool(self._tail_f[offset]),
        )

    def triple_at(self, position: int) -> Triple:
        if position < 0 or position >= self.num_triples:
            raise IndexError(f"triple position {position} out of range")
        if position < self._base_triples:
            return self.base.triple_at(position)
        return self._materialise_tail(position - self._base_triples)

    def triples_at(self, positions: Sequence[int] | np.ndarray) -> list[Triple]:
        return [self.triple_at(int(position)) for position in positions]

    def iter_triples(self) -> Iterator[Triple]:
        yield from self.base.iter_triples()
        for offset in range(len(self._tail_s)):
            yield self._materialise_tail(offset)

    # ------------------------------------------------------------------ #
    # Cluster access — entity-id keyed
    # ------------------------------------------------------------------ #
    def entity_ids(self) -> Sequence[str]:
        vocab = self.base.vocab
        return tuple(self.base.entity_ids()) + tuple(vocab[sid] for sid in self._new_subjects)

    def has_entity(self, entity_id: str) -> bool:
        subject_id = self.base.vocab.get(entity_id)
        if subject_id is None:
            return False
        return subject_id in self.base.subject_row_map() or subject_id in self._new_row_of

    def _subject_id_of(self, entity_id: str) -> int:
        subject_id = self.base.vocab.get(entity_id)
        if subject_id is None:
            raise KeyError(entity_id)
        return subject_id

    def cluster_positions(self, entity_id: str) -> np.ndarray:
        subject_id = self._subject_id_of(entity_id)
        base_row = self.base.subject_row_map().get(subject_id)
        tail = self._tail_positions.get(subject_id)
        if base_row is not None:
            base_positions = self.base.cluster_positions_by_row(base_row)
            if tail is None:
                return base_positions
            return np.concatenate(
                [np.asarray(base_positions, dtype=np.int64), np.asarray(tail, dtype=np.int64)]
            )
        if tail is None:
            raise KeyError(entity_id)
        return np.asarray(tail, dtype=np.int64)

    def cluster_size(self, entity_id: str) -> int:
        subject_id = self._subject_id_of(entity_id)
        base_row = self.base.subject_row_map().get(subject_id)
        tail = self._tail_positions.get(subject_id)
        if base_row is None and tail is None:
            raise KeyError(entity_id)
        size = len(tail) if tail is not None else 0
        if base_row is not None:
            size += self.base.cluster_size(entity_id)
        return size

    # ------------------------------------------------------------------ #
    # Cluster access — row keyed
    # ------------------------------------------------------------------ #
    def entity_row(self, entity_id: str) -> int:
        subject_id = self._subject_id_of(entity_id)
        base_row = self.base.subject_row_map().get(subject_id)
        if base_row is not None:
            return base_row
        return self._new_row_of[subject_id]

    def entity_id_of_row(self, row: int) -> str:
        if row < self._base_entities:
            return self.base.entity_id_of_row(row)
        return self.base.vocab[self._new_subjects[row - self._base_entities]]

    def cluster_positions_by_row(self, row: int) -> np.ndarray:
        return self.cluster_positions(self.entity_id_of_row(row))

    def cluster_size_array(self) -> np.ndarray:
        if self._sizes is None:
            sizes = np.concatenate(
                [
                    self.base.cluster_size_array(),
                    np.zeros(len(self._new_subjects), dtype=np.int64),
                ]
            )
            subject_rows = self.base.subject_row_map()
            for subject_id, tail in self._tail_positions.items():
                base_row = subject_rows.get(subject_id)
                row = base_row if base_row is not None else self._new_row_of[subject_id]
                sizes[row] += len(tail)
            self._sizes = sizes
        return self._sizes

    # ------------------------------------------------------------------ #
    # Compaction (periodic re-freeze)
    # ------------------------------------------------------------------ #
    def tail_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The tail's ``(subjects, predicates, objects, flags)`` id columns."""
        return (
            np.frombuffer(self._tail_s, dtype=np.int32).copy()
            if self._tail_s
            else np.empty(0, np.int32),
            np.frombuffer(self._tail_p, dtype=np.int32).copy()
            if self._tail_p
            else np.empty(0, np.int32),
            np.frombuffer(self._tail_o, dtype=np.int32).copy()
            if self._tail_o
            else np.empty(0, np.int32),
            np.frombuffer(self._tail_f, dtype=np.uint8).astype(bool)
            if self._tail_f
            else np.empty(0, bool),
        )

    def restore_tail(
        self,
        subjects: np.ndarray,
        predicates: np.ndarray,
        objects: np.ndarray,
        flags: np.ndarray,
    ) -> None:
        """Re-append a previously captured tail (already interned and deduped).

        Rebuilds the per-subject tail index and dedup keys exactly as the
        original appends did; used when an evaluator is restored from a
        persisted state (snapshot format v3).
        """
        if self.num_tail_triples:
            raise ValueError("restore_tail requires an empty tail")
        for subject_id, predicate_id, object_id, flag in zip(
            subjects.tolist(), predicates.tolist(), objects.tolist(), flags.tolist()
        ):
            self._append_interned(int(subject_id), int(predicate_id), int(object_id), bool(flag))

    def compact(self) -> ColumnarStore:
        """Re-freeze base + tail into a fresh frozen base; return it.

        One vectorised O(M + T) pass: the id columns are concatenated in
        position order and the CSR index is rebuilt, which preserves every
        invariant the samplers rely on — triple positions, entity rows
        (first-seen order) and per-cluster position order are all unchanged,
        so estimates drawn from the compacted store are bit-identical to
        draws from the layered view.  ``self`` re-bases onto the new store
        in place (the tail becomes empty), keeping existing references to
        this backend valid; very long update streams therefore retain O(1)
        cluster reads instead of ever-growing tail consolidation.
        """
        base_s, base_p, base_o, base_f = self.base.id_columns()
        tail_s, tail_p, tail_o, tail_f = self.tail_arrays()
        obs_metrics.counter("delta_compactions_total").inc()
        _log.debug(
            "compaction",
            base_triples=self._base_triples,
            tail_triples=int(tail_s.shape[0]),
        )
        merged = ColumnarStore.from_arrays(
            self.base.vocab,
            np.concatenate([np.asarray(base_s), tail_s]),
            np.concatenate([np.asarray(base_p), tail_p]),
            np.concatenate([np.asarray(base_o), tail_o]),
            flags=np.concatenate([np.asarray(base_f, dtype=bool), tail_f]),
        )
        self.base = merged
        self._base_triples = merged.num_triples
        self._base_entities = merged.num_entities
        if self._base_triples:
            subjects, predicates, objects, _ = merged.id_columns()
            self._base_id_limit = 1 + max(
                int(np.max(subjects)), int(np.max(predicates)), int(np.max(objects))
            )
        self._tail_s = array("i")
        self._tail_p = array("i")
        self._tail_o = array("i")
        self._tail_f = array("B")
        self._tail_positions = {}
        self._new_subjects = []
        self._new_row_of = {}
        self._base_sorted_keys = None
        self._tail_keys = set()
        self._csr = None
        self._sizes = None
        return merged

    def maybe_compact(self, threshold: float = 0.5, min_tail: int = 1024) -> bool:
        """Compact when the tail outgrows ``threshold`` of the base.

        Returns whether a compaction ran.  ``min_tail`` keeps tiny graphs
        from re-freezing on every batch.
        """
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        tail = self.num_tail_triples
        if tail < min_tail or tail < threshold * max(self._base_triples, 1):
            return False
        self.compact()
        return True

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Merged base + tail CSR index, materialised lazily and cached.

        Costs one O(M) pass after the latest append; the evolving evaluators
        avoid it by sampling the frozen base index and their own per-batch
        segments, but whole-graph samplers (e.g. a static TWCS run over the
        evolved graph) still get the vectorised path.
        """
        if self._csr is None:
            base_offsets, base_positions = self.base.csr_arrays()
            rows_by_position = np.empty(self.num_triples, dtype=np.int64)
            base_rows = np.repeat(
                np.arange(self._base_entities, dtype=np.int64), np.diff(base_offsets)
            )
            rows_by_position[np.asarray(base_positions, dtype=np.int64)] = base_rows
            subject_rows = self.base.subject_row_map()
            for subject_id, tail in self._tail_positions.items():
                base_row = subject_rows.get(subject_id)
                row = base_row if base_row is not None else self._new_row_of[subject_id]
                rows_by_position[tail] = row
            sizes = self.cluster_size_array()
            offsets = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
            positions = np.argsort(rows_by_position, kind="stable").astype(np.int64)
            self._csr = (offsets, positions)
        return self._csr
