"""Content-addressed distribution of CSR snapshot shards to worker nodes.

The RPC transport (:mod:`repro.sampling.rpc`) ships a graph's frozen CSR
cluster index — ``cluster_offsets`` / ``cluster_positions`` — to remote
worker nodes exactly once.  Three pieces make that cheap and idempotent:

* :func:`csr_digest` — a stable content address (SHA-256 over dtype, shape
  and raw bytes of both arrays).  Masters ask a node "do you hold digest
  ``d``?" before shipping anything, so an unchanged graph is never re-sent
  across runs, transports or reconnects;
* :func:`pack_csr` / :func:`unpack_array` — portable ``.npy`` byte
  serialisation of the columns (the same format
  :class:`~repro.storage.snapshot.SnapshotStore` directories use on disk);
* :class:`SnapshotCache` — the worker-side store: each digest materialises
  as a directory of ``.npy`` files under the cache root, written atomically
  (temp dir + rename) and re-opened memory-mapped, so a node's resident
  footprint is the CSR pages its shard tasks actually touch.

Nothing here talks to sockets; the transport composes these primitives.
"""

from __future__ import annotations

import hashlib
import io
import os
import shutil
import uuid
from pathlib import Path

import numpy as np

from repro.obs import metrics as obs_metrics

__all__ = [
    "csr_digest",
    "pack_array",
    "pack_csr",
    "unpack_array",
    "SnapshotCache",
    "CSR_ARRAY_NAMES",
]

#: Array names a CSR snapshot package always carries, in shipping order.
CSR_ARRAY_NAMES = ("cluster_offsets", "cluster_positions")


def csr_digest(offsets: np.ndarray, positions: np.ndarray) -> str:
    """Stable content address of a CSR index (hex SHA-256).

    Covers dtype, shape and raw bytes of both arrays, so any change to the
    index — new triples, re-freeze, different dtype — yields a new digest
    while byte-identical indices (including re-opened snapshots) share one.
    """
    digest = hashlib.sha256()
    for array in (offsets, positions):
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype.str).encode("ascii"))
        digest.update(str(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def pack_array(array: np.ndarray) -> bytes:
    """Serialise one array to ``.npy`` bytes (portable across platforms)."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


def unpack_array(data: bytes) -> np.ndarray:
    """Inverse of :func:`pack_array`."""
    return np.load(io.BytesIO(data), allow_pickle=False)


def pack_csr(offsets: np.ndarray, positions: np.ndarray) -> dict[str, bytes]:
    """Package a CSR index for shipping, keyed by :data:`CSR_ARRAY_NAMES`."""
    return {
        "cluster_offsets": pack_array(offsets),
        "cluster_positions": pack_array(positions),
    }


class SnapshotCache:
    """Worker-side content-addressed store of received snapshot shards.

    Each digest owns one directory ``<root>/<digest>/`` holding the packaged
    arrays as ``.npy`` files.  :meth:`store` writes into a temporary sibling
    directory and renames it into place, so a partially received snapshot
    (worker killed mid-transfer) never satisfies :meth:`has`.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Sweep staging leftovers from a process killed mid-store: they are
        # incomplete by definition and must never shadow a real digest.
        for entry in self.root.glob(".tmp-*"):
            shutil.rmtree(entry, ignore_errors=True)

    def path(self, digest: str) -> Path:
        """The directory a digest materialises at (whether or not it exists)."""
        return self.root / digest

    def has(self, digest: str) -> bool:
        """Whether this cache already holds a complete copy of ``digest``."""
        held = self.path(digest).is_dir()
        name = "snapshot_cache_hits_total" if held else "snapshot_cache_misses_total"
        obs_metrics.counter(name).inc()
        return held

    def digests(self) -> list[str]:
        """All complete digests currently held, sorted (staging dirs excluded)."""
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and not entry.name.startswith(".")
        )

    def store(self, digest: str, arrays: dict[str, bytes], *, verify: bool = False) -> Path:
        """Materialise a received snapshot package atomically; return its path.

        With ``verify=True`` the packaged CSR columns are unpacked and their
        recomputed :func:`csr_digest` compared against the claimed digest
        before anything touches the cache — a corrupted or forged package
        (bit rot in transit, a peer lying about content) is rejected with
        :class:`ValueError` instead of poisoning the content address.
        """
        if not isinstance(digest, str) or not digest or os.sep in digest or digest.startswith("."):
            raise ValueError(f"unsafe snapshot digest {digest!r}")
        if verify:
            missing = [name for name in CSR_ARRAY_NAMES if name not in arrays]
            if missing:
                raise ValueError(f"snapshot package is missing arrays {missing}")
            try:
                offsets = unpack_array(arrays["cluster_offsets"])
                positions = unpack_array(arrays["cluster_positions"])
            except Exception as exc:
                raise ValueError(
                    f"snapshot package for {digest[:16]} is unreadable: {exc}"
                ) from exc
            actual = csr_digest(offsets, positions)
            if actual != digest:
                raise ValueError(
                    f"snapshot package digest mismatch: claimed {digest[:16]}…, "
                    f"content hashes to {actual[:16]}…"
                )
        target = self.path(digest)
        if target.is_dir():
            return target
        staging = self.root / f".tmp-{digest[:16]}-{uuid.uuid4().hex[:8]}"
        staging.mkdir(parents=True)
        try:
            for name, data in arrays.items():
                if os.sep in name or name.startswith("."):
                    raise ValueError(f"unsafe array name {name!r} in snapshot package")
                with open(staging / f"{name}.npy", "wb") as handle:
                    handle.write(data)
            os.replace(staging, target)
        except OSError:
            # A concurrent store of the same digest won the rename race: the
            # content is identical by construction, so just use theirs.
            shutil.rmtree(staging, ignore_errors=True)
            if not target.is_dir():
                raise
        return target

    def load_csr(self, digest: str) -> tuple[np.ndarray, np.ndarray]:
        """Memory-map the CSR columns of a held digest."""
        base = self.path(digest)
        if not base.is_dir():
            raise FileNotFoundError(f"snapshot digest {digest} not in cache {self.root}")
        return (
            np.load(base / "cluster_offsets.npy", mmap_mode="r"),
            np.load(base / "cluster_positions.npy", mmap_mode="r"),
        )
