"""Out-of-core SQLite storage backend.

The in-memory and columnar backends assume the graph fits in RAM; the paper's
own motivation is web-scale KGs.  :class:`SqliteStore` keeps the triple set
and the vocabulary in a WAL-mode SQLite file and answers the
:class:`~repro.storage.backend.StorageBackend` contract with indexed queries,
so graphs much larger than memory evaluate on one node:

* the CSR cluster index becomes *indexed range scans* — the ``triples`` table
  is indexed on ``(entity_row, position)``, so
  :meth:`~SqliteStore.cluster_positions_by_row` is one range query and a
  shard's contiguous entity-row range streams out in index order;
* :meth:`~SqliteStore.cluster_size_array` and :meth:`~SqliteStore.stats` (the
  planner's :class:`~repro.storage.backend.StorageStats` input) push down
  into SQL aggregates over the same index — the per-cluster moments come back
  as exact integers and the float math is shared with the base class, so the
  measured graph shape is bit-identical across backends;
* the batch draw surface stays bit-identical to the other backends: the
  sampling engine needs raw ``(offsets, positions)`` arrays, so
  :meth:`~SqliteStore.csr_arrays` materialises *only the position index*
  (about 12 bytes per triple) lazily from one index-ordered scan.  The heavy
  string columns and the vocabulary never leave the database file, which is
  what keeps resident memory flat (see ``benchmarks/bench_storage_backend.py``).

Durability pragmas follow the usual WAL recipe: ``journal_mode=WAL`` +
``synchronous=NORMAL`` makes per-batch commits cheap while keeping the
database consistent across a hard kill (the WAL is replayed on the next
open); ``busy_timeout`` retries briefly instead of failing on a locked file;
``mmap_size`` lets reads come straight from the page cache mapping.

Ingest is *resumable*: :meth:`~SqliteStore.ingest_file` streams a TSV or
N-Triples file in bounded-memory batches and commits a checkpoint row
(``ingest_state``) in the same transaction as each batch.  A load killed
mid-batch rolls back to the last committed batch on reopen, and re-running
the ingest skips exactly the committed rows — the finished database has
byte-identical logical content (:meth:`~SqliteStore.content_digest`) to an
uninterrupted load.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import tempfile
import weakref
from collections.abc import Iterable, Iterator, Sequence
from datetime import datetime, timezone
from itertools import islice
from pathlib import Path

import numpy as np

from repro.kg.triple import Triple
from repro.storage.backend import StorageBackend, StorageStats, stats_from_moments

__all__ = ["SqliteStore"]

_SQLITE_MAGIC = b"SQLite format 3\x00"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value
);
CREATE TABLE IF NOT EXISTS vocab (
    id    INTEGER PRIMARY KEY,
    token TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS entities (
    row        INTEGER PRIMARY KEY,
    subject_id INTEGER NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS triples (
    position         INTEGER PRIMARY KEY,
    entity_row       INTEGER NOT NULL,
    s                INTEGER NOT NULL,
    p                INTEGER NOT NULL,
    o                INTEGER NOT NULL,
    is_entity_object INTEGER NOT NULL DEFAULT 0,
    UNIQUE (s, p, o)
);
CREATE INDEX IF NOT EXISTS triples_cluster_idx ON triples (entity_row, position);
CREATE TABLE IF NOT EXISTS ingest_state (
    source     TEXT PRIMARY KEY,
    batches    INTEGER NOT NULL,
    rows       INTEGER NOT NULL,
    status     TEXT NOT NULL,
    updated_at TEXT NOT NULL
);
"""

#: Upper bound on the in-memory token/row lookup caches used during ingest.
#: The caches are pure accelerators over the ``vocab`` / ``entities`` tables;
#: clearing them bounds ingest memory on arbitrarily large inputs.
_CACHE_LIMIT = 1 << 20

_TRIPLE_QUERY = (
    "SELECT vs.token, vp.token, vo.token, t.is_entity_object "
    "FROM triples t "
    "JOIN vocab vs ON vs.id = t.s "
    "JOIN vocab vp ON vp.id = t.p "
    "JOIN vocab vo ON vo.id = t.o "
)


def is_sqlite_file(path: str | Path) -> bool:
    """Whether ``path`` is an existing SQLite database file (header magic)."""
    path = Path(path)
    if not path.is_file():
        return False
    with path.open("rb") as handle:
        return handle.read(16) == _SQLITE_MAGIC


class SqliteStore(StorageBackend):
    """Disk-resident storage backend over one WAL-mode SQLite file.

    Parameters
    ----------
    path:
        Database file.  An existing repro database is reopened in place;
        ``None`` creates a private temporary file that is removed when the
        store is garbage-collected or :meth:`close`\\ d.
    mmap_size:
        Value for ``PRAGMA mmap_size`` (bytes; ``0`` disables memory-mapped
        reads).  Default 256 MiB.
    """

    def __init__(self, path: str | Path | None = None, *, mmap_size: int = 256 * 1024 * 1024):
        if path is None:
            handle, tmp = tempfile.mkstemp(prefix="repro-kg-", suffix=".sqlite")
            os.close(handle)
            self.path = Path(tmp)
            self._owns_file = True
        else:
            self.path = Path(path)
            self._owns_file = False
        self.mmap_size = int(mmap_size)
        self._conn = sqlite3.connect(self.path, isolation_level=None)
        for pragma in (
            "PRAGMA journal_mode=WAL",
            "PRAGMA synchronous=NORMAL",
            "PRAGMA busy_timeout=30000",
            f"PRAGMA mmap_size={self.mmap_size}",
        ):
            self._conn.execute(pragma)
        self._conn.executescript(_SCHEMA)
        self._token_cache: dict[str, int] = {}
        self._row_cache: dict[int, int] = {}
        self._load_counters()
        self._csr: tuple[np.ndarray, np.ndarray] | None = None
        self._sizes: np.ndarray | None = None
        self._finalizer = weakref.finalize(
            self, _cleanup, self._conn, self.path if self._owns_file else None
        )

    # ------------------------------------------------------------------ #
    # Connection / lifecycle
    # ------------------------------------------------------------------ #
    def _load_counters(self) -> None:
        cur = self._conn.execute("SELECT COUNT(*) FROM triples")
        self._num_triples = int(cur.fetchone()[0])
        cur = self._conn.execute("SELECT COUNT(*) FROM entities")
        self._num_entities = int(cur.fetchone()[0])
        cur = self._conn.execute("SELECT COALESCE(MAX(id) + 1, 0) FROM vocab")
        self._next_token_id = int(cur.fetchone()[0])

    def close(self) -> None:
        """Close the connection (and delete the file if it was a temporary)."""
        self._finalizer()

    def __getstate__(self):
        raise TypeError(
            "SqliteStore is not picklable: it wraps a live sqlite3 connection. "
            "Share the database path and reopen with SqliteStore(path) instead."
        )

    def _begin(self) -> bool:
        """Open a transaction unless one is already active; return whether we did."""
        if self._conn.in_transaction:
            return False
        self._conn.execute("BEGIN")
        return True

    def _invalidate(self) -> None:
        self._csr = None
        self._sizes = None

    def _reset_after_rollback(self) -> None:
        """Drop every cache that may now disagree with the database."""
        self._token_cache.clear()
        self._row_cache.clear()
        self._load_counters()
        self._invalidate()

    # ------------------------------------------------------------------ #
    # Interning / row assignment
    # ------------------------------------------------------------------ #
    def _intern(self, token: str) -> int:
        token_id = self._token_cache.get(token)
        if token_id is not None:
            return token_id
        found = self._conn.execute("SELECT id FROM vocab WHERE token = ?", (token,)).fetchone()
        if found is None:
            token_id = self._next_token_id
            self._conn.execute("INSERT INTO vocab (id, token) VALUES (?, ?)", (token_id, token))
            self._next_token_id += 1
        else:
            token_id = int(found[0])
        if len(self._token_cache) >= _CACHE_LIMIT:
            self._token_cache.clear()
        self._token_cache[token] = token_id
        return token_id

    def _token_id(self, token: str) -> int | None:
        token_id = self._token_cache.get(token)
        if token_id is not None:
            return token_id
        found = self._conn.execute("SELECT id FROM vocab WHERE token = ?", (token,)).fetchone()
        return None if found is None else int(found[0])

    def _existing_row(self, subject_id: int) -> int | None:
        row = self._row_cache.get(subject_id)
        if row is not None:
            return row
        found = self._conn.execute(
            "SELECT row FROM entities WHERE subject_id = ?", (subject_id,)
        ).fetchone()
        return None if found is None else int(found[0])

    def _cache_row(self, subject_id: int, row: int) -> None:
        if len(self._row_cache) >= _CACHE_LIMIT:
            self._row_cache.clear()
        self._row_cache[subject_id] = row

    def _insert_interned(
        self, subject_id: int, predicate_id: int, object_id: int, flag: bool
    ) -> bool:
        """Insert one already-interned statement; return whether it was new.

        Positions are dense insertion ranks over *kept* (non-duplicate)
        statements and entity rows follow first-seen subject order — the
        same invariants the other backends guarantee.
        """
        row = self._existing_row(subject_id)
        if row is None:
            # A brand-new subject cannot carry a duplicate (s, p, o).
            row = self._num_entities
            self._conn.execute(
                "INSERT INTO entities (row, subject_id) VALUES (?, ?)", (row, subject_id)
            )
            self._num_entities += 1
            self._cache_row(subject_id, row)
        else:
            self._cache_row(subject_id, row)
            dup = self._conn.execute(
                "SELECT 1 FROM triples WHERE s = ? AND p = ? AND o = ?",
                (subject_id, predicate_id, object_id),
            ).fetchone()
            if dup is not None:
                return False
        self._conn.execute(
            "INSERT INTO triples (position, entity_row, s, p, o, is_entity_object) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (self._num_triples, row, subject_id, predicate_id, object_id, 1 if flag else 0),
        )
        self._num_triples += 1
        return True

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        own_txn = self._begin()
        try:
            added = self._insert_interned(
                self._intern(triple.subject),
                self._intern(triple.predicate),
                self._intern(triple.obj),
                triple.is_entity_object,
            )
        except BaseException:
            if own_txn:
                self._conn.execute("ROLLBACK")
                self._reset_after_rollback()
            raise
        if own_txn:
            self._conn.execute("COMMIT")
        if added:
            self._invalidate()
        return added

    def add_batch(self, triples: Iterable[Triple]) -> list[bool]:
        own_txn = self._begin()
        try:
            flags = [
                self._insert_interned(
                    self._intern(t.subject),
                    self._intern(t.predicate),
                    self._intern(t.obj),
                    t.is_entity_object,
                )
                for t in triples
            ]
        except BaseException:
            if own_txn:
                self._conn.execute("ROLLBACK")
                self._reset_after_rollback()
            raise
        if own_txn:
            self._conn.execute("COMMIT")
        if any(flags):
            self._invalidate()
        return flags

    # ------------------------------------------------------------------ #
    # Bulk construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_columnar(cls, store, path: str | Path | None = None, name: str | None = None):
        """Bulk-copy a frozen :class:`~repro.storage.columnar.ColumnarStore`.

        Vocabulary ids, triple positions and entity rows are copied verbatim,
        so every draw taken from the resulting store is bit-identical to one
        taken from ``store``.  An existing file at ``path`` is replaced.
        """
        if path is not None:
            _remove_database(Path(path))
        out = cls(path)
        subjects, predicates, objects, flags = store.id_columns()
        row_subjects = store.row_subject_ids()
        # Subject id -> row, as a dense LUT (subject ids are vocab-dense).
        lut = np.zeros(int(row_subjects.max()) + 1 if row_subjects.size else 1, dtype=np.int64)
        lut[np.asarray(row_subjects, dtype=np.int64)] = np.arange(row_subjects.size)
        rows = lut[np.asarray(subjects, dtype=np.int64)]
        conn = out._conn
        conn.execute("BEGIN")
        try:
            conn.executemany(
                "INSERT INTO vocab (id, token) VALUES (?, ?)",
                ((i, store.vocab[i]) for i in range(len(store.vocab))),
            )
            conn.executemany(
                "INSERT INTO entities (row, subject_id) VALUES (?, ?)",
                enumerate(np.asarray(row_subjects, dtype=np.int64).tolist()),
            )
            conn.executemany(
                "INSERT INTO triples (position, entity_row, s, p, o, is_entity_object) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                zip(
                    range(subjects.shape[0]),
                    rows.tolist(),
                    np.asarray(subjects, dtype=np.int64).tolist(),
                    np.asarray(predicates, dtype=np.int64).tolist(),
                    np.asarray(objects, dtype=np.int64).tolist(),
                    np.asarray(flags, dtype=np.int64).tolist(),
                ),
            )
            if name is not None:
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES ('name', ?)", (name,)
                )
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        out._load_counters()
        return out

    # ------------------------------------------------------------------ #
    # Resumable streaming ingest
    # ------------------------------------------------------------------ #
    def ingest_file(
        self,
        path: str | Path,
        fmt: str = "tsv",
        *,
        batch_size: int = 50_000,
        max_batches: int | None = None,
        source: str | None = None,
    ) -> dict:
        """Stream a TSV / N-Triples file into the database, resumably.

        Rows are parsed and inserted in batches of ``batch_size``; each batch
        commits together with a checkpoint row in ``ingest_state`` (keyed by
        ``source``, default the resolved file path), so a load killed at any
        point resumes from the last committed batch: the committed prefix of
        parsed rows is skipped and the finished database is logically
        byte-identical (:meth:`content_digest`) to an uninterrupted load of
        the same file.  ``max_batches`` stops early after that many committed
        batches (checkpoint left ``in_progress``) — useful for incremental
        loading and for testing resume.

        Returns a report dict: rows/batches consumed by this call, the resume
        offset, and the final checkpoint status.
        """
        from repro.storage.ingest import iter_nt_rows, iter_tsv_rows

        if fmt not in ("tsv", "nt"):
            raise ValueError(f"unknown ingest format {fmt!r}; choose 'tsv' or 'nt'")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        path = Path(path)
        key = source if source is not None else f"{fmt}:{path.resolve()}"
        state = self._conn.execute(
            "SELECT batches, rows, status FROM ingest_state WHERE source = ?", (key,)
        ).fetchone()
        batches_done, rows_done, status = (
            (int(state[0]), int(state[1]), state[2]) if state else (0, 0, "new")
        )
        report = {
            "source": key,
            "resumed_from_rows": rows_done,
            "resumed_from_batches": batches_done,
            "rows_this_call": 0,
            "batches_this_call": 0,
        }
        if status == "done":
            report["status"] = "done"
            return report
        rows_iter = iter_tsv_rows(path) if fmt == "tsv" else iter_nt_rows(path)
        if rows_done:
            # Skip the committed prefix of *parsed* rows (duplicates count:
            # they were consumed, just not inserted).
            next(islice(rows_iter, rows_done, rows_done), None)
        while True:
            batch = list(islice(rows_iter, batch_size))
            if not batch:
                status = "done"
                self._checkpoint(key, batches_done, rows_done, status)
                break
            self._conn.execute("BEGIN")
            try:
                for subject, predicate, obj, flag in batch:
                    self._insert_interned(
                        self._intern(subject), self._intern(predicate), self._intern(obj), flag
                    )
                batches_done += 1
                rows_done += len(batch)
                status = "in_progress"
                self._checkpoint(key, batches_done, rows_done, status, commit=False)
            except BaseException:
                self._conn.execute("ROLLBACK")
                self._reset_after_rollback()
                raise
            self._conn.execute("COMMIT")
            report["rows_this_call"] += len(batch)
            report["batches_this_call"] += 1
            if max_batches is not None and report["batches_this_call"] >= max_batches:
                break
        self._invalidate()
        report["status"] = status
        return report

    def _checkpoint(self, key: str, batches: int, rows: int, status: str, commit: bool = True):
        own_txn = self._begin() if commit else False
        self._conn.execute(
            "INSERT INTO ingest_state (source, batches, rows, status, updated_at) "
            "VALUES (?, ?, ?, ?, ?) "
            "ON CONFLICT (source) DO UPDATE SET "
            "batches = excluded.batches, rows = excluded.rows, "
            "status = excluded.status, updated_at = excluded.updated_at",
            (key, batches, rows, status, datetime.now(timezone.utc).isoformat()),
        )
        if own_txn:
            self._conn.execute("COMMIT")

    def ingest_state(self, source: str) -> dict | None:
        """The checkpoint row for ``source`` (``None`` if never ingested)."""
        found = self._conn.execute(
            "SELECT batches, rows, status, updated_at FROM ingest_state WHERE source = ?",
            (source,),
        ).fetchone()
        if found is None:
            return None
        return {
            "batches": int(found[0]),
            "rows": int(found[1]),
            "status": found[2],
            "updated_at": found[3],
        }

    def content_digest(self) -> str:
        """SHA-256 over the logical graph content, independent of WAL state.

        Hashes the ``vocab``, ``entities`` and ``triples`` tables in key
        order.  ``ingest_state`` (which carries wall-clock timestamps) and
        ``meta`` are deliberately excluded: two loads of the same data are
        equal exactly when their digests are.
        """
        digest = hashlib.sha256()
        for query in (
            "SELECT id, token FROM vocab ORDER BY id",
            "SELECT row, subject_id FROM entities ORDER BY row",
            "SELECT position, entity_row, s, p, o, is_entity_object "
            "FROM triples ORDER BY position",
        ):
            for record in self._conn.execute(query):
                digest.update(repr(record).encode("utf-8"))
            digest.update(b"|")
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # Metadata / labels (snapshot support)
    # ------------------------------------------------------------------ #
    def graph_name(self) -> str | None:
        """The stored graph name, if one was recorded."""
        found = self._conn.execute("SELECT value FROM meta WHERE key = 'name'").fetchone()
        return None if found is None else str(found[0])

    def save_labels(self, labels: np.ndarray) -> None:
        """Persist a position-aligned boolean label array (bit-packed)."""
        labels = np.asarray(labels, dtype=bool)
        if labels.shape[0] != self.num_triples:
            raise ValueError(
                f"labels length {labels.shape[0]} != num_triples {self.num_triples}"
            )
        own_txn = self._begin()
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('labels', ?)",
            (np.packbits(labels.astype(np.uint8)).tobytes(),),
        )
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('labels_len', ?)",
            (int(labels.shape[0]),),
        )
        if own_txn:
            self._conn.execute("COMMIT")

    def load_labels(self) -> np.ndarray | None:
        """The stored label array, or ``None`` if labels were never saved."""
        blob = self._conn.execute("SELECT value FROM meta WHERE key = 'labels'").fetchone()
        length = self._conn.execute("SELECT value FROM meta WHERE key = 'labels_len'").fetchone()
        if blob is None or length is None:
            return None
        packed = np.frombuffer(blob[0], dtype=np.uint8)
        return np.unpackbits(packed, count=int(length[0])).astype(bool)

    # ------------------------------------------------------------------ #
    # Size / membership
    # ------------------------------------------------------------------ #
    @property
    def num_triples(self) -> int:
        return self._num_triples

    @property
    def num_entities(self) -> int:
        return self._num_entities

    def contains(self, triple: Triple) -> bool:
        subject_id = self._token_id(triple.subject)
        predicate_id = self._token_id(triple.predicate)
        object_id = self._token_id(triple.obj)
        if subject_id is None or predicate_id is None or object_id is None:
            return False
        found = self._conn.execute(
            "SELECT 1 FROM triples WHERE s = ? AND p = ? AND o = ?",
            (subject_id, predicate_id, object_id),
        ).fetchone()
        return found is not None

    # ------------------------------------------------------------------ #
    # Positional triple access
    # ------------------------------------------------------------------ #
    def triple_at(self, position: int) -> Triple:
        if position < 0 or position >= self._num_triples:
            raise IndexError(f"triple position {position} out of range")
        record = self._conn.execute(
            _TRIPLE_QUERY + "WHERE t.position = ?", (int(position),)
        ).fetchone()
        return Triple(record[0], record[1], record[2], is_entity_object=bool(record[3]))

    def triples_at(self, positions: Sequence[int] | np.ndarray) -> list[Triple]:
        return [self.triple_at(int(position)) for position in positions]

    def iter_triples(self) -> Iterator[Triple]:
        for record in self._conn.execute(_TRIPLE_QUERY + "ORDER BY t.position"):
            yield Triple(record[0], record[1], record[2], is_entity_object=bool(record[3]))

    # ------------------------------------------------------------------ #
    # Cluster access — entity-id keyed
    # ------------------------------------------------------------------ #
    def entity_ids(self) -> Sequence[str]:
        return tuple(
            record[0]
            for record in self._conn.execute(
                "SELECT v.token FROM entities e JOIN vocab v ON v.id = e.subject_id "
                "ORDER BY e.row"
            )
        )

    def has_entity(self, entity_id: str) -> bool:
        subject_id = self._token_id(entity_id)
        return subject_id is not None and self._existing_row(subject_id) is not None

    def entity_row(self, entity_id: str) -> int:
        subject_id = self._token_id(entity_id)
        if subject_id is None:
            raise KeyError(entity_id)
        row = self._existing_row(subject_id)
        if row is None:
            raise KeyError(entity_id)
        return row

    def cluster_positions(self, entity_id: str) -> np.ndarray:
        return self.cluster_positions_by_row(self.entity_row(entity_id))

    def cluster_size(self, entity_id: str) -> int:
        row = self.entity_row(entity_id)
        count = self._conn.execute(
            "SELECT COUNT(*) FROM triples WHERE entity_row = ?", (row,)
        ).fetchone()
        return int(count[0])

    # ------------------------------------------------------------------ #
    # Cluster access — row keyed
    # ------------------------------------------------------------------ #
    def entity_id_of_row(self, row: int) -> str:
        found = self._conn.execute(
            "SELECT v.token FROM entities e JOIN vocab v ON v.id = e.subject_id "
            "WHERE e.row = ?",
            (int(row),),
        ).fetchone()
        if found is None:
            raise IndexError(f"entity row {row} out of range")
        return str(found[0])

    def cluster_positions_by_row(self, row: int) -> np.ndarray:
        """One index range scan over ``(entity_row, position)``."""
        row = int(row)
        if row < 0 or row >= self._num_entities:
            raise IndexError(f"entity row {row} out of range")
        cursor = self._conn.execute(
            "SELECT position FROM triples WHERE entity_row = ? ORDER BY position", (row,)
        )
        return np.asarray([record[0] for record in cursor], dtype=np.int64)

    def cluster_size_array(self) -> np.ndarray:
        if self._sizes is None:
            sizes = np.zeros(self._num_entities, dtype=np.int64)
            for row, count in self._conn.execute(
                "SELECT entity_row, COUNT(*) FROM triples GROUP BY entity_row"
            ):
                sizes[row] = count
            self._sizes = sizes
        return self._sizes

    def stats(self) -> StorageStats:
        """Planner stats pushed down into one SQL aggregate.

        The inner query groups the cluster index into per-row counts; the
        outer one folds them into exact integer moments (count, sum, max,
        sum of squares).  The float math is shared with
        :meth:`StorageBackend.stats`, so the result is bit-identical to what
        any other backend reports for the same graph.
        """
        record = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(c), 0), COALESCE(MAX(c), 0), "
            "COALESCE(SUM(c * c), 0) "
            "FROM (SELECT COUNT(*) AS c FROM triples GROUP BY entity_row)"
        ).fetchone()
        num_entities, num_triples, max_size, sum_squares = (int(v) for v in record)
        return stats_from_moments(num_triples, num_entities, max_size, sum_squares)

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Materialise (lazily, cached) the position index the engine needs.

        ``offsets`` comes from the SQL size aggregate; ``positions`` streams
        out of one index-ordered scan (``ORDER BY entity_row, position``).
        This is the only part of the graph the sampling engine ever holds in
        memory (~12 bytes per triple) — the string columns and vocabulary
        stay on disk.  Sharing the array layout with the columnar backend is
        what makes batch draws and the sharded executor bit-identical across
        backends.
        """
        if self._csr is None:
            sizes = self.cluster_size_array()
            offsets = np.concatenate(
                ([0], np.cumsum(sizes, dtype=np.int64))
            ).astype(np.int64)
            cursor = self._conn.execute(
                "SELECT position FROM triples ORDER BY entity_row, position"
            )
            positions = np.fromiter(
                (record[0] for record in cursor), dtype=np.int64, count=self._num_triples
            )
            self._csr = (offsets, positions)
        return self._csr

    # ------------------------------------------------------------------ #
    # Column export (loader-parity digests, conversion back to columnar)
    # ------------------------------------------------------------------ #
    def id_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The ``(subjects, predicates, objects, flags)`` id columns.

        Materialised from one positional scan; matches
        :meth:`ColumnarStore.id_columns` element for element when both stores
        loaded the same data.
        """
        subjects = np.empty(self._num_triples, dtype=np.int32)
        predicates = np.empty(self._num_triples, dtype=np.int32)
        objects = np.empty(self._num_triples, dtype=np.int32)
        flags = np.empty(self._num_triples, dtype=bool)
        cursor = self._conn.execute(
            "SELECT position, s, p, o, is_entity_object FROM triples ORDER BY position"
        )
        for position, s, p, o, flag in cursor:
            subjects[position] = s
            predicates[position] = p
            objects[position] = o
            flags[position] = bool(flag)
        return subjects, predicates, objects, flags

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SqliteStore(path={str(self.path)!r}, entities={self.num_entities}, "
            f"triples={self.num_triples})"
        )


def _remove_database(path: Path) -> None:
    for candidate in (path, path.with_name(path.name + "-wal"), path.with_name(path.name + "-shm")):
        try:
            candidate.unlink()
        except FileNotFoundError:
            pass


def _cleanup(conn: sqlite3.Connection, temp_path: Path | None) -> None:
    try:
        conn.close()
    except Exception:  # pragma: no cover - interpreter shutdown
        pass
    if temp_path is not None:
        _remove_database(temp_path)
