"""Sharding of the frozen CSR cluster index into contiguous entity ranges.

The cluster-sampling designs are embarrassingly parallel at the cluster
level: every second-stage draw and estimate update touches exactly one
cluster.  The columnar backend's CSR layout (``offsets[N + 1]`` /
``positions[M]``) hands out the partitions for free — any contiguous *row*
range ``[lo, hi)`` owns the contiguous *triple* slice
``positions[offsets[lo]:offsets[hi]]``.

Two pieces live here:

* :class:`ShardPlan` — cuts ``[0, N)`` into up to ``K`` contiguous row
  ranges balanced by triple count (a cluster is never split, so a cluster
  larger than ``M / K`` simply occupies a shard of its own and the plan
  collapses to fewer shards);
* :class:`ShardView` — a zero-copy view of one shard's slice of the CSR
  index.  Views created from a snapshot directory pickle as ``(path, lo,
  hi)`` and re-attach via ``np.load(..., mmap_mode="r")`` in the receiving
  process, so worker processes never copy the index; views over in-memory
  arrays fall back to pickling the (shard-sized) slices.

The parallel draw engine (:mod:`repro.sampling.parallel`) consumes both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["ShardPlan", "ShardView"]


@dataclass(frozen=True)
class ShardPlan:
    """Up to ``K`` contiguous entity-row ranges balanced by triple count.

    Attributes
    ----------
    boundaries:
        Strictly increasing row boundaries of length ``num_shards + 1`` with
        ``boundaries[0] == 0`` and ``boundaries[-1] == N``; shard ``k`` owns
        rows ``boundaries[k]:boundaries[k + 1]``.
    triple_offsets:
        ``offsets[boundaries]`` — shard ``k`` owns the triple slice
        ``positions[triple_offsets[k]:triple_offsets[k + 1]]``.
    """

    boundaries: np.ndarray
    triple_offsets: np.ndarray

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_offsets(cls, offsets: np.ndarray, num_shards: int) -> "ShardPlan":
        """Cut a CSR ``offsets`` array into balanced contiguous row ranges.

        Degenerate inputs are handled gracefully: an empty graph yields a
        zero-shard plan, ``num_shards`` larger than the number of entities
        is clamped, and a single cluster holding more than ``M / K`` triples
        occupies one shard alone (the plan then has fewer than ``K`` shards
        rather than splitting the cluster).
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be at least 1, got {num_shards}")
        offsets = np.asarray(offsets, dtype=np.int64)
        num_rows = int(offsets.shape[0]) - 1
        if num_rows <= 0:
            empty = np.zeros(1, dtype=np.int64)
            return cls(boundaries=empty, triple_offsets=empty.copy())
        shards = min(num_shards, num_rows)
        total = int(offsets[-1])
        # Ideal cut points at multiples of M / K, snapped to the first row
        # boundary at or past each target; np.unique collapses cuts that a
        # giant cluster pushed onto the same boundary.
        targets = (total * np.arange(1, shards, dtype=np.int64)) // shards
        cuts = np.searchsorted(offsets, targets, side="left").astype(np.int64)
        boundaries = np.unique(np.concatenate(([0], cuts, [num_rows])))
        return cls(boundaries=boundaries, triple_offsets=offsets[boundaries])

    @classmethod
    def from_sizes(cls, sizes: np.ndarray, num_shards: int) -> "ShardPlan":
        """Build a plan from a cluster-size array (offsets are derived)."""
        sizes = np.asarray(sizes, dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
        return cls.from_offsets(offsets, num_shards)

    @classmethod
    def for_graph(cls, graph, num_shards: int) -> "ShardPlan":
        """Build a plan over a graph's CSR index (any backend)."""
        csr = graph.backend.csr_arrays()
        if csr is not None:
            return cls.from_offsets(csr[0], num_shards)
        return cls.from_sizes(graph.cluster_size_array(), num_shards)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Number of shards actually produced (may be below the requested K)."""
        return int(self.boundaries.shape[0]) - 1

    @property
    def num_entities(self) -> int:
        """Total entity rows covered by the plan."""
        return int(self.boundaries[-1])

    @property
    def num_triples(self) -> int:
        """Total triples covered by the plan."""
        return int(self.triple_offsets[-1])

    def row_range(self, shard: int) -> tuple[int, int]:
        """The ``[lo, hi)`` row range owned by ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise IndexError(f"shard {shard} out of range for {self.num_shards} shards")
        return int(self.boundaries[shard]), int(self.boundaries[shard + 1])

    def entity_counts(self) -> np.ndarray:
        """Rows per shard, aligned with shard order."""
        return np.diff(self.boundaries)

    def triple_counts(self) -> np.ndarray:
        """Triples per shard, aligned with shard order."""
        return np.diff(self.triple_offsets)

    def shard_of_row(self, row: int) -> int:
        """The shard owning entity ``row``."""
        if not 0 <= row < self.num_entities:
            raise IndexError(f"row {row} out of range for {self.num_entities} entities")
        return int(np.searchsorted(self.boundaries, row, side="right")) - 1

    def partition_rows(self, rows: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Group arbitrary global rows by owning shard, preserving input order.

        Returns ``(shard, indices)`` pairs (indices into ``rows``) for every
        shard that received at least one row, in shard order.
        """
        rows = np.asarray(rows, dtype=np.int64)
        assignment = np.searchsorted(self.boundaries, rows, side="right") - 1
        return [
            (int(shard), np.flatnonzero(assignment == shard))
            for shard in np.unique(assignment)
        ]


def _view_from_arrays(offsets: np.ndarray, positions: np.ndarray, lo: int, hi: int) -> "ShardView":
    return ShardView(
        offsets=np.asarray(offsets)[lo : hi + 1],
        positions=np.asarray(positions)[int(offsets[lo]) : int(offsets[hi])],
        row_start=lo,
    )


@dataclass
class ShardView:
    """Zero-copy view of one contiguous shard of a CSR cluster index.

    ``offsets`` is the *global* offsets slice ``offsets[lo:hi + 1]`` (values
    still index the global positions array); ``positions`` is the matching
    triple slice, whose values are global triple positions.  Both are NumPy
    views — possibly into memory-mapped snapshot columns — so constructing a
    view copies nothing.

    Views built through :meth:`from_snapshot` remember their source and
    pickle as ``(path, lo, hi)``; the receiving process re-attaches via
    ``mmap`` instead of deserialising the arrays.  Views over plain arrays
    pickle their (shard-sized) slices as a portable fallback.
    """

    offsets: np.ndarray
    positions: np.ndarray
    row_start: int
    snapshot_path: str | None = field(default=None, compare=False)

    # ------------------------------------------------------------------ #
    # Construction / pickling
    # ------------------------------------------------------------------ #
    @classmethod
    def from_csr(
        cls, offsets: np.ndarray, positions: np.ndarray, lo: int, hi: int
    ) -> "ShardView":
        """Slice a shard out of in-memory CSR arrays (zero-copy views)."""
        return _view_from_arrays(offsets, positions, lo, hi)

    @classmethod
    def from_plan(
        cls, offsets: np.ndarray, positions: np.ndarray, plan: ShardPlan, shard: int
    ) -> "ShardView":
        """Slice the ``shard``-th range of ``plan`` out of CSR arrays."""
        lo, hi = plan.row_range(shard)
        return cls.from_csr(offsets, positions, lo, hi)

    @classmethod
    def from_snapshot(cls, path: str | Path, lo: int, hi: int) -> "ShardView":
        """Attach to a snapshot *directory*'s CSR columns via ``mmap``.

        Only the directory layout can be memory-mapped; the loaded arrays
        stay on disk and the resident footprint is the pages the sampler
        touches.  The returned view pickles as ``(path, lo, hi)``.
        """
        base = Path(path)
        offsets = np.load(base / "cluster_offsets.npy", mmap_mode="r")
        positions = np.load(base / "cluster_positions.npy", mmap_mode="r")
        view = _view_from_arrays(offsets, positions, lo, hi)
        view.snapshot_path = str(base)
        return view

    def __reduce__(self):
        if self.snapshot_path is not None:
            return (
                ShardView.from_snapshot,
                (self.snapshot_path, self.row_start, self.row_start + self.num_rows),
            )
        return (
            ShardView,
            (np.asarray(self.offsets).copy(), np.asarray(self.positions).copy(), self.row_start),
        )

    # ------------------------------------------------------------------ #
    # CSR accessors
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Entity rows in this shard."""
        return int(self.offsets.shape[0]) - 1

    @property
    def num_triples(self) -> int:
        """Triples in this shard."""
        return int(self.positions.shape[0])

    @property
    def triple_start(self) -> int:
        """Global index of the shard's first triple slot in ``positions``."""
        return int(self.offsets[0])

    def local_offsets(self) -> np.ndarray:
        """Offsets re-based to the shard's own positions slice."""
        return self.offsets - self.offsets[0]

    def sizes(self) -> np.ndarray:
        """Cluster sizes of the shard's rows, in local row order."""
        return np.diff(self.offsets)

    def cluster_positions(self, local_row: int) -> np.ndarray:
        """Global triple positions of local cluster ``local_row`` (zero-copy)."""
        base = int(self.offsets[0])
        return self.positions[
            int(self.offsets[local_row]) - base : int(self.offsets[local_row + 1]) - base
        ]

    def global_row(self, local_row: int) -> int:
        """Map a local row index back to the global entity row."""
        return self.row_start + local_row
