"""Columnar storage backend: interned ``int32`` columns + CSR cluster index.

Strings are interned once into a :class:`Vocabulary`; triples live in three
parallel ``int32`` NumPy columns (subject / predicate / object ids) plus a
boolean entity-object flag column.  The cluster view is a CSR-style index —
an ``offsets`` array of length ``N + 1`` and a ``positions`` array of length
``M`` — so cluster-size lookup is O(1) and per-cluster position slices are
zero-copy NumPy views.

The store has two internal modes:

* **building** — appends go to compact growable buffers (``array('i')``);
  O(1) per triple, no NumPy arrays are reallocated;
* **frozen** — the columns are consolidated NumPy (possibly memory-mapped)
  arrays and the CSR index exists.

Any positional/cluster read finalises the store (building → frozen, one O(M)
pass); any ``add`` after that thaws it back (another O(M) pass).  Bulk-load
workloads therefore pay one consolidation total, while workloads that
interleave many single adds with reads should use
:class:`~repro.storage.memory.InMemoryStore` instead.

Deduplication follows the same graph-as-set semantics as the in-memory
backend.  ``add`` dedups eagerly through a key set (built lazily on first
use); the bulk ingest paths (:mod:`repro.storage.ingest`) skip the key set
and dedup vectorised at :meth:`ColumnarStore.finalize` time, keeping first
occurrences in insertion order.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.kg.triple import Triple
from repro.storage.backend import StorageBackend

__all__ = ["Vocabulary", "ColumnarStore"]


class Vocabulary:
    """Bidirectional string <-> ``int32`` id interning table.

    Ids are assigned densely in first-intern order.  The table has two
    representations: a Python ``list`` (mutable, used while building) and a
    fixed-width NumPy unicode array (frozen, used after a snapshot load so the
    strings can stay memory-mapped).  The reverse index (string -> id) is a
    dict built lazily — a snapshot-loaded vocabulary that is only ever read
    by id never pays for it.
    """

    __slots__ = ("_list", "_array", "_index")

    def __init__(self, strings: Iterable[str] | np.ndarray | None = None) -> None:
        if isinstance(strings, np.ndarray):
            self._list: list[str] | None = None
            self._array: np.ndarray | None = strings
        else:
            self._list = list(strings) if strings is not None else []
            self._array = None
        self._index: dict[str, int] | None = None

    def __len__(self) -> int:
        if self._list is not None:
            return len(self._list)
        assert self._array is not None
        return int(self._array.shape[0])

    def __getitem__(self, token_id: int) -> str:
        if self._list is not None:
            return self._list[token_id]
        assert self._array is not None
        return str(self._array[token_id])

    def _ensure_index(self) -> dict[str, int]:
        if self._index is None:
            if self._list is not None:
                self._index = {token: i for i, token in enumerate(self._list)}
            else:
                assert self._array is not None
                self._index = {str(token): i for i, token in enumerate(self._array)}
        return self._index

    def _ensure_list(self) -> list[str]:
        if self._list is None:
            assert self._array is not None
            self._list = [str(token) for token in self._array]
            self._array = None
        return self._list

    def intern(self, token: str) -> int:
        """Return the id of ``token``, assigning a fresh one if unseen."""
        index = self._ensure_index()
        token_id = index.get(token)
        if token_id is None:
            tokens = self._ensure_list()
            token_id = len(tokens)
            tokens.append(token)
            index[token] = token_id
        return token_id

    def intern_many(self, items: Iterable[str]) -> list[int]:
        """Bulk :meth:`intern` with the table lookups hoisted out of the loop."""
        index = self._ensure_index()
        tokens = self._ensure_list()
        index_get = index.get
        append = tokens.append
        ids = []
        ids_append = ids.append
        for token in items:
            token_id = index_get(token)
            if token_id is None:
                token_id = len(tokens)
                append(token)
                index[token] = token_id
            ids_append(token_id)
        return ids

    def id_of(self, token: str) -> int:
        """Return the id of ``token`` (``KeyError`` if never interned)."""
        return self._ensure_index()[token]

    def get(self, token: str) -> int | None:
        """Return the id of ``token`` or ``None`` if never interned."""
        return self._ensure_index().get(token)

    def to_array(self) -> np.ndarray:
        """The vocabulary as a fixed-width unicode array (for snapshots)."""
        if self._array is not None and self._list is None:
            return self._array
        assert self._list is not None
        return np.asarray(self._list, dtype=np.str_)


class ColumnarStore(StorageBackend):
    """Interned columnar triple storage with a CSR cluster index."""

    def __init__(self) -> None:
        self.vocab = Vocabulary()
        # Building-mode growable buffers ('i' = C int, 32 bits on all
        # supported platforms; 'B' = unsigned char for the flag column).
        self._buf_s: array = array("i")
        self._buf_p: array = array("i")
        self._buf_o: array = array("i")
        self._buf_f: array = array("B")
        # Building-mode cluster bookkeeping.
        self._row_subjects_list: list[int] = []
        self._row_counts: array = array("q")
        self._subject_row: dict[int, int] | None = {}
        # Frozen-mode consolidated columns + CSR index.
        self._col_s: np.ndarray | None = None
        self._col_p: np.ndarray | None = None
        self._col_o: np.ndarray | None = None
        self._col_f: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        self._positions: np.ndarray | None = None
        self._row_subjects_arr: np.ndarray | None = None
        # Lazy dedup/membership key set of (s, p, o) id tuples.
        self._keys: set[tuple[int, int, int]] | None = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, triples: Iterable[Triple]) -> "ColumnarStore":
        """Bulk-convert an iterable of (already deduplicated) triples."""
        store = cls()
        append = store.append_interned
        intern = store.vocab.intern
        for triple in triples:
            append(
                intern(triple.subject),
                intern(triple.predicate),
                intern(triple.obj),
                triple.is_entity_object,
            )
        return store

    @classmethod
    def from_arrays(
        cls,
        vocab: Vocabulary | np.ndarray | Sequence[str],
        subjects: np.ndarray,
        predicates: np.ndarray,
        objects: np.ndarray,
        flags: np.ndarray | None = None,
        offsets: np.ndarray | None = None,
        positions: np.ndarray | None = None,
        row_subjects: np.ndarray | None = None,
    ) -> "ColumnarStore":
        """Adopt pre-built (possibly memory-mapped) columns without copying.

        ``subjects``/``predicates``/``objects`` must already be deduplicated
        and id-consistent with ``vocab``.  The CSR index and row table are
        rebuilt from the subject column when not supplied.
        """
        store = cls()
        store.vocab = vocab if isinstance(vocab, Vocabulary) else Vocabulary(np.asarray(vocab))
        store._col_s = np.asarray(subjects)
        store._col_p = np.asarray(predicates)
        store._col_o = np.asarray(objects)
        if flags is None:
            store._col_f = np.zeros(store._col_s.shape[0], dtype=bool)
        else:
            store._col_f = np.asarray(flags).astype(bool, copy=False)
        store._row_subjects_list = []
        store._row_counts = array("q")
        store._subject_row = None
        if offsets is not None and positions is not None and row_subjects is not None:
            store._offsets = np.asarray(offsets)
            store._positions = np.asarray(positions)
            store._row_subjects_arr = np.asarray(row_subjects)
        else:
            store._build_csr()
        return store

    # ------------------------------------------------------------------ #
    # Mode management
    # ------------------------------------------------------------------ #
    @property
    def _building(self) -> bool:
        return self._col_s is None

    def append_interned(
        self, subject_id: int, predicate_id: int, object_id: int, is_entity_object: bool = False
    ) -> None:
        """Append one triple given already-interned ids (no dedup check).

        This is the raw bulk-load primitive used by the ingest and generator
        paths; call :meth:`finalize` with ``dedupe=True`` afterwards if the
        source may contain duplicates.
        """
        if not self._building:
            self._thaw()
        self._buf_s.append(subject_id)
        self._buf_p.append(predicate_id)
        self._buf_o.append(object_id)
        self._buf_f.append(1 if is_entity_object else 0)
        if self._subject_row is None:
            self._subject_row = {sid: row for row, sid in enumerate(self._row_subjects_list)}
        row = self._subject_row.get(subject_id)
        if row is None:
            self._subject_row[subject_id] = len(self._row_subjects_list)
            self._row_subjects_list.append(subject_id)
            self._row_counts.append(1)
        else:
            self._row_counts[row] += 1
        if self._keys is not None:
            self._keys.add((subject_id, predicate_id, object_id))

    def _thaw(self) -> None:
        """Frozen -> building: move the consolidated columns back to buffers."""
        assert self._col_s is not None

        def to_buffer(column: np.ndarray, typecode: str, dtype) -> array:
            # frombytes is a single memcpy; .tolist() would churn one Python
            # object per element, which dominates thaw time at millions of
            # triples.
            buffer = array(typecode)
            buffer.frombytes(np.ascontiguousarray(column, dtype=dtype).tobytes())
            return buffer

        self._buf_s = to_buffer(self._col_s, "i", np.int32)
        self._buf_p = to_buffer(self._col_p, "i", np.int32)
        self._buf_o = to_buffer(self._col_o, "i", np.int32)
        self._buf_f = to_buffer(self._col_f, "B", np.uint8)
        self._ensure_row_table()
        assert self._row_subjects_arr is not None
        sizes = self.cluster_size_array()
        self._row_subjects_list = [int(s) for s in self._row_subjects_arr]
        self._row_counts = to_buffer(sizes, "q", np.int64)
        self._subject_row = None  # rebuilt lazily on next append
        self._col_s = self._col_p = self._col_o = self._col_f = None
        self._offsets = self._positions = self._row_subjects_arr = None

    def finalize(self, dedupe: bool = False) -> "ColumnarStore":
        """Building -> frozen: consolidate buffers and build the CSR index.

        With ``dedupe=True``, exact ``(s, p, o)`` repeats are dropped keeping
        the first occurrence, preserving insertion order — the vectorised
        equivalent of the per-``add`` set check.  Returns ``self``.
        """
        if not self._building and not dedupe:
            return self
        if self._building:

            def consolidate(buffer, dtype):
                if not buffer:
                    return np.empty(0, dtype)
                return np.frombuffer(buffer, dtype=dtype).copy()

            self._col_s = consolidate(self._buf_s, np.int32)
            self._col_p = consolidate(self._buf_p, np.int32)
            self._col_o = consolidate(self._buf_o, np.int32)
            self._col_f = consolidate(self._buf_f, np.uint8).astype(bool)
            self._buf_s = array("i")
            self._buf_p = array("i")
            self._buf_o = array("i")
            self._buf_f = array("B")
        if dedupe and self._col_s.size:
            keep = self._first_occurrence_mask()
            if not bool(keep.all()):
                self._col_s = self._col_s[keep]
                self._col_p = self._col_p[keep]
                self._col_o = self._col_o[keep]
                self._col_f = self._col_f[keep]
                self._keys = None
        self._row_subjects_list = []
        self._row_counts = array("q")
        self._subject_row = None
        self._build_csr()
        return self

    def _first_occurrence_mask(self) -> np.ndarray:
        """Boolean mask keeping the first occurrence of each (s, p, o) key."""
        stacked = np.column_stack(
            (
                self._col_s.astype(np.int32),
                self._col_p.astype(np.int32),
                self._col_o.astype(np.int32),
            )
        )
        stacked = np.ascontiguousarray(stacked)
        keys = stacked.view([("", np.int32)] * 3).ravel()
        _, first = np.unique(keys, return_index=True)
        keep = np.zeros(keys.shape[0], dtype=bool)
        keep[first] = True
        return keep

    def _build_csr(self) -> None:
        assert self._col_s is not None
        subjects = np.asarray(self._col_s, dtype=np.int64)
        if subjects.size == 0:
            self._row_subjects_arr = np.empty(0, dtype=np.int32)
            self._offsets = np.zeros(1, dtype=np.int64)
            self._positions = np.empty(0, dtype=np.int32)
            return
        unique_ids, first_index = np.unique(subjects, return_index=True)
        row_order = np.argsort(first_index, kind="stable")
        self._row_subjects_arr = unique_ids[row_order].astype(np.int32)
        # Map each triple's subject id to its row via a dense lookup table.
        lut = np.empty(int(unique_ids[-1]) + 1, dtype=np.int64)
        lut[self._row_subjects_arr] = np.arange(row_order.size)
        rows = lut[subjects]
        counts = np.bincount(rows, minlength=row_order.size)
        self._offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        self._positions = np.argsort(rows, kind="stable").astype(np.int32)

    def _ensure_frozen(self) -> None:
        if self._building:
            self.finalize()

    def _ensure_row_table(self) -> None:
        self._ensure_frozen()

    def _ensure_subject_row(self) -> dict[int, int]:
        if self._subject_row is None:
            if self._building:
                source: Iterable[int] = self._row_subjects_list
            else:
                assert self._row_subjects_arr is not None
                source = (int(s) for s in self._row_subjects_arr)
            self._subject_row = {sid: row for row, sid in enumerate(source)}
        return self._subject_row

    def _ensure_keys(self) -> set[tuple[int, int, int]]:
        if self._keys is None:
            if self._building:
                self._keys = set(zip(self._buf_s, self._buf_p, self._buf_o))
            else:
                self._keys = set(
                    zip(self._col_s.tolist(), self._col_p.tolist(), self._col_o.tolist())
                )
        return self._keys

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        subject_id = self.vocab.intern(triple.subject)
        predicate_id = self.vocab.intern(triple.predicate)
        object_id = self.vocab.intern(triple.obj)
        keys = self._ensure_keys()
        key = (subject_id, predicate_id, object_id)
        if key in keys:
            return False
        self.append_interned(subject_id, predicate_id, object_id, triple.is_entity_object)
        keys.add(key)
        return True

    # ------------------------------------------------------------------ #
    # Size / membership
    # ------------------------------------------------------------------ #
    @property
    def num_triples(self) -> int:
        if self._building:
            return len(self._buf_s)
        assert self._col_s is not None
        return int(self._col_s.shape[0])

    @property
    def num_entities(self) -> int:
        if self._building:
            return len(self._row_subjects_list)
        assert self._row_subjects_arr is not None
        return int(self._row_subjects_arr.shape[0])

    def contains(self, triple: Triple) -> bool:
        subject_id = self.vocab.get(triple.subject)
        predicate_id = self.vocab.get(triple.predicate)
        object_id = self.vocab.get(triple.obj)
        if subject_id is None or predicate_id is None or object_id is None:
            return False
        return (subject_id, predicate_id, object_id) in self._ensure_keys()

    # ------------------------------------------------------------------ #
    # Positional triple access
    # ------------------------------------------------------------------ #
    def _materialise(self, position: int) -> Triple:
        vocab = self.vocab
        return Triple(
            vocab[int(self._col_s[position])],
            vocab[int(self._col_p[position])],
            vocab[int(self._col_o[position])],
            is_entity_object=bool(self._col_f[position]),
        )

    def triple_at(self, position: int) -> Triple:
        self._ensure_frozen()
        if position < 0 or position >= self.num_triples:
            raise IndexError(f"triple position {position} out of range")
        return self._materialise(position)

    def triples_at(self, positions: Sequence[int] | np.ndarray) -> list[Triple]:
        self._ensure_frozen()
        return [self._materialise(int(position)) for position in positions]

    def iter_triples(self) -> Iterator[Triple]:
        self._ensure_frozen()
        for position in range(self.num_triples):
            yield self._materialise(position)

    # ------------------------------------------------------------------ #
    # Cluster access — entity-id keyed
    # ------------------------------------------------------------------ #
    def entity_ids(self) -> Sequence[str]:
        vocab = self.vocab
        if self._building:
            return tuple(vocab[sid] for sid in self._row_subjects_list)
        assert self._row_subjects_arr is not None
        return tuple(vocab[int(sid)] for sid in self._row_subjects_arr)

    def has_entity(self, entity_id: str) -> bool:
        subject_id = self.vocab.get(entity_id)
        if subject_id is None:
            return False
        return subject_id in self._ensure_subject_row()

    def entity_row(self, entity_id: str) -> int:
        subject_id = self.vocab.id_of(entity_id)
        return self._ensure_subject_row()[subject_id]

    def cluster_positions(self, entity_id: str) -> np.ndarray:
        return self.cluster_positions_by_row(self.entity_row(entity_id))

    def cluster_size(self, entity_id: str) -> int:
        row = self.entity_row(entity_id)
        if self._building:
            return int(self._row_counts[row])
        assert self._offsets is not None
        return int(self._offsets[row + 1] - self._offsets[row])

    # ------------------------------------------------------------------ #
    # Cluster access — row keyed
    # ------------------------------------------------------------------ #
    def entity_id_of_row(self, row: int) -> str:
        if self._building:
            return self.vocab[self._row_subjects_list[row]]
        assert self._row_subjects_arr is not None
        return self.vocab[int(self._row_subjects_arr[row])]

    def cluster_positions_by_row(self, row: int) -> np.ndarray:
        self._ensure_frozen()
        assert self._offsets is not None and self._positions is not None
        return self._positions[int(self._offsets[row]) : int(self._offsets[row + 1])]

    def cluster_size_array(self) -> np.ndarray:
        if self._building:
            return np.frombuffer(self._row_counts, dtype=np.int64).copy()
        assert self._offsets is not None
        return np.diff(self._offsets).astype(np.int64, copy=False)

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray] | None:
        self._ensure_frozen()
        assert self._offsets is not None and self._positions is not None
        return self._offsets, self._positions

    def row_subject_ids(self) -> np.ndarray:
        """Row -> subject vocab id array (frozen mode)."""
        self._ensure_frozen()
        assert self._row_subjects_arr is not None
        return self._row_subjects_arr

    def subject_row_map(self) -> dict[int, int]:
        """Subject vocab id -> row mapping (built lazily, cached)."""
        self._ensure_frozen()
        return self._ensure_subject_row()

    def id_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The frozen ``(subjects, predicates, objects, flags)`` id columns."""
        self._ensure_frozen()
        assert self._col_s is not None
        return self._col_s, self._col_p, self._col_o, self._col_f

    # ------------------------------------------------------------------ #
    # Snapshot support
    # ------------------------------------------------------------------ #
    def columns(self) -> dict[str, np.ndarray]:
        """The frozen columns + index as a name -> array mapping."""
        self._ensure_frozen()
        assert self._col_s is not None
        return {
            "subjects": self._col_s,
            "predicates": self._col_p,
            "objects": self._col_o,
            "entity_flags": self._col_f,
            "vocab": self.vocab.to_array(),
            "cluster_offsets": self._offsets,
            "cluster_positions": self._positions,
            "row_subjects": self._row_subjects_arr,
        }
