"""Object-based storage backend — the behaviour-compatible default.

This is the seed representation of :class:`~repro.kg.graph.KnowledgeGraph`
factored out behind the :class:`~repro.storage.backend.StorageBackend`
contract: a Python list of :class:`~repro.kg.triple.Triple` objects, a set of
``(s, p, o)`` tuples for O(1) dedup/membership, and a dict mapping each
subject id to the list of its triple positions.

It favours cheap incremental mutation (``add`` is O(1) with no rebuild step),
at the price of per-object memory overhead; for bulk-loaded, million-triple
graphs use :class:`~repro.storage.columnar.ColumnarStore` instead.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.kg.triple import Triple
from repro.storage.backend import StorageBackend

__all__ = ["InMemoryStore"]


class InMemoryStore(StorageBackend):
    """Triples as Python objects with a dict-of-lists cluster index."""

    def __init__(self) -> None:
        self._triples: list[Triple] = []
        self._triple_set: set[tuple[str, str, str]] = set()
        self._cluster_index: dict[str, list[int]] = {}
        #: entity id -> row, built lazily (only the row-keyed API needs it).
        self._row_of: dict[str, int] | None = None
        self._rows: list[str] | None = None
        #: cached (offsets, positions) CSR view, built lazily and invalidated
        #: by `add`; keeps the vectorised batch samplers on the same code
        #: path (and random stream) as the columnar backend.
        self._csr: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        key = triple.as_tuple()
        if key in self._triple_set:
            return False
        self._csr = None
        self._triple_set.add(key)
        position = len(self._triples)
        self._triples.append(triple)
        positions = self._cluster_index.get(triple.subject)
        if positions is None:
            self._cluster_index[triple.subject] = [position]
            if self._row_of is not None and self._rows is not None:
                self._row_of[triple.subject] = len(self._rows)
                self._rows.append(triple.subject)
        else:
            positions.append(position)
        return True

    # ------------------------------------------------------------------ #
    # Size / membership
    # ------------------------------------------------------------------ #
    @property
    def num_triples(self) -> int:
        return len(self._triples)

    @property
    def num_entities(self) -> int:
        return len(self._cluster_index)

    def contains(self, triple: Triple) -> bool:
        return triple.as_tuple() in self._triple_set

    # ------------------------------------------------------------------ #
    # Positional triple access
    # ------------------------------------------------------------------ #
    def triple_at(self, position: int) -> Triple:
        return self._triples[position]

    def triples_at(self, positions: Sequence[int] | np.ndarray) -> list[Triple]:
        triples = self._triples
        return [triples[int(position)] for position in positions]

    def iter_triples(self) -> Iterator[Triple]:
        return iter(self._triples)

    # ------------------------------------------------------------------ #
    # Cluster access — entity-id keyed
    # ------------------------------------------------------------------ #
    def entity_ids(self) -> Sequence[str]:
        return tuple(self._cluster_index.keys())

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._cluster_index

    def cluster_positions(self, entity_id: str) -> np.ndarray:
        return np.asarray(self._cluster_index[entity_id], dtype=np.int64)

    def cluster_size(self, entity_id: str) -> int:
        return len(self._cluster_index[entity_id])

    # ------------------------------------------------------------------ #
    # Cluster access — row keyed
    # ------------------------------------------------------------------ #
    def _ensure_rows(self) -> tuple[dict[str, int], list[str]]:
        if self._row_of is None or self._rows is None:
            self._rows = list(self._cluster_index.keys())
            self._row_of = {entity: row for row, entity in enumerate(self._rows)}
        return self._row_of, self._rows

    def entity_row(self, entity_id: str) -> int:
        row_of, _ = self._ensure_rows()
        return row_of[entity_id]

    def entity_id_of_row(self, row: int) -> str:
        _, rows = self._ensure_rows()
        return rows[row]

    def cluster_positions_by_row(self, row: int) -> np.ndarray:
        return self.cluster_positions(self.entity_id_of_row(row))

    def cluster_size_array(self) -> np.ndarray:
        return np.fromiter(
            (len(p) for p in self._cluster_index.values()),
            dtype=np.int64,
            count=len(self._cluster_index),
        )

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self._csr is None:
            sizes = self.cluster_size_array()
            offsets = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
            if self._triples:
                positions = np.concatenate(
                    [np.asarray(p, dtype=np.int64) for p in self._cluster_index.values()]
                )
            else:
                positions = np.empty(0, dtype=np.int64)
            self._csr = (offsets, positions)
        return self._csr
