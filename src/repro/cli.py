"""Command-line interface: ``python -m repro <command>``.

Five commands cover the common workflows:

* ``datasets`` — print Table-3-style characteristics of the synthetic dataset
  stand-ins (entities, triples, average cluster size, gold accuracy);
* ``evaluate`` — run one accuracy evaluation of a chosen dataset with a chosen
  sampling design and quality requirement, and print the report
  (``--backend columnar`` runs the same evaluation on columnar storage and
  yields the identical estimate under the same seed; ``--from-snapshot``
  evaluates a reopened format-v2 snapshot carrying its label array);
* ``experiment`` — regenerate one of the paper's tables/figures and print the
  rows (the same functions the benchmark suite calls);
* ``snapshot`` — build a dataset's graph and persist it with
  :class:`~repro.storage.snapshot.SnapshotStore` (``.npz`` archive, or a
  memory-mappable snapshot directory when the path has no ``.npz`` suffix);
  ``--with-labels`` stores the ground-truth label array next to the columns;
* ``monitor`` — run an evolving-KG monitoring session (Section 7.3.2): a base
  dataset receives a stream of update batches and an incremental evaluator
  tracks its accuracy.  ``--backend columnar`` runs the position-surface
  evaluators on a columnar base with zero-copy delta updates;
  ``--snapshot`` persists (and on re-runs reopens) the base graph plus its
  labels, so the expensive build/labelling happens once;
* ``worker`` — run a sampling worker node for the RPC shard transport:
  listens on ``--listen HOST:PORT`` (or dials into a running master with
  ``--join HOST:PORT``), authenticates every connection against
  ``--secret-file``, receives content-addressed CSR snapshot shards into
  ``--base-dir`` and executes pipelined shard tasks.  ``evaluate`` /
  ``monitor`` dispatch to such nodes with ``--transport rpc --nodes
  host1:p1,host2:p2`` (plus ``--secret-file`` and ``--accept-joins`` for
  authenticated/elastic clusters) — trajectories are bit-identical to
  ``--workers`` (pool) and ``--workers 0`` (serial) runs with the same
  ``--shards``;
* ``serve`` — run the long-lived multi-session evaluation daemon: graphs stay
  attached across requests, sessions multiplex over one transport fleet, the
  latest estimate of every session is an O(1) cached read, and SIGTERM drains
  gracefully (finish in-flight rounds, checkpoint every session to
  ``--state-dir``, export ``--metrics-out``);
* ``client`` — talk to a running daemon: ``run`` (the served twin of
  ``monitor`` — bit-identical trajectories), ``estimate`` (non-blocking
  cached read), ``poll`` (threshold wait), ``sessions`` and ``detach``;
* ``scenario`` — run declarative stress-scenario packs through the real
  engine with statistical gates: ``run`` executes every scenario's seeded
  replications on a chosen backend and checks empirical CI coverage against
  a Wilson tolerance band, ``compare`` diffs a ``SCENARIOS_*.json`` result
  file against a committed baseline, ``list`` shows the registry (see
  ``docs/scenarios.md``);
* ``planner`` — inspect (``show``) or regenerate (``calibrate``) the adaptive
  transport planner's calibration profile.  ``evaluate``/``monitor`` default
  to ``--transport auto``: the shard plan (part of a run's random-stream
  identity) is a deterministic function of the graph's stats and the MoE
  target, identical on every host; the planner then picks serial, a warm
  pool, the shared-memory transport or RPC to *execute* that fixed plan,
  never slower than serial beyond noise (see ``docs/planner.md``).

Examples
--------
::

    python -m repro datasets
    python -m repro evaluate --dataset nell --design twcs --moe 0.05 --seed 7
    python -m repro evaluate --dataset nell --backend columnar
    python -m repro evaluate --dataset nell --backend sqlite
    python -m repro experiment table5 --trials 10
    python -m repro snapshot --dataset movie --out movie.npz --with-labels
    python -m repro snapshot --dataset movie --out movie.sqlite --backend sqlite --with-labels
    python -m repro evaluate --from-snapshot movie.npz
    python -m repro monitor --dataset movie --backend columnar --batches 5
    python -m repro worker --listen 127.0.0.1:7301 --base-dir /tmp/shards
    python -m repro evaluate --dataset nell --transport rpc \\
        --nodes 127.0.0.1:7301,127.0.0.1:7302 --shards 4
    python -m repro evaluate --dataset nell --workers 2 \\
        --log-json run.jsonl --metrics-out master.json
    python -m repro metrics summarize master.json worker1.json
    python -m repro serve --listen 127.0.0.1:7400 --state-dir /tmp/serve-state
    python -m repro client run --connect 127.0.0.1:7400 --dataset nell \\
        --evaluator ss --batches 2
    python -m repro client estimate --connect 127.0.0.1:7400 --session session-1
    python -m repro scenario run --pack builtin-smoke --backend sqlite \\
        --out SCENARIOS_smoke.json
    python -m repro scenario compare baselines/SCENARIOS_smoke.json SCENARIOS_smoke.json

``evaluate``, ``monitor``, ``worker`` and ``serve`` all accept ``--log-json PATH`` /
``--log-level`` (structured JSON-lines logs with RPC-propagated trace spans)
and ``--metrics-out PATH`` (a mergeable metrics snapshot written on exit);
``metrics summarize`` renders any set of snapshots as per-shard and per-node
tables.  Observability never touches a numpy RNG stream: trajectories are
bit-identical with the flags on or off.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.core.config import EvaluationConfig
from repro.core.framework import StaticEvaluator
from repro.cost.annotator import SimulatedAnnotator
from repro.experiments import (
    figure5_confidence_sweep,
    figure6_optimal_m,
    figure7_scalability,
    figure8_single_update,
    format_table,
    table4_movie_cost,
    table5_static_comparison,
    table6_kgeval_comparison,
    table7_stratification,
)
from repro.generators.datasets import (
    LabelledKG,
    make_movie_like,
    make_movie_syn,
    make_nell_like,
    make_yago_like,
)
from repro.kg.statistics import cluster_size_summary
from repro.sampling.rcs import RandomClusterDesign
from repro.sampling.srs import SimpleRandomDesign
from repro.sampling.stratification import stratify_by_size
from repro.sampling.stratified import StratifiedTWCSDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.sampling.wcs import WeightedClusterDesign

__all__ = ["main", "build_parser"]

_DATASETS = ("nell", "yago", "movie", "movie-syn")
_DESIGNS = ("srs", "rcs", "wcs", "twcs", "twcs-strat")


def _load_dataset(name: str, seed: int, movie_scale: float) -> LabelledKG:
    if name == "nell":
        return make_nell_like(seed=seed)
    if name == "yago":
        return make_yago_like(seed=seed)
    if name == "movie":
        return make_movie_like(seed=seed, scale=movie_scale)
    if name == "movie-syn":
        return make_movie_syn(seed=seed, scale=movie_scale)
    raise ValueError(f"unknown dataset {name!r}")


def _build_design(name: str, data: LabelledKG, m: int, seed: int, allocation: str = "proportional"):
    if name == "srs":
        return SimpleRandomDesign(data.graph, seed=seed)
    if name == "rcs":
        return RandomClusterDesign(data.graph, seed=seed)
    if name == "wcs":
        return WeightedClusterDesign(data.graph, seed=seed)
    if name == "twcs":
        return TwoStageWeightedClusterDesign(data.graph, second_stage_size=m, seed=seed)
    if name == "twcs-strat":
        strata = stratify_by_size(data.graph, num_strata=4)
        return StratifiedTWCSDesign(
            data.graph, strata, second_stage_size=m, seed=seed, allocation=allocation
        )
    raise ValueError(f"unknown design {name!r}")


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #
def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in _DATASETS:
        data = _load_dataset(name, args.seed, args.movie_scale)
        summary = cluster_size_summary(data.graph)
        rows.append(
            {
                "dataset": data.name,
                "entities": summary.num_entities,
                "triples": summary.num_triples,
                "avg_cluster_size": summary.mean_size,
                "max_cluster_size": summary.max_size,
                "gold_accuracy": data.true_accuracy,
            }
        )
    print(format_table(rows, title="Dataset characteristics (synthetic stand-ins, cf. Table 3)"))
    return 0


def _load_snapshot_dataset(path: str) -> LabelledKG:
    """Reopen a persisted graph + label array as a labelled KG.

    Accepts either a format-v2 snapshot (``.npz`` / snapshot directory) or a
    SQLite database written by ``repro snapshot --backend sqlite`` — the
    database is detected by its file header and reopened in place, columns
    staying on disk.
    """
    from repro.labels.oracle import LabelOracle
    from repro.storage.snapshot import SnapshotStore
    from repro.storage.sqlite import is_sqlite_file

    if is_sqlite_file(path):
        return _load_sqlite_dataset(path)
    store = SnapshotStore(path)
    graph = store.load_graph()
    labels = store.load_labels()
    if labels is None:
        raise SystemExit(
            f"snapshot {path} carries no label array; re-create it with "
            "`repro snapshot --with-labels`"
        )
    oracle = LabelOracle(dict(zip(graph.triples, (bool(v) for v in labels))))
    return LabelledKG(graph, oracle)


def _load_sqlite_dataset(path: str) -> LabelledKG:
    """Reopen a SQLite graph database (with stored labels) as a labelled KG."""
    from repro.kg.graph import KnowledgeGraph
    from repro.labels.oracle import LabelOracle
    from repro.storage.sqlite import SqliteStore

    store = SqliteStore(path)
    name = store.graph_name() or Path(path).stem
    graph = KnowledgeGraph(name=name, backend=store)
    labels = store.load_labels()
    if labels is None:
        raise SystemExit(
            f"sqlite database {path} carries no label array; re-create it with "
            "`repro snapshot --backend sqlite --with-labels`"
        )
    oracle = LabelOracle(dict(zip(graph.triples, (bool(v) for v in labels))))
    return LabelledKG(graph, oracle)


def _parse_nodes(args: argparse.Namespace) -> list[str]:
    nodes = [node.strip() for node in (args.nodes or "").split(",") if node.strip()]
    if not nodes and not getattr(args, "accept_joins", None):
        raise SystemExit(
            "--transport rpc requires --nodes host:port[,host:port...] "
            "(or --accept-joins to wait for joining workers)"
        )
    return nodes


def _load_cli_secret(args: argparse.Namespace):
    if not getattr(args, "secret_file", None):
        return None
    from repro.sampling.rpc import load_secret_file

    try:
        return load_secret_file(args.secret_file)
    except OSError as exc:
        raise SystemExit(f"cannot read --secret-file {args.secret_file}: {exc}") from exc
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _build_transport(args: argparse.Namespace):
    """Resolve an *explicit* ``--transport`` choice into a ShardTransport.

    Returns ``None`` for ``auto`` (the adaptive planner decides separately,
    see :func:`_plan_transport`) and for the legacy bare ``--workers``
    shorthand (the executor then builds its own pool).
    """
    if args.transport in (None, "auto"):
        return None
    if args.transport == "rpc":
        from repro.sampling.rpc import SocketRPCTransport

        transport = SocketRPCTransport(
            _parse_nodes(args),
            secret=_load_cli_secret(args),
            window=args.rpc_window,
            join_address=args.accept_joins,
        )
        if transport.join_address is not None:
            print(f"accepting worker joins on {transport.join_address}", flush=True)
        return transport
    from repro.sampling.parallel import (
        ParallelSamplingExecutor,
        ProcessPoolTransport,
        SerialTransport,
    )

    if args.transport == "pool":
        workers = args.workers or ParallelSamplingExecutor.default_workers()
        return ProcessPoolTransport(workers)
    if args.transport == "shm":
        from repro.sampling.shm import SharedMemoryTransport

        workers = args.workers or ParallelSamplingExecutor.default_workers()
        return SharedMemoryTransport(workers)
    return SerialTransport()


def _plan_transport(args: argparse.Namespace, graph, draws_hint: int | None):
    """``--transport auto``: let the adaptive planner pick the configuration.

    Returns ``(transport, decision, profile)``; the profile is kept around
    so the run's measured wall-clock can be folded back into it afterwards
    (see ``docs/planner.md``).
    """
    from repro.sampling.planner import AdaptivePlanner, load_profile

    profile = load_profile(getattr(args, "profile", None))
    planner = AdaptivePlanner(profile)
    nodes = [node.strip() for node in (getattr(args, "nodes", "") or "").split(",") if node.strip()]
    decision = planner.plan(
        graph.backend.stats(),
        draws=draws_hint,
        shards=args.shards,
        nodes=len(nodes),
        rpc_window=args.rpc_window if nodes else None,
    )
    transport = AdaptivePlanner.build_transport(
        decision,
        nodes=nodes,
        secret=_load_cli_secret(args),
        join_address=getattr(args, "accept_joins", None),
    )
    if getattr(transport, "join_address", None) is not None:
        print(f"accepting worker joins on {transport.join_address}", flush=True)
    return transport, decision, profile


def _auto_planned_shards(args: argparse.Namespace, graph) -> int:
    """The deterministic shard count ``--transport auto`` would run with.

    A pure function of the graph's measured stats and the ``--moe`` /
    ``--confidence`` target — no CPU count, no warm-pool state, no
    calibration profile — so the *stream identity* of a default seeded run
    (classic loop vs sharded engine, and at how many shards) is the same
    on every host and every repetition.  The planner's adaptive inputs
    only pick which transport executes this fixed plan.
    """
    from repro.sampling.planner import AdaptivePlanner, plan_shards

    draws_hint = AdaptivePlanner.draws_for_target(args.moe, args.confidence)
    return plan_shards(graph.backend.stats(), draws_hint)


def _resolve_parallel(args: argparse.Namespace, graph=None, draws_hint: int | None = None):
    """Resolve the sharded-engine options into ``(transport, shards, decision)``.

    One code path for ``evaluate`` and ``monitor``.  Under ``--transport
    auto`` (the default) with no ``--workers`` pin, the shard count comes
    from ``--shards`` or the deterministic ``plan_shards`` policy (graph
    stats + draw volume only, identical on every host), and the adaptive
    planner chooses which transport executes that
    plan from CPU availability and the calibration profile; ``decision``
    then carries the reasoning.  In explicit modes the shard count obeys
    ``--shards`` first, then the transport's natural width (pool worker
    count, RPC node count), then ``max(workers, 1)``.
    """
    if args.transport == "auto" and args.workers is None and graph is not None:
        transport, decision, profile = _plan_transport(args, graph, draws_hint)
        shards = args.shards if args.shards is not None else decision.shards
        return transport, shards, (decision, profile)
    transport = _build_transport(args)
    if args.shards is not None:
        shards = args.shards
    elif transport is not None and transport.default_shards:
        shards = transport.default_shards
    else:
        shards = max(args.workers or 1, 1)
    return transport, shards, None


def _transport_label(args: argparse.Namespace, decision=None) -> str:
    if decision is not None:
        return f"auto:{decision.transport}"
    if args.transport == "rpc":
        return f"rpc[{len(_parse_nodes(args))} nodes]"
    if args.transport not in (None, "auto"):
        return args.transport
    return "pool" if args.workers else "serial"


def _cmd_evaluate(args: argparse.Namespace) -> int:
    if args.from_snapshot:
        data = _load_snapshot_dataset(args.from_snapshot)
    else:
        data = _load_dataset(args.dataset, args.seed, args.movie_scale)
    if args.backend == "columnar":
        data = LabelledKG(data.graph.to_columnar(), data.oracle)
    elif args.backend == "sqlite":
        data = LabelledKG(data.graph.to_sqlite(), data.oracle)
    if (
        args.workers is not None
        or args.shards is not None
        or args.transport not in (None, "auto")
    ):
        # An explicit pin always engages the sharded engine.
        return _cmd_evaluate_parallel(args, data)
    if args.transport == "auto" and _auto_planned_shards(args, data.graph) > 1:
        # The deterministic shard plan calls for parallelism; which
        # transport executes it is decided adaptively inside.
        return _cmd_evaluate_parallel(args, data)
    # One-shard plan: the classic single-stream evaluator, bit-identical to
    # every pre-planner default run.
    design = _build_design(
        args.design, data, args.second_stage_size, args.seed, allocation=args.allocation
    )
    annotator = SimulatedAnnotator(data.oracle, seed=args.seed)
    config = EvaluationConfig(moe_target=args.moe, confidence_level=args.confidence)
    report = StaticEvaluator(design, annotator, config).run()
    interval = report.confidence_interval
    print(f"dataset            : {data.name}")
    print(f"design             : {args.design} (m={args.second_stage_size})")
    print(f"true accuracy      : {data.true_accuracy:.1%} (hidden from the estimator)")
    print(f"estimated accuracy : {report.accuracy:.1%}")
    print(f"{args.confidence:.0%} interval     : [{interval.lower:.1%}, {interval.upper:.1%}]")
    print(f"margin of error    : {report.margin_of_error:.3f} (target {args.moe})")
    print(f"sample units       : {report.num_units}")
    print(f"triples annotated  : {report.num_triples_annotated}")
    print(f"entities identified: {report.num_entities_identified}")
    print(f"annotation cost    : {report.annotation_cost_hours:.2f} hours")
    return 0 if report.satisfied else 1


def _cmd_evaluate_parallel(args: argparse.Namespace, data: LabelledKG) -> int:
    """``evaluate`` on the sharded position-surface draw engine.

    Runs the iterative evaluation on integer positions and boolean label
    arrays.  ``--transport auto`` (the default) shards deterministically
    (graph stats + MoE target only) and lets the adaptive planner pick the
    transport that executes the plan; ``--workers N`` / an explicit
    ``--transport`` force a configuration.  For a fixed shard plan the
    estimates are bit-identical for every transport and worker count.
    """
    import time

    import numpy as np

    from repro.sampling.parallel import ParallelSamplingExecutor

    graph = data.graph
    labels = data.oracle.as_position_array(graph)
    config = EvaluationConfig(moe_target=args.moe, confidence_level=args.confidence)
    draws_hint = None
    if args.transport == "auto" and args.workers is None:
        from repro.sampling.planner import AdaptivePlanner

        draws_hint = AdaptivePlanner.draws_for_target(args.moe, args.confidence)
    transport, shards, planned = _resolve_parallel(args, graph, draws_hint)
    decision, profile = planned if planned is not None else (None, None)
    strata_rows = None
    if args.design == "twcs-strat":
        strata = stratify_by_size(graph, num_strata=4)
        strata_rows = [
            np.fromiter(
                (graph.entity_row(entity_id) for entity_id in stratum.entity_ids),
                dtype=np.int64,
                count=stratum.num_entities,
            )
            for stratum in strata
        ]
    with ParallelSamplingExecutor(
        graph,
        workers=None if transport is not None else (args.workers or None),
        num_shards=shards,
        transport=transport,
        planner_decision=decision,
    ) as executor:
        run = executor.run(
            args.design if args.design != "twcs-strat" else "twcs",
            labels,
            seed=args.seed,
            second_stage_size=args.second_stage_size,
            strata=strata_rows,
            allocation=args.allocation if args.design == "twcs-strat" else "proportional",
        )
        started = time.perf_counter()
        estimate, iterations = run.drive(config)
        elapsed = time.perf_counter() - started
        cost = run.cost_summary()
    if decision is not None and profile is not None:
        # Fold the measured wall-clock back into the calibration profile so
        # the next planning decision starts from this run's reality.
        from repro.sampling.planner import save_profile

        profile.observe(
            decision.transport,
            draws=estimate.num_units,
            rounds=run.rounds,
            seconds=elapsed,
            workers=decision.workers,
            # A run on an adopted warm pool never paid the startup cost;
            # subtracting it anyway would bias per_draw_us low over time.
            warm=decision.warm,
        )
        save_profile(profile, getattr(args, "profile", None))
    satisfied = estimate.num_units >= config.min_units and estimate.satisfies(
        config.moe_target, config.confidence_level
    )
    interval = estimate.confidence_interval(args.confidence)
    print(f"dataset            : {data.name}")
    print(
        f"design             : {args.design} (m={args.second_stage_size}, "
        f"shards={run.plan.num_shards}, transport={_transport_label(args, decision)})"
    )
    if decision is not None:
        print(f"planner            : {decision.transport} — {decision.reason}")
    print(f"true accuracy      : {data.true_accuracy:.1%} (hidden from the estimator)")
    print(f"estimated accuracy : {estimate.value:.1%}")
    print(f"{args.confidence:.0%} interval     : [{interval.lower:.1%}, {interval.upper:.1%}]")
    moe = estimate.margin_of_error(args.confidence)
    print(f"margin of error    : {moe:.3f} (target {args.moe})")
    print(f"sample units       : {estimate.num_units} ({iterations} rounds)")
    print(f"triples annotated  : {cost.triples_annotated}")
    print(f"entities identified: {cost.entities_identified}")
    print(f"annotation cost    : {cost.cost_hours:.2f} hours")
    return 0 if satisfied else 1


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.storage.snapshot import SnapshotStore

    data = _load_dataset(args.dataset, args.seed, args.movie_scale)
    graph = data.graph.to_columnar()
    labels = data.oracle.as_position_array(graph) if args.with_labels else None
    if args.backend == "sqlite":
        sqlite_graph = graph.to_sqlite(path=args.out)
        if labels is not None:
            sqlite_graph.backend.save_labels(labels)
        path, layout = Path(args.out), "sqlite database (WAL)"
        label_note = "stored (meta table)"
    else:
        path = SnapshotStore(args.out).save(
            graph, name=graph.name, compress=args.compress, labels=labels
        )
        layout = "npz archive" if SnapshotStore(path).is_archive else "mmap-able directory"
        label_note = "stored (format v2)"
    print(f"dataset  : {graph.name}")
    print(f"entities : {graph.num_entities}")
    print(f"triples  : {graph.num_triples}")
    print(f"labels   : {label_note if labels is not None else 'not stored'}")
    print(f"snapshot : {path} ({layout})")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.core.config import EvaluationConfig as _Config
    from repro.evolving.baseline import BaselineEvolvingEvaluator
    from repro.evolving.monitor import EvolvingAccuracyMonitor
    from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
    from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
    from repro.generators.workload import UpdateWorkloadGenerator
    from repro.storage.snapshot import SnapshotStore

    surface = (
        "position"
        if args.backend in ("columnar", "sqlite") and args.evaluator != "baseline"
        else "object"
    )
    position_labels = None
    if args.snapshot and SnapshotStore(args.snapshot).exists():
        if surface == "position":
            # The position surface reads ground truth from the label array
            # only, so skip the O(M) Triple/oracle-dict materialisation and
            # reopen the columns directly.
            from repro.labels.oracle import LabelOracle

            store = SnapshotStore(args.snapshot)
            position_labels = store.load_labels()
            if position_labels is None:
                raise SystemExit(
                    f"snapshot {args.snapshot} carries no label array; re-create "
                    "it with `repro monitor --snapshot` or `repro snapshot --with-labels`"
                )
            data = LabelledKG(store.load_graph(), LabelOracle({}, strict=False))
        else:
            data = _load_snapshot_dataset(args.snapshot)
        print(f"base KG  : {data.graph!r} (reopened from {args.snapshot})")
    else:
        data = _load_dataset(args.dataset, args.seed, args.movie_scale)
        if args.backend == "columnar":
            data = LabelledKG(data.graph.to_columnar(), data.oracle)
        elif args.backend == "sqlite":
            # The delta machinery needs a frozen columnar base; the sqlite
            # round-trip keeps the persistent copy out-of-core while the
            # derived columns (bit-identical to a direct columnar build)
            # carry the update stream.
            data = LabelledKG(data.graph.to_sqlite().to_columnar(), data.oracle)
        if args.snapshot:
            labels = data.oracle.as_position_array(data.graph)
            data.graph.to_columnar().save_snapshot(args.snapshot, labels=labels)
            if surface == "position":
                position_labels = labels
            print(f"base KG  : {data.graph!r} (snapshot saved to {args.snapshot})")
        else:
            print(f"base KG  : {data.graph!r}")

    evaluator_classes = {
        "rs": ReservoirIncrementalEvaluator,
        "ss": StratifiedIncrementalEvaluator,
        "baseline": BaselineEvolvingEvaluator,
    }
    explicit_engine = args.workers is not None or args.transport not in (None, "auto")
    parallel_requested = explicit_engine or args.shards is not None
    if parallel_requested and surface != "position":
        raise SystemExit(
            "--workers/--shards/--transport requires the position surface: "
            "use --backend columnar (or sqlite) with --evaluator rs or ss"
        )
    config = _Config(moe_target=args.moe, confidence_level=args.confidence)
    extra = {}
    decision = None
    if explicit_engine:
        transport, shards, _planned = _resolve_parallel(args)
        extra = {"num_shards": shards}
        if transport is not None:
            extra["transport"] = transport
        else:
            extra["workers"] = args.workers
    elif args.transport == "auto" and surface == "position":
        # Adaptive default.  Whether the sharded engine engages — part of
        # the run's random-stream identity — is a pure function of the
        # graph's stats and the MoE target (plus an explicit --shards pin):
        # a one-shard plan keeps the classic single-stream position surface
        # (zero engine overhead, historical trajectories) on every host.
        # Only the transport *executing* a multi-shard plan is adaptive.
        engage = args.shards is not None or _auto_planned_shards(args, data.graph) > 1
        if engage:
            from repro.sampling.planner import AdaptivePlanner

            draws_hint = AdaptivePlanner.draws_for_target(args.moe, args.confidence)
            transport, shards, planned = _resolve_parallel(args, data.graph, draws_hint)
            if planned is not None:
                decision = planned[0]
            extra = {"num_shards": shards, "transport": transport}
    engine_engaged = parallel_requested or "transport" in extra
    evaluator = evaluator_classes[args.evaluator](
        data,
        config=config,
        seed=args.seed,
        surface=surface,
        position_labels=position_labels if surface == "position" else None,
        **extra,
    )
    monitor = EvolvingAccuracyMonitor(evaluator)
    monitor.evaluate_base()
    workload = UpdateWorkloadGenerator(data, seed=args.seed)
    batch_size = max(1, int(round(args.batch_fraction * data.graph.num_triples)))
    for batch, batch_oracle in workload.generate_sequence(
        args.batches, batch_size, args.update_accuracy
    ):
        monitor.apply_update(batch, batch_oracle)
    if engine_engaged:
        evaluator.close()

    if decision is not None:
        print(f"planner  : {decision.transport} — {decision.reason}")
    print(f"evaluator: {args.evaluator} ({surface} surface, {args.backend} backend)")
    print("batch  estimate  truth   MoE    batch-cost(h)  total-cost(h)")
    for record in monitor.records:
        print(
            f"{record.batch_index:>5}  {record.estimated_accuracy:7.1%}  "
            f"{record.true_accuracy:6.1%}  {record.margin_of_error:5.3f}  "
            f"{record.incremental_cost_hours:12.2f}  {record.cumulative_cost_hours:12.2f}"
        )
    final = monitor.records[-1]
    return 0 if final.estimation_error <= max(2 * args.moe, 0.15) else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    """``repro worker``: serve shard tasks for the RPC transport."""
    import signal

    from repro.sampling.rpc import RPCError, join_master, parse_node_address, serve_worker

    if bool(args.listen) == bool(args.join):
        raise SystemExit("pass exactly one of --listen HOST:PORT or --join HOST:PORT")
    secret = _load_cli_secret(args)
    args.obs_node_id = f"worker-{os.getpid()}"

    # An orderly SIGTERM (chaos-suite teardown, service managers) must still
    # run main()'s finally block so --metrics-out snapshots get written.
    # SIGINT gets the identical handler: a Ctrl-C'd worker converts to
    # SystemExit(0) at a deterministic point instead of unwinding a
    # KeyboardInterrupt from an arbitrary bytecode boundary (mid-export,
    # mid-store), so the metrics snapshot survives interactive shutdowns too.
    def _on_term(signum, frame):  # pragma: no cover - signal path
        raise SystemExit(0)

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _on_term)
        except ValueError:  # pragma: no cover - not the main thread (tests)
            pass

    if args.join:
        # Elastic membership: dial a running master and serve it over the
        # connection we opened (works from behind NAT; no listening port).
        print(f"worker joining master at {args.join}", flush=True)
        print(f"snapshot cache     {args.base_dir}", flush=True)

        def on_joined(host: str, port: int) -> None:
            print(f"worker joined master at {host}:{port}", flush=True)

        try:
            join_master(
                args.join,
                args.base_dir,
                secret=secret,
                task_delay=args.task_delay,
                on_joined=on_joined,
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        except RPCError as exc:
            print(f"join failed: {exc}", flush=True)
            return 1
        return 0

    host, port = parse_node_address(args.listen)

    def on_ready(bound_host: str, bound_port: int) -> None:
        # Single parseable line: launchers using port 0 read the real port.
        args.obs_node_id = f"{bound_host}:{bound_port}"
        print(f"worker listening on {bound_host}:{bound_port}", flush=True)
        print(f"snapshot cache     {args.base_dir}", flush=True)

    try:
        serve_worker(
            host,
            port,
            args.base_dir,
            secret=secret,
            on_ready=on_ready,
            max_connections=args.max_connections,
            task_delay=args.task_delay,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the long-lived multi-session evaluation daemon."""
    import signal
    import threading

    from repro.sampling.rpc import load_secret_file, parse_node_address
    from repro.serve.server import EvalServer

    secret = _load_cli_secret(args)
    fleet_secret = None
    if args.fleet_secret_file:
        try:
            fleet_secret = load_secret_file(args.fleet_secret_file)
        except OSError as exc:
            raise SystemExit(
                f"cannot read --fleet-secret-file {args.fleet_secret_file}: {exc}"
            ) from exc
    host, port = parse_node_address(args.listen)
    server = EvalServer(
        host,
        port,
        secret=secret,
        fleet_secret=fleet_secret,
        state_dir=args.state_dir,
        queue_limit=args.queue_limit,
        root_seed=args.root_seed,
    )

    # SIGTERM/SIGINT request a *drain*, not an exit: set the stop event and
    # return to the foreground wait, which finishes every admitted round,
    # checkpoints all sessions, and falls through to main()'s finally block
    # so --metrics-out captures the daemon's full lifetime.
    stop = threading.Event()

    def _on_term(signum, frame):  # pragma: no cover - signal path
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _on_term)
        except ValueError:  # pragma: no cover - not the main thread (tests)
            pass

    bound_host, bound_port = server.start()
    args.obs_node_id = f"{bound_host}:{bound_port}"
    # Single parseable line: launchers using port 0 read the real port.
    print(f"serve listening on {bound_host}:{bound_port}", flush=True)
    if args.state_dir:
        print(f"state dir          {args.state_dir}", flush=True)
    try:
        server.wait(stop)
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    print("serve draining", flush=True)
    server.shutdown(drain=True)
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    """``repro client``: talk to a running serve daemon."""
    from repro.serve.client import ServeClient, ServeRequestError

    secret = _load_cli_secret(args)

    def record_row(entry: dict) -> str:
        record = entry["record"]
        return (
            f"{record.batch_index:>5}  {record.estimated_accuracy:7.1%}  "
            f"{record.true_accuracy:6.1%}  {record.margin_of_error:5.3f}  "
            f"{record.incremental_cost_hours:12.2f}  {record.cumulative_cost_hours:12.2f}"
        )

    try:
        with ServeClient(args.connect, secret=secret) as client:
            if args.client_command == "run":
                return _client_run(args, client, record_row)
            if args.client_command == "estimate":
                reply = client.estimate(args.session)
                print(f"session  : {reply['session']}")
                print(f"records  : {reply['num_records']}  pending: {reply['pending']}")
                if reply["failed"]:
                    print(f"failed   : {reply['failed']}")
                    return 1
                if reply["latest"] is None:
                    print("estimate : (no completed rounds yet)")
                    return 0
                print("batch  estimate  truth   MoE    batch-cost(h)  total-cost(h)")
                print(record_row(reply["latest"]))
                return 0
            if args.client_command == "poll":
                reply = client.poll(
                    args.session,
                    min_records=args.min_records,
                    moe_below=args.moe_below,
                    timeout=args.timeout,
                )
                state = "satisfied" if reply["satisfied"] else "timeout"
                print(f"session  : {reply['session']}  ({state})")
                if reply["failed"]:
                    print(f"failed   : {reply['failed']}")
                if reply["latest"] is not None:
                    print("batch  estimate  truth   MoE    batch-cost(h)  total-cost(h)")
                    print(record_row(reply["latest"]))
                return 0 if reply["satisfied"] else 1
            if args.client_command == "sessions":
                entries = client.sessions()["entries"]
                if not entries:
                    print("(no attached sessions)")
                    return 0
                print("session                evaluator  dataset     records  pending")
                for entry in entries:
                    failed = "  FAILED" if entry["failed"] else ""
                    print(
                        f"{entry['session']:<22} {entry['evaluator']:<10} "
                        f"{str(entry['dataset']):<11} {entry['num_records']:>7}  "
                        f"{entry['pending']:>7}{failed}"
                    )
                return 0
            if args.client_command == "detach":
                reply = client.detach(args.session)
                print(f"detached : {reply['session']}")
                return 0
    except ServeRequestError as exc:
        print(f"serve error [{exc.code}]: {exc}", flush=True)
        return 1
    raise SystemExit(f"unknown client command {args.client_command!r}")


def _client_run(args: argparse.Namespace, client, record_row) -> int:
    """Drive one monitoring session through the daemon (mirrors ``monitor``)."""
    from repro.generators.workload import UpdateWorkloadGenerator

    # The workload stream is generated client-side from the same dataset the
    # daemon attaches, exactly like an external update producer would.
    data = _load_dataset(args.dataset, args.seed, args.movie_scale)
    data = LabelledKG(data.graph.to_columnar(), data.oracle)
    spec: dict = {
        "dataset": args.dataset,
        "dataset_seed": args.seed,
        "movie_scale": args.movie_scale,
        "evaluator": args.evaluator,
        "seed": args.seed,
        "moe": args.moe,
        "confidence": args.confidence,
    }
    engine = {
        key: value
        for key, value in (
            ("transport", args.transport),
            ("workers", args.workers),
            ("shards", args.shards),
            ("nodes", args.nodes.split(",") if args.nodes else None),
            ("rpc_window", args.rpc_window),
        )
        if value is not None
    }
    if engine:
        spec["engine"] = engine
    reply = client.attach(spec, session=args.session)
    session = reply["session"]
    resumed = " (resumed)" if reply.get("resumed") else ""
    print(f"session  : {session}{resumed} seed={reply['seed']}")
    workload = UpdateWorkloadGenerator(data, seed=args.seed)
    batch_size = max(1, int(round(args.batch_fraction * data.graph.num_triples)))
    for batch, batch_oracle in workload.generate_sequence(
        args.batches, batch_size, args.update_accuracy
    ):
        client.submit_batch(session, batch, batch_oracle)
    entries = client.trajectory(session)["entries"]
    print(f"evaluator: {args.evaluator} (served by {args.connect})")
    print("batch  estimate  truth   MoE    batch-cost(h)  total-cost(h)")
    for entry in entries:
        print(record_row(entry))
    if args.detach:
        client.detach(session)
    final = entries[-1]["record"]
    return 0 if final.estimation_error <= max(2 * args.moe, 0.15) else 1


_EXPERIMENTS = {
    "table4": lambda args: format_table(
        table4_movie_cost(args.trials, args.seed, args.movie_scale),
        title="Table 4: MOVIE evaluation cost",
    ),
    "table5": lambda args: format_table(
        table5_static_comparison(args.trials, args.seed, args.movie_scale),
        title="Table 5: static-KG evaluation",
    ),
    "table6": lambda args: format_table(
        table6_kgeval_comparison(max(1, args.trials // 2), args.seed),
        title="Table 6: TWCS vs KGEval",
    ),
    "table7": lambda args: format_table(
        table7_stratification(args.trials, args.seed, args.movie_scale),
        title="Table 7: stratified TWCS",
    ),
    "fig5": lambda args: format_table(
        figure5_confidence_sweep(args.trials, args.seed, args.movie_scale),
        title="Figure 5: confidence-level sweep",
    ),
    "fig6": lambda args: format_table(
        [
            row
            for row in figure6_optimal_m(max(1, args.trials // 2), args.seed)
            if "annotation_hours" in row
        ],
        title="Figure 6: optimal second-stage size",
    ),
    "fig7": lambda args: "\n".join(
        format_table(rows, title=f"Figure 7 ({label})")
        for label, rows in figure7_scalability(max(1, args.trials // 2), args.seed).items()
    ),
    "fig8": lambda args: "\n".join(
        format_table(rows, title=f"Figure 8 ({label})")
        for label, rows in figure8_single_update(
            max(1, args.trials // 2), args.seed, args.movie_scale
        ).items()
    ),
}


def _cmd_scenario(args: argparse.Namespace) -> int:
    """``repro scenario run|compare|list``: the declarative stress-pack registry."""
    from repro.scenarios import (
        BACKENDS,
        BUILTIN_PACKS,
        compare_documents,
        format_results_table,
        load_pack,
        load_results,
        results_to_document,
        run_pack,
        write_results,
    )

    if args.scenario_command == "list":
        if args.pack is None:
            print("built-in packs:")
            for name in BUILTIN_PACKS:
                pack = load_pack(name)
                print(f"  {name:<16} {len(pack.scenarios)} scenarios — {pack.description}")
            print("(pass --pack NAME_OR_FILE to list the scenarios inside a pack)")
            return 0
        pack = load_pack(args.pack)
        print(f"pack {pack.name}: {pack.description}")
        for spec in pack.scenarios:
            print(f"  {spec.name:<24} {spec.kind:<9} x{spec.replications:<4} {spec.description}")
        return 0

    if args.scenario_command == "compare":
        baseline = load_results(args.baseline)
        current = load_results(args.current)
        differences = compare_documents(
            baseline, current, float_tolerance=args.float_tolerance
        )
        if not differences:
            print(f"OK: {args.current} reproduces {args.baseline}")
            return 0
        print(f"{len(differences)} difference(s) against baseline:")
        for line in differences:
            print(f"  {line}")
        return 1

    # run
    pack = load_pack(args.pack)
    if args.backend not in BACKENDS:
        print(f"unknown backend {args.backend!r}; choose from {BACKENDS}")
        return 2
    only = tuple(args.only) if args.only else None
    results = run_pack(
        pack,
        backend=args.backend,
        replications=args.replications,
        root_seed=args.root_seed,
        only=only,
        progress=lambda result: print(
            f"  {result.name}: {'PASS' if result.passed else 'FAIL'}", file=sys.stderr
        ),
    )
    print(format_results_table(results))
    if args.out:
        document = results_to_document(pack.name, args.backend, args.root_seed, results)
        written = write_results(args.out, document)
        print(f"results written to {written}")
    return 0 if all(result.passed for result in results) else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = _EXPERIMENTS.get(args.name)
    if runner is None:
        print(f"unknown experiment {args.name!r}; choose from {sorted(_EXPERIMENTS)}")
        return 2
    print(runner(args))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """``repro metrics summarize FILE...``: merge snapshots and print tables."""
    from repro.obs.summarize import summarize_files

    print(summarize_files(args.files))
    return 0


def _cmd_planner(args: argparse.Namespace) -> int:
    """``repro planner show|calibrate``: inspect/regenerate the calibration profile."""
    import json

    from repro.sampling.planner import default_profile_path, load_profile, save_profile

    path = args.profile or default_profile_path()
    profile = load_profile(args.profile)
    if args.planner_command == "show":
        print(f"profile  : {path}")
        print(json.dumps(profile.to_dict(), indent=2))
        return 0
    # calibrate — fold one or more BENCH_parallel.json payloads in.
    updated: list[str] = []
    for bench_file in args.bench:
        try:
            with open(bench_file, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read benchmark results {bench_file}: {exc}") from exc
        updated.extend(profile.calibrate_from_bench(payload))
    written = save_profile(profile, args.profile)
    if written is None:
        raise SystemExit(f"cannot write calibration profile to {path}")
    print(f"profile  : {written}")
    print(f"updated  : {', '.join(updated) if updated else 'nothing (no usable legs)'}")
    return 0


# --------------------------------------------------------------------------- #
# Observability wiring
# --------------------------------------------------------------------------- #
_OBS_COMMANDS = ("evaluate", "monitor", "worker", "serve")


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    """Observability options shared by ``evaluate``, ``monitor`` and ``worker``.

    Neither flag ever touches a numpy RNG stream, so instrumented runs stay
    bit-identical to uninstrumented ones.
    """
    parser.add_argument(
        "--log-json",
        default=None,
        dest="log_json",
        help="append structured JSON-lines logs (and trace spans) to this "
        "file; every record carries the run id, so master and worker logs "
        "stitch into one cross-node trace",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        dest="log_level",
        help="minimum level written to --log-json (default info; debug adds "
        "per-round allocation and per-task span records)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        dest="metrics_out",
        help="write a JSON metrics snapshot here on exit; feed one or more "
        "such files to `repro metrics summarize`",
    )


def _obs_setup(args: argparse.Namespace) -> str:
    """Configure logging/tracing from the obs flags; returns the run id."""
    from repro.obs import logging as obs_logging
    from repro.obs import trace as obs_trace

    run_id = os.urandom(6).hex()
    if getattr(args, "log_json", None):
        obs_logging.configure(
            args.log_json,
            level=args.log_level,
            run_id=run_id,
            command=args.command,
            pid=os.getpid(),
        )
        obs_trace.enable()
    return run_id


def _obs_teardown(args: argparse.Namespace, run_id: str) -> None:
    """Export the metrics snapshot (if asked) and release the log sink."""
    from repro.obs import logging as obs_logging
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    if getattr(args, "metrics_out", None):
        meta = {"run_id": run_id, "command": args.command, "pid": os.getpid()}
        node_id = getattr(args, "obs_node_id", None)
        if node_id:
            meta["node_id"] = node_id
        obs_metrics.export(args.metrics_out, meta=meta)
    if getattr(args, "log_json", None):
        obs_trace.disable()
        obs_logging.reset()


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def _add_rpc_options(parser: argparse.ArgumentParser) -> None:
    """RPC transport options shared by ``evaluate`` and ``monitor``."""
    parser.add_argument(
        "--nodes",
        default=None,
        help="comma-separated worker node addresses (host:port) for "
        "--transport rpc; start nodes with `repro worker --listen`",
    )
    parser.add_argument(
        "--secret-file",
        default=None,
        dest="secret_file",
        help="file holding the cluster's shared authentication secret for "
        "--transport rpc; must match the workers' --secret-file",
    )
    parser.add_argument(
        "--rpc-window",
        type=int,
        default=4,
        dest="rpc_window",
        help="maximum in-flight tasks per worker node for --transport rpc "
        "(default 4); never affects the trajectory, only throughput",
    )
    parser.add_argument(
        "--accept-joins",
        default=None,
        dest="accept_joins",
        help="host:port to accept late-joining `repro worker --join` "
        "registrations on for --transport rpc (port 0 picks one; printed "
        "on startup); joiners receive work from the next round on",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient knowledge-graph accuracy evaluation (VLDB 2019 reproduction).",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Full documentation lives in docs/:\n"
            "  docs/architecture.md   layer-by-layer system walkthrough\n"
            "  docs/wire-protocol.md  RPC protocol v2 frames, tags, handshake\n"
            "  docs/operations.md     cluster runbook (workers, joins, metrics)\n"
            "  docs/planner.md        adaptive transport planner + calibration"
        ),
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    common.add_argument(
        "--movie-scale",
        type=float,
        default=0.01,
        help="scale of the MOVIE-like dataset relative to the published size (default 0.01)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "datasets", parents=[common], help="print dataset characteristics (cf. Table 3)"
    )

    evaluate = subparsers.add_parser(
        "evaluate", parents=[common], help="run one accuracy evaluation"
    )
    evaluate.add_argument("--dataset", choices=_DATASETS, default="nell")
    evaluate.add_argument("--design", choices=_DESIGNS, default="twcs")
    evaluate.add_argument("--moe", type=float, default=0.05, help="margin-of-error target")
    evaluate.add_argument(
        "--confidence", type=float, default=0.95, help="confidence level (default 0.95)"
    )
    evaluate.add_argument(
        "--second-stage-size",
        "-m",
        type=int,
        default=5,
        dest="second_stage_size",
        help="TWCS second-stage cap m (default 5)",
    )
    evaluate.add_argument(
        "--backend",
        choices=("memory", "columnar", "sqlite"),
        default="memory",
        help="storage backend for the evaluated graph; 'sqlite' keeps the "
        "columns in a disk-resident WAL database (default memory)",
    )
    evaluate.add_argument(
        "--from-snapshot",
        default=None,
        dest="from_snapshot",
        help="evaluate a reopened snapshot (requires a format-v2 snapshot "
        "saved with --with-labels) instead of building --dataset",
    )
    evaluate.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the draw loop across N worker processes via the sharded "
        "position-surface engine (0 = sharded but in-process; default: the "
        "single-stream serial loop)",
    )
    evaluate.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --workers/--transport runs (default: planner "
        "decision, max(workers, 1) or the node count); part of the run's "
        "random-stream identity",
    )
    evaluate.add_argument(
        "--transport",
        choices=("auto", "serial", "pool", "shm", "rpc"),
        default="auto",
        help="execution transport for the sharded engine: 'auto' (default — "
        "a deterministic shard plan from graph stats + the MoE target, "
        "executed by whichever transport the adaptive planner predicts "
        "fastest, see docs/planner.md), 'serial' (in-process reference), "
        "'pool' (local worker processes), 'shm' (shared-memory CSR views + "
        "warm worker pool), 'rpc' (remote worker nodes via --nodes); "
        "trajectories are bit-identical across transports for a fixed "
        "shard plan",
    )
    evaluate.add_argument(
        "--profile",
        default=None,
        help="planner calibration profile path for --transport auto "
        "(default ~/.cache/repro/planner.json or $REPRO_PLANNER_PROFILE)",
    )
    _add_rpc_options(evaluate)
    _add_obs_options(evaluate)
    evaluate.add_argument(
        "--allocation",
        choices=("proportional", "neyman"),
        default="proportional",
        help="per-round stratum allocation for --design twcs-strat runs on the "
        "sharded engine (default proportional)",
    )

    snapshot = subparsers.add_parser(
        "snapshot",
        parents=[common],
        help="build a dataset and persist it as a columnar snapshot",
    )
    snapshot.add_argument("--dataset", choices=_DATASETS, default="nell")
    snapshot.add_argument(
        "--out",
        required=True,
        help="target path: *.npz for a single archive, anything else for a "
        "memory-mappable snapshot directory (or a WAL database with "
        "--backend sqlite)",
    )
    snapshot.add_argument(
        "--backend",
        choices=("columnar", "sqlite"),
        default="columnar",
        help="persistence format: 'columnar' writes a SnapshotStore snapshot, "
        "'sqlite' writes a disk-resident WAL database that `evaluate "
        "--from-snapshot` reopens out-of-core (default columnar)",
    )
    snapshot.add_argument("--compress", action="store_true", help="compress the .npz archive")
    snapshot.add_argument(
        "--with-labels",
        action="store_true",
        dest="with_labels",
        help="store the ground-truth label array next to the graph (format v2), "
        "enabling `evaluate --from-snapshot` and monitor resume",
    )

    monitor = subparsers.add_parser(
        "monitor",
        parents=[common],
        help="monitor an evolving KG over a stream of update batches",
    )
    monitor.add_argument("--dataset", choices=_DATASETS, default="movie")
    monitor.add_argument(
        "--backend",
        choices=("memory", "columnar", "sqlite"),
        default="memory",
        help="storage backend; 'columnar' runs the position-surface evaluators "
        "with zero-copy delta updates, 'sqlite' keeps the persistent base "
        "out-of-core and derives the same columns (default memory)",
    )
    monitor.add_argument(
        "--evaluator",
        choices=("rs", "ss", "baseline"),
        default="ss",
        help="incremental evaluator: reservoir (Alg. 1), stratified (Alg. 2) "
        "or the re-evaluate-from-scratch baseline (default ss)",
    )
    monitor.add_argument(
        "--batches", type=int, default=3, help="number of update batches (default 3)"
    )
    monitor.add_argument(
        "--batch-fraction",
        type=float,
        default=0.1,
        dest="batch_fraction",
        help="update batch size as a fraction of the base KG (default 0.1)",
    )
    monitor.add_argument(
        "--update-accuracy",
        type=float,
        default=0.8,
        dest="update_accuracy",
        help="accuracy of inserted triples (default 0.8)",
    )
    monitor.add_argument("--moe", type=float, default=0.05, help="margin-of-error target")
    monitor.add_argument(
        "--confidence", type=float, default=0.95, help="confidence level (default 0.95)"
    )
    monitor.add_argument(
        "--snapshot",
        default=None,
        help="persist the base graph + labels here on the first run and reopen "
        "them on later runs (skipping the build/labelling work)",
    )
    monitor.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the position-surface draw loops (base stratum, update "
        "segments) across N worker processes (0 = sharded but in-process); "
        "requires --backend columnar with --evaluator rs or ss",
    )
    monitor.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --workers/--transport runs (default: planner "
        "decision, max(workers, 1) or the node count)",
    )
    monitor.add_argument(
        "--transport",
        choices=("auto", "serial", "pool", "shm", "rpc"),
        default="auto",
        help="execution transport for the sharded draw loops (see `evaluate "
        "--transport`; 'auto' plans adaptively on the position surface and "
        "keeps the classic loop otherwise); explicit transports require "
        "--backend columnar with --evaluator rs or ss",
    )
    monitor.add_argument(
        "--profile",
        default=None,
        help="planner calibration profile path for --transport auto "
        "(default ~/.cache/repro/planner.json or $REPRO_PLANNER_PROFILE)",
    )
    _add_rpc_options(monitor)
    _add_obs_options(monitor)

    worker = subparsers.add_parser(
        "worker",
        help="run a sampling worker node for the RPC shard transport",
    )
    worker.add_argument(
        "--listen",
        default=None,
        help="address to listen on as host:port (port 0 picks a free port, "
        "printed on startup); mutually exclusive with --join",
    )
    worker.add_argument(
        "--join",
        default=None,
        help="register with a running master's --accept-joins listener at "
        "host:port and serve it over the dialed connection (late-joining "
        "nodes receive work from the next round on); mutually exclusive "
        "with --listen",
    )
    worker.add_argument(
        "--base-dir",
        required=True,
        dest="base_dir",
        help="directory for the content-addressed snapshot shard cache "
        "(persists across connections; an unchanged graph is received once)",
    )
    worker.add_argument(
        "--secret-file",
        default=None,
        dest="secret_file",
        help="file holding the cluster's shared authentication secret; every "
        "connection must pass the mutual HMAC handshake before any task "
        "bytes flow (omit for the empty secret — loopback testing only)",
    )
    worker.add_argument(
        "--max-connections",
        type=int,
        default=None,
        dest="max_connections",
        help="exit after serving this many master connections (default: serve "
        "forever)",
    )
    worker.add_argument(
        "--task-delay",
        type=float,
        default=0.0,
        dest="task_delay",
        help="sleep this many seconds before executing each task (throttling/"
        "fault-injection aid for the chaos suite; default 0)",
    )
    _add_obs_options(worker)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived multi-session evaluation daemon",
    )
    serve.add_argument(
        "--listen",
        default="127.0.0.1:7400",
        help="address to listen on as host:port (port 0 picks a free port, "
        "printed on startup; default 127.0.0.1:7400)",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        dest="state_dir",
        help="checkpoint directory: a draining daemon (SIGTERM) checkpoints "
        "every session here, and a restart on the same directory resumes "
        "them with bit-identical future trajectories",
    )
    serve.add_argument(
        "--secret-file",
        default=None,
        dest="secret_file",
        help="file holding the client-authentication secret; every connection "
        "must pass the mutual HMAC handshake (omit for the empty secret — "
        "loopback testing only)",
    )
    serve.add_argument(
        "--fleet-secret-file",
        default=None,
        dest="fleet_secret_file",
        help="separate secret for the worker fleet that sessions with an rpc "
        "engine dial (`repro worker` nodes); client and fleet secrets are "
        "distinct trust domains",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        dest="queue_limit",
        help="admission-queue bound: submits beyond this many queued rounds "
        "are refused with a typed backpressure error (default 16)",
    )
    serve.add_argument(
        "--root-seed",
        type=int,
        default=0,
        dest="root_seed",
        help="entropy root for the per-session SeedSequence streams handed "
        "to sessions that omit an explicit seed (default 0)",
    )
    _add_obs_options(serve)

    client_common = argparse.ArgumentParser(add_help=False)
    client_common.add_argument(
        "--connect",
        required=True,
        help="address (host:port) of the serve daemon",
    )
    client_common.add_argument(
        "--secret-file",
        default=None,
        dest="secret_file",
        help="file holding the daemon's client-authentication secret",
    )
    client = subparsers.add_parser(
        "client",
        help="talk to a running serve daemon",
    )
    client_sub = client.add_subparsers(dest="client_command", required=True)
    client_run = client_sub.add_parser(
        "run",
        parents=[common, client_common],
        help="drive one monitoring session through the daemon (the served "
        "twin of `repro monitor`; trajectories are bit-identical)",
    )
    client_run.add_argument("--dataset", choices=_DATASETS, default="movie")
    client_run.add_argument(
        "--session",
        default=None,
        help="session name (re-attaching an existing name with the same spec "
        "resumes it; default: daemon-assigned)",
    )
    client_run.add_argument(
        "--evaluator",
        choices=("rs", "ss"),
        default="ss",
        help="incremental evaluator: reservoir (Alg. 1) or stratified "
        "(Alg. 2; default ss)",
    )
    client_run.add_argument(
        "--batches", type=int, default=3, help="number of update batches (default 3)"
    )
    client_run.add_argument(
        "--batch-fraction",
        type=float,
        default=0.1,
        dest="batch_fraction",
        help="update batch size as a fraction of the base KG (default 0.1)",
    )
    client_run.add_argument(
        "--update-accuracy",
        type=float,
        default=0.8,
        dest="update_accuracy",
        help="accuracy of inserted triples (default 0.8)",
    )
    client_run.add_argument("--moe", type=float, default=0.05, help="margin-of-error target")
    client_run.add_argument(
        "--confidence", type=float, default=0.95, help="confidence level (default 0.95)"
    )
    client_run.add_argument(
        "--transport",
        choices=("serial", "pool", "shm", "rpc"),
        default=None,
        help="ask the daemon to run this session's draw loops on a specific "
        "transport (default: the daemon's classic single-stream loop)",
    )
    client_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the session's pool/shm engine request",
    )
    client_run.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for the session's engine request (part of the "
        "random-stream identity)",
    )
    client_run.add_argument(
        "--nodes",
        default=None,
        help="comma-separated worker addresses for --transport rpc (the "
        "daemon dials them with its --fleet-secret-file)",
    )
    client_run.add_argument(
        "--rpc-window",
        type=int,
        default=None,
        dest="rpc_window",
        help="maximum in-flight tasks per worker node for --transport rpc",
    )
    client_run.add_argument(
        "--detach",
        action="store_true",
        help="detach (and drop) the session after printing the trajectory",
    )
    client_estimate = client_sub.add_parser(
        "estimate",
        parents=[client_common],
        help="O(1) read of a session's latest cached estimate (never samples)",
    )
    client_estimate.add_argument("--session", required=True, help="session name")
    client_poll = client_sub.add_parser(
        "poll",
        parents=[client_common],
        help="block until a session's trajectory satisfies a threshold",
    )
    client_poll.add_argument("--session", required=True, help="session name")
    client_poll.add_argument(
        "--min-records",
        type=int,
        default=None,
        dest="min_records",
        help="wait until at least this many rounds completed",
    )
    client_poll.add_argument(
        "--moe-below",
        type=float,
        default=None,
        dest="moe_below",
        help="wait until the latest margin of error drops below this",
    )
    client_poll.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="maximum seconds to wait (default 30)",
    )
    client_sub.add_parser(
        "sessions",
        parents=[client_common],
        help="list the daemon's attached sessions",
    )
    client_detach = client_sub.add_parser(
        "detach",
        parents=[client_common],
        help="detach a session (refused while rounds are pending)",
    )
    client_detach.add_argument("--session", required=True, help="session name")

    metrics = subparsers.add_parser(
        "metrics",
        help="inspect metrics snapshots written by --metrics-out",
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    summarize = metrics_sub.add_parser(
        "summarize",
        help="merge snapshot files and print per-shard / per-node tables",
    )
    summarize.add_argument(
        "files",
        nargs="+",
        help="metrics snapshot JSON files (master --metrics-out plus any "
        "worker snapshots; node-less series inherit each file's node id)",
    )

    planner = subparsers.add_parser(
        "planner",
        help="inspect or recalibrate the adaptive transport planner profile",
    )
    planner_sub = planner.add_subparsers(dest="planner_command", required=True)
    planner_show = planner_sub.add_parser(
        "show", help="print the active calibration profile as JSON"
    )
    planner_show.add_argument(
        "--profile",
        default=None,
        help="profile path (default ~/.cache/repro/planner.json or "
        "$REPRO_PLANNER_PROFILE)",
    )
    planner_calibrate = planner_sub.add_parser(
        "calibrate",
        help="regenerate per-transport cost coefficients from benchmark "
        "results (BENCH_parallel.json)",
    )
    planner_calibrate.add_argument(
        "--bench",
        nargs="+",
        required=True,
        help="one or more BENCH_parallel.json payloads to calibrate from",
    )
    planner_calibrate.add_argument(
        "--profile",
        default=None,
        help="profile path to write (default ~/.cache/repro/planner.json or "
        "$REPRO_PLANNER_PROFILE)",
    )

    experiment = subparsers.add_parser(
        "experiment", parents=[common], help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--trials", type=int, default=5, help="randomised trials (default 5)")

    scenario = subparsers.add_parser(
        "scenario",
        help="run declarative stress-scenario packs with statistical coverage gates",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_run = scenario_sub.add_parser(
        "run",
        help="execute a pack's seeded replications and gate coverage/MoE/cost",
    )
    scenario_run.add_argument(
        "--pack",
        default="builtin-smoke",
        help="built-in pack name (builtin-full, builtin-smoke) or a "
        ".json/.toml pack file (default builtin-smoke)",
    )
    scenario_run.add_argument(
        "--backend",
        choices=("memory", "columnar", "sqlite"),
        default="memory",
        help="storage backend the replications run on (default memory); "
        "trajectory digests are bit-identical across backends",
    )
    scenario_run.add_argument(
        "--out",
        default=None,
        help="write a deterministic SCENARIOS_*.json result document here "
        "(feed it to `repro scenario compare`)",
    )
    scenario_run.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this scenario (repeatable)",
    )
    scenario_run.add_argument(
        "--replications",
        type=int,
        default=None,
        help="override every scenario's replication count (default: as declared)",
    )
    scenario_run.add_argument(
        "--root-seed",
        type=int,
        default=0,
        dest="root_seed",
        help="root seed mixed into every per-replication seed (default 0)",
    )
    scenario_compare = scenario_sub.add_parser(
        "compare",
        help="diff a result file against a committed baseline (exit 1 on drift)",
    )
    scenario_compare.add_argument("baseline", help="baseline SCENARIOS_*.json")
    scenario_compare.add_argument("current", help="current SCENARIOS_*.json")
    scenario_compare.add_argument(
        "--float-tolerance",
        type=float,
        default=1e-9,
        dest="float_tolerance",
        help="absolute tolerance for float fields (default 1e-9); digests and "
        "coverage counts always compare exactly",
    )
    scenario_list = scenario_sub.add_parser(
        "list", help="list the built-in packs, or the scenarios inside one pack"
    )
    scenario_list.add_argument(
        "--pack",
        default=None,
        help="pack to list scenarios for (built-in name or .json/.toml file)",
    )

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "evaluate": _cmd_evaluate,
        "snapshot": _cmd_snapshot,
        "monitor": _cmd_monitor,
        "experiment": _cmd_experiment,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "client": _cmd_client,
        "metrics": _cmd_metrics,
        "planner": _cmd_planner,
        "scenario": _cmd_scenario,
    }
    handler = handlers.get(args.command)
    if handler is None:
        parser.print_help()
        return 2
    if args.command not in _OBS_COMMANDS:
        return handler(args)
    run_id = _obs_setup(args)
    try:
        return handler(args)
    finally:
        # Runs on clean exit, errors and SIGTERM (the worker converts it to
        # SystemExit), so --metrics-out snapshots survive orderly shutdowns.
        _obs_teardown(args, run_id)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
