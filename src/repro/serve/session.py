"""One evaluation session: spec validation, construction, checkpoint/restore.

A *session* is a resident :class:`~repro.evolving.base.IncrementalEvaluator`
plus the :class:`~repro.evolving.monitor.EvolvingAccuracyMonitor` driving
it, built from a client-supplied **spec** dict.  The construction path is
deliberately the same as ``repro monitor --backend columnar`` (columnar
base, position surface, explicit seed), so a served session's estimate
trajectory is bit-identical to the offline command — the contract the
golden replay suite pins.

Specs
-----
``dataset``/``dataset_seed``/``movie_scale``
    Which synthetic base graph to build (or ``snapshot``: a format-v2
    snapshot path saved with labels).  The built graph is shared across
    sessions via the server's graph cache — the base columns are frozen;
    each session's updates live in its own ``DeltaStore`` tail.
``evaluator``
    ``rs`` (reservoir, Alg. 1) or ``ss`` (stratified, Alg. 2).
``seed``
    The evaluator/annotator stream seed.  Omitted, the server derives one
    from its root :class:`numpy.random.SeedSequence` (deterministic in
    attach order).
``moe``/``confidence``/``second_stage_size``
    Quality knobs, as on the CLI.
``engine``
    Optional transport-fleet request: ``{"transport": "serial"|"pool"|
    "shm"|"rpc", "workers": N, "shards": N, "nodes": [...], "rpc_window":
    N}``.  Shards are part of the random-stream identity; the transport
    only decides where the fixed plan executes.

Checkpoints
-----------
:func:`checkpoint_session` captures the full evaluator state through
:func:`repro.evolving.state.capture_evaluator_state` plus the monitor's
record trajectory; :func:`restore_session` rebuilds the base graph from the
spec (bit-identical reload) and replays the state, so a drained daemon
resumes every session exactly where it stopped.
"""

from __future__ import annotations

import pickle
import threading
from pathlib import Path

from repro.core.config import EvaluationConfig
from repro.generators.datasets import LabelledKG

__all__ = [
    "CHECKPOINT_FORMAT",
    "Session",
    "normalise_spec",
    "build_base",
    "build_session",
    "checkpoint_session",
    "restore_session",
]

CHECKPOINT_FORMAT = 1

_DATASETS = ("nell", "yago", "movie", "movie-syn")
_EVALUATORS = ("rs", "ss")
_ENGINE_TRANSPORTS = ("serial", "pool", "shm", "rpc")


def normalise_spec(spec) -> dict:
    """Validate a client spec and fill defaults; raises ``ValueError``."""
    if not isinstance(spec, dict):
        raise ValueError("attach requires a spec dict")
    out: dict = {}
    snapshot = spec.get("snapshot")
    if snapshot is not None:
        if not isinstance(snapshot, str) or not snapshot:
            raise ValueError("spec.snapshot must be a path string")
        out["snapshot"] = snapshot
    else:
        dataset = spec.get("dataset", "nell")
        if dataset not in _DATASETS:
            raise ValueError(f"spec.dataset must be one of {_DATASETS}, got {dataset!r}")
        out["dataset"] = dataset
        out["dataset_seed"] = int(spec.get("dataset_seed", 0))
        out["movie_scale"] = float(spec.get("movie_scale", 0.01))
    evaluator = spec.get("evaluator", "ss")
    if evaluator not in _EVALUATORS:
        raise ValueError(f"spec.evaluator must be one of {_EVALUATORS}, got {evaluator!r}")
    out["evaluator"] = evaluator
    seed = spec.get("seed")
    out["seed"] = None if seed is None else int(seed)
    out["moe"] = float(spec.get("moe", 0.05))
    out["confidence"] = float(spec.get("confidence", 0.95))
    if "second_stage_size" in spec:
        out["second_stage_size"] = int(spec["second_stage_size"])
    engine = spec.get("engine")
    if engine is not None:
        if not isinstance(engine, dict):
            raise ValueError("spec.engine must be a dict")
        kind = engine.get("transport")
        if kind is not None and kind not in _ENGINE_TRANSPORTS:
            raise ValueError(
                f"spec.engine.transport must be one of {_ENGINE_TRANSPORTS}, got {kind!r}"
            )
        out["engine"] = {
            key: engine[key]
            for key in ("transport", "workers", "shards", "nodes", "rpc_window")
            if engine.get(key) is not None
        }
    return out


def graph_cache_key(spec: dict) -> tuple:
    """Identity of the resident base a spec attaches to (for cross-session reuse)."""
    if "snapshot" in spec:
        return ("snapshot", spec["snapshot"])
    return ("dataset", spec["dataset"], spec["dataset_seed"], spec["movie_scale"])


def build_base(spec: dict) -> tuple[LabelledKG, object]:
    """Build (or reopen) the frozen columnar base a spec names.

    Returns ``(base, position_labels)`` — labels are only explicit on the
    snapshot path (the evaluator derives them from the oracle otherwise,
    exactly like ``repro monitor``).
    """
    if "snapshot" in spec:
        from repro.labels.oracle import LabelOracle
        from repro.storage.snapshot import SnapshotStore

        store = SnapshotStore(spec["snapshot"])
        if not store.exists():
            raise ValueError(f"snapshot {spec['snapshot']} does not exist")
        labels = store.load_labels()
        if labels is None:
            raise ValueError(
                f"snapshot {spec['snapshot']} carries no label array; re-create "
                "it with `repro snapshot --with-labels`"
            )
        return LabelledKG(store.load_graph(), LabelOracle({}, strict=False)), labels
    from repro.generators.datasets import (
        make_movie_like,
        make_movie_syn,
        make_nell_like,
        make_yago_like,
    )

    builders = {
        "nell": make_nell_like,
        "yago": make_yago_like,
        "movie": make_movie_like,
        "movie-syn": make_movie_syn,
    }
    builder = builders[spec["dataset"]]
    if spec["dataset"] in ("movie", "movie-syn"):
        data = builder(seed=spec["dataset_seed"], scale=spec["movie_scale"])
    else:
        data = builder(seed=spec["dataset_seed"])
    return LabelledKG(data.graph.to_columnar(), data.oracle), None


def _engine_extra(engine: dict | None, fleet_secret) -> dict:
    """Resolve a spec's engine request into evaluator kwargs."""
    if not engine:
        return {}
    kind = engine.get("transport")
    workers = engine.get("workers")
    shards = engine.get("shards")
    extra: dict = {}
    if kind == "rpc":
        from repro.sampling.rpc import SocketRPCTransport

        nodes = [str(node) for node in (engine.get("nodes") or [])]
        if not nodes:
            raise ValueError("engine.transport 'rpc' requires engine.nodes")
        extra["transport"] = SocketRPCTransport(
            nodes, secret=fleet_secret, window=int(engine.get("rpc_window", 4))
        )
    elif kind == "pool":
        from repro.sampling.parallel import ParallelSamplingExecutor, ProcessPoolTransport

        count = int(workers or ParallelSamplingExecutor.default_workers())
        extra["transport"] = ProcessPoolTransport(count, keep_alive=True)
    elif kind == "shm":
        from repro.sampling.parallel import ParallelSamplingExecutor
        from repro.sampling.shm import SharedMemoryTransport

        count = int(workers or ParallelSamplingExecutor.default_workers())
        extra["transport"] = SharedMemoryTransport(count)
    elif kind == "serial":
        from repro.sampling.parallel import SerialTransport

        extra["transport"] = SerialTransport()
    elif workers is not None:
        extra["workers"] = int(workers)
    if extra or shards is not None:
        transport = extra.get("transport")
        if shards is not None:
            extra["num_shards"] = int(shards)
        elif transport is not None and transport.default_shards:
            extra["num_shards"] = int(transport.default_shards)
        else:
            extra["num_shards"] = max(int(workers or 1), 1)
    return extra


def _evaluator_class(kind: str):
    from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
    from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator

    return {
        "rs": ReservoirIncrementalEvaluator,
        "ss": StratifiedIncrementalEvaluator,
    }[kind]


class Session:
    """A resident evaluator + monitor with its cached estimate trajectory.

    All mutable fields (``latest``, ``trajectory``, ``pending``, ``failed``)
    are guarded by ``lock``; ``changed`` notifies threshold pollers whenever
    a round completes or fails.  ``latest`` is the whole point of the serve
    architecture: the eval worker writes it once per completed round, and
    every ``estimate`` request is a lock-protected read of this one
    reference — O(1), no sampling work, never blocked by in-flight rounds.
    """

    def __init__(self, session_id: str, spec: dict, seed: int, evaluator, monitor) -> None:
        self.id = session_id
        self.spec = spec
        self.seed = seed
        self.evaluator = evaluator
        self.monitor = monitor
        self.lock = threading.Lock()
        self.changed = threading.Condition(self.lock)
        self.pending = 0
        self.latest: dict | None = None
        self.trajectory: list[dict] = []
        self.failed: str | None = None
        self.engine = bool(spec.get("engine"))

    def record_result(self, record, evaluation) -> dict:
        """Fold one completed round into the cached trajectory (worker thread)."""
        payload = {
            "batch_index": int(record.batch_index),
            "batch_id": str(evaluation.batch_id),
            "record": record,
            "report": evaluation.report,
            "cumulative_cost_seconds": float(evaluation.cumulative_cost_seconds),
        }
        with self.changed:
            self.trajectory.append(payload)
            self.latest = payload
            self.pending -= 1
            self.changed.notify_all()
        return payload

    def record_failure(self, message: str) -> None:
        with self.changed:
            self.failed = message
            self.pending -= 1
            self.changed.notify_all()

    def snapshot(self) -> tuple[dict | None, int, int, str | None]:
        """One consistent ``(latest, pending, num_records, failed)`` read."""
        with self.lock:
            return self.latest, self.pending, len(self.trajectory), self.failed

    def close(self) -> None:
        self.evaluator.close()


def build_session(
    session_id: str, spec: dict, seed: int, base: LabelledKG, labels, *, fleet_secret=None
) -> Session:
    """Construct a fresh session exactly like ``repro monitor`` would."""
    from repro.evolving.monitor import EvolvingAccuracyMonitor

    config = EvaluationConfig(moe_target=spec["moe"], confidence_level=spec["confidence"])
    kwargs: dict = {
        "config": config,
        "seed": seed,
        "surface": "position",
        "position_labels": labels,
    }
    if "second_stage_size" in spec:
        kwargs["second_stage_size"] = spec["second_stage_size"]
    kwargs.update(_engine_extra(spec.get("engine"), fleet_secret))
    evaluator = _evaluator_class(spec["evaluator"])(base, **kwargs)
    return Session(session_id, spec, seed, evaluator, EvolvingAccuracyMonitor(evaluator))


# --------------------------------------------------------------------------- #
# Checkpoint / restore (drain + resume)
# --------------------------------------------------------------------------- #
def _checkpoint_path(state_dir: Path, session_id: str) -> Path:
    return Path(state_dir) / f"{session_id}.ckpt"


def checkpoint_session(state_dir: str | Path, session: Session) -> Path:
    """Write one session's resumable checkpoint under ``state_dir``."""
    from repro.evolving.state import capture_evaluator_state

    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": CHECKPOINT_FORMAT,
        "session": session.id,
        "spec": session.spec,
        "seed": session.seed,
        "state": capture_evaluator_state(session.evaluator),
        "records": list(session.monitor.records),
    }
    path = _checkpoint_path(state_dir, session.id)
    tmp = path.with_suffix(".ckpt.tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(path)
    return path


def drop_checkpoint(state_dir: str | Path, session_id: str) -> None:
    """Remove a detached session's checkpoint so a restart cannot resurrect it."""
    _checkpoint_path(Path(state_dir), session_id).unlink(missing_ok=True)


def list_checkpoints(state_dir: str | Path) -> list[Path]:
    state_dir = Path(state_dir)
    if not state_dir.is_dir():
        return []
    return sorted(state_dir.glob("*.ckpt"))


def restore_session(path: str | Path, base_for) -> Session:
    """Rebuild a checkpointed session with a bit-identical future trajectory.

    ``base_for(spec)`` supplies the (cached) base graph + labels for the
    checkpoint's spec — the server passes its graph cache, so resuming N
    sessions over one dataset rebuilds the base once.  Engine requests are
    honoured on resume too; the transport never changes the trajectory.
    """
    from repro.evolving.monitor import EvolvingAccuracyMonitor
    from repro.evolving.state import restore_evaluator

    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    version = int(payload.get("format", 0))
    if version > CHECKPOINT_FORMAT:
        raise ValueError(
            f"serve checkpoint format v{version} is newer than supported v{CHECKPOINT_FORMAT}"
        )
    spec = payload["spec"]
    base, _labels = base_for(spec)
    extra = _engine_extra(spec.get("engine"), None)
    evaluator = restore_evaluator(
        payload["state"],
        base,
        workers=extra.get("workers"),
        num_shards=extra.get("num_shards"),
        transport=extra.get("transport"),
    )
    monitor = EvolvingAccuracyMonitor(evaluator)
    monitor.records = list(payload["records"])
    session = Session(payload["session"], spec, int(payload["seed"]), evaluator, monitor)
    # Rebuild the cached trajectory from the restored history: records[i]
    # and history[i] describe the same round (base eval first).
    for record, evaluation in zip(monitor.records, evaluator.history):
        entry = {
            "batch_index": int(record.batch_index),
            "batch_id": str(evaluation.batch_id),
            "record": record,
            "report": evaluation.report,
            "cumulative_cost_seconds": float(evaluation.cumulative_cost_seconds),
        }
        session.trajectory.append(entry)
        session.latest = entry
    return session
