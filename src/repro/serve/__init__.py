"""Long-lived multi-session evaluation service (``repro serve``).

The batch commands pay full CLI startup, graph construction and plan
building for every estimate.  This package turns the same machinery into a
continuously-available daemon: graphs stay attached across requests,
evaluation *sessions* multiplex over one transport fleet, and the latest
:class:`~repro.core.result.EvaluationReport` of every session is an O(1)
cached read — never a sampling run.

* :mod:`repro.serve.protocol` — request framing and the mutual HMAC
  handshake on the authenticated v2 wire (serve-specific roles).
* :mod:`repro.serve.session` — one evaluation session: spec validation,
  evaluator construction, checkpoint/restore via ``evolving/state.py``.
* :mod:`repro.serve.server` — :class:`EvalServer`: accept loop, session
  registry, bounded admission queue, graceful drain.
* :mod:`repro.serve.client` — :class:`ServeClient`: the scripting API the
  ``repro client`` CLI wraps.
"""

from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.server import EvalServer

__all__ = ["EvalServer", "ServeClient", "ServeRequestError"]
