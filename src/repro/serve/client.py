"""Client for the ``repro serve`` daemon.

:class:`ServeClient` is the scripting surface the ``repro client`` CLI
wraps: one authenticated connection, plain method-per-op API, typed
:class:`ServeRequestError` for every error the daemon replies with (the
``code`` attribute carries the daemon's machine-readable reason, e.g.
``"backpressure"`` or ``"spec_mismatch"``).

Connect retries mirror the worker-join behaviour: a daemon that is still
binding its socket (CI races, supervisor restarts) is retried with a short
interval instead of failing the first dial.
"""

from __future__ import annotations

import socket
import time

from repro.sampling.rpc import (
    RPCError,
    _normalise_secret,
    parse_node_address,
    recv_message,
    send_message,
)
from repro.serve import protocol

__all__ = ["ServeClient", "ServeRequestError"]


class ServeRequestError(RPCError):
    """The daemon replied with a typed error to a well-formed request."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """One authenticated connection to a serve daemon.

    Parameters
    ----------
    address:
        ``host:port`` of the daemon.
    secret:
        Shared secret (must match the daemon's ``--secret-file``).
    timeout:
        Per-request socket timeout.  ``poll`` temporarily extends it so a
        server-side threshold wait cannot trip the client first.
    connect_retries, retry_interval:
        Dial retry budget while the daemon is still coming up.
    """

    def __init__(
        self,
        address: str,
        *,
        secret=None,
        timeout: float = 60.0,
        connect_retries: int = 40,
        retry_interval: float = 0.25,
    ) -> None:
        host, port = parse_node_address(address)
        secret = _normalise_secret(secret)
        self._timeout = float(timeout)
        last_error: Exception | None = None
        sock: socket.socket | None = None
        for _ in range(max(1, int(connect_retries))):
            try:
                sock = socket.create_connection((host, port), timeout=self._timeout)
                break
            except OSError as exc:
                last_error = exc
                time.sleep(retry_interval)
        if sock is None:
            raise RPCError(f"cannot reach serve daemon at {address}: {last_error}")
        self._sock = sock
        try:
            protocol.client_handshake(sock, secret)
        except BaseException:
            sock.close()
            raise

    # ------------------------------------------------------------------ #
    def _request(self, message: dict, *, timeout: float | None = None) -> dict:
        self._sock.settimeout(self._timeout if timeout is None else timeout)
        send_message(self._sock, message)
        reply = recv_message(self._sock, limit=protocol.MAX_REQUEST_BYTES)
        if not isinstance(reply, dict):
            raise RPCError("serve daemon closed the connection mid-request")
        if reply.get("op") == "error":
            raise ServeRequestError(
                str(reply.get("code", "error")), str(reply.get("message", ""))
            )
        return reply

    # ------------------------------------------------------------------ #
    def attach(self, spec: dict, *, session: str | None = None, wait: bool = True) -> dict:
        """Attach (or idempotently re-attach) an evaluation session."""
        message: dict = {"op": "attach", "spec": spec, "wait": wait}
        if session is not None:
            message["session"] = session
        return self._request(message, timeout=None if wait else self._timeout)

    def submit(
        self,
        session: str,
        batch_id: str,
        triples,
        labels,
        *,
        wait: bool = True,
    ) -> dict:
        """Submit one update batch (triples + oracle labels) into a session."""
        return self._request(
            {
                "op": "submit",
                "session": session,
                "batch_id": batch_id,
                "triples": list(triples),
                "labels": [bool(label) for label in labels],
                "wait": wait,
            }
        )

    def submit_batch(self, session: str, batch, oracle, *, wait: bool = True) -> dict:
        """Submit an :class:`~repro.kg.updates.UpdateBatch` with its oracle."""
        labels = [oracle.label(triple) for triple in batch.triples]
        return self.submit(session, batch.batch_id, batch.triples, labels, wait=wait)

    def estimate(self, session: str) -> dict:
        """O(1) read of the session's latest cached round — never samples."""
        return self._request({"op": "estimate", "session": session})

    def poll(
        self,
        session: str,
        *,
        min_records: int | None = None,
        moe_below: float | None = None,
        timeout: float = 30.0,
    ) -> dict:
        """Block server-side until the trajectory satisfies a threshold."""
        message: dict = {"op": "poll", "session": session, "timeout": float(timeout)}
        if min_records is not None:
            message["min_records"] = int(min_records)
        if moe_below is not None:
            message["moe_below"] = float(moe_below)
        return self._request(message, timeout=float(timeout) + self._timeout)

    def trajectory(self, session: str) -> dict:
        return self._request({"op": "trajectory", "session": session})

    def sessions(self) -> dict:
        return self._request({"op": "sessions"})

    def detach(self, session: str) -> dict:
        return self._request({"op": "detach", "session": session})

    def close(self) -> None:
        try:
            send_message(self._sock, {"op": "shutdown"})
            recv_message(self._sock, limit=protocol.MAX_REQUEST_BYTES)
        except (OSError, RPCError):  # pragma: no cover - best-effort goodbye
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
