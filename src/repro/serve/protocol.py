"""Serve protocol: framing limits, handshake and request validation.

``repro serve`` speaks the same authenticated v2 wire as the worker
protocol — identical frames, identical codec, identical mutual-HMAC shape —
under two *new* domain-separated roles (``serve-client``/``serve-server``),
so a tag obtained from any worker/join exchange can never be replayed into
a serve handshake or vice versa.  The server's opening challenge carries
``service: "serve"``, which lets a client that accidentally dialed a worker
(or a master that dialed a serve daemon) fail with a typed error instead of
a confusing auth failure.

Requests and replies are plain dicts; update triples and cached results
ride the serve wire tags (19–22) added to :mod:`repro.sampling.wire`.
"""

from __future__ import annotations

import os

from repro.kg.triple import Triple
from repro.sampling.rpc import (
    MAX_HANDSHAKE_BYTES,
    PROTOCOL_VERSION,
    RPCAuthError,
    RPCError,
    _NONCE_BYTES,
    _auth_ok,
    _auth_tag,
    recv_message,
    send_message,
)

__all__ = [
    "SERVICE",
    "MAX_REQUEST_BYTES",
    "ROLE_CLIENT",
    "ROLE_SERVER",
    "server_handshake",
    "client_handshake",
    "decode_batch",
]

SERVICE = "serve"
#: Upper bound on one serve request frame.  Update batches dominate (a few
#: strings per triple); 256 MiB admits millions of triples per batch while
#: keeping a hostile client from making the daemon allocate without bound.
MAX_REQUEST_BYTES = 256 * 2**20

ROLE_CLIENT = b"serve-client"
ROLE_SERVER = b"serve-server"


def server_handshake(conn, secret: bytes) -> bool:
    """Challenge/response with a connecting client; True once mutually authed.

    Mirrors the worker-side handshake: version banner + nonce out, HMAC tag
    over both nonces back, counter-tag returned — all under the small
    pre-authentication frame limit.
    """
    nonce = os.urandom(_NONCE_BYTES)
    send_message(
        conn,
        {
            "op": "challenge",
            "service": SERVICE,
            "version": PROTOCOL_VERSION,
            "nonce": nonce,
        },
    )
    hello = recv_message(conn, limit=MAX_HANDSHAKE_BYTES)
    if not isinstance(hello, dict) or hello.get("op") != "hello":
        return False
    if hello.get("version") != PROTOCOL_VERSION:
        send_message(
            conn,
            {
                "op": "error",
                "message": f"protocol version mismatch, server speaks v{PROTOCOL_VERSION}",
            },
        )
        return False
    client_nonce = hello.get("nonce")
    if not _auth_ok(secret, ROLE_CLIENT, nonce, client_nonce, hello.get("auth")):
        send_message(
            conn, {"op": "auth_error", "message": "shared-secret authentication failed"}
        )
        return False
    send_message(
        conn,
        {
            "op": "welcome",
            "version": PROTOCOL_VERSION,
            "auth": _auth_tag(secret, ROLE_SERVER, nonce, client_nonce),
        },
    )
    return True


def client_handshake(sock, secret: bytes) -> None:
    """Complete the client side of the mutual handshake (raises on failure)."""
    challenge = recv_message(sock, limit=MAX_HANDSHAKE_BYTES)
    if not isinstance(challenge, dict) or challenge.get("op") != "challenge":
        raise RPCError(f"malformed serve challenge: {challenge!r}")
    if challenge.get("service") != SERVICE:
        raise RPCError(
            "peer is not a serve daemon (did you dial a worker? "
            f"service={challenge.get('service')!r})"
        )
    if challenge.get("version") != PROTOCOL_VERSION:
        raise RPCError(
            f"serve daemon speaks protocol v{challenge.get('version')}, "
            f"this client speaks v{PROTOCOL_VERSION}"
        )
    server_nonce = challenge.get("nonce")
    if not isinstance(server_nonce, bytes):
        raise RPCError("malformed serve challenge: missing nonce")
    nonce = os.urandom(_NONCE_BYTES)
    send_message(
        sock,
        {
            "op": "hello",
            "version": PROTOCOL_VERSION,
            "nonce": nonce,
            "auth": _auth_tag(secret, ROLE_CLIENT, server_nonce, nonce),
        },
    )
    welcome = recv_message(sock, limit=MAX_HANDSHAKE_BYTES)
    if isinstance(welcome, dict) and welcome.get("op") == "auth_error":
        raise RPCAuthError("serve daemon rejected the shared secret")
    if not isinstance(welcome, dict) or welcome.get("op") != "welcome":
        raise RPCError(f"serve handshake failed: {welcome!r}")
    if not _auth_ok(secret, ROLE_SERVER, server_nonce, nonce, welcome.get("auth")):
        raise RPCAuthError("serve daemon failed to prove the shared secret")


def decode_batch(message: dict) -> tuple[str, tuple[Triple, ...], list[bool]]:
    """Validate a ``submit`` request's batch payload.

    Returns ``(batch_id, triples, labels)``; raises :class:`ValueError` on
    any malformation so the server replies a typed error instead of letting
    a bad payload reach the evaluator.
    """
    batch_id = message.get("batch_id")
    if not isinstance(batch_id, str) or not batch_id:
        raise ValueError("submit requires a non-empty string batch_id")
    triples = message.get("triples")
    if not isinstance(triples, (list, tuple)) or not triples:
        raise ValueError("submit requires a non-empty triples list")
    if not all(isinstance(triple, Triple) for triple in triples):
        raise ValueError("submit triples must all be wire-encoded Triples")
    labels = message.get("labels")
    if not isinstance(labels, (list, tuple)) or len(labels) != len(triples):
        raise ValueError("submit requires one label per triple")
    if not all(isinstance(label, bool) for label in labels):
        raise ValueError("submit labels must all be bools")
    return batch_id, tuple(triples), list(labels)
