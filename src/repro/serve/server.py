"""The ``repro serve`` daemon: accept loop, session registry, admission queue.

Architecture
------------
One listener thread accepts client connections; each connection gets its own
handler thread speaking the authenticated serve protocol.  All *sampling*
work — a session's base evaluation, every submitted update batch — flows
through a single bounded admission queue drained by one evaluation worker
thread: FIFO admission preserves per-session round order (the random-stream
contract), and the bound is the backpressure valve — a full queue rejects
the submit with a typed ``backpressure`` error instead of buffering without
limit, the queue/routing discipline of broker-backed task systems.

``estimate`` never touches the queue: it reads the session's cached latest
round under a lock — O(1), no sampling work, valid while any number of
rounds are in flight.  ``poll`` waits on the session's condition variable
for a threshold (record count, MoE) instead of busy-polling estimates.

Graceful drain (SIGTERM/SIGINT via the CLI, :meth:`EvalServer.shutdown`
programmatically): stop accepting, let the worker finish every admitted
round, checkpoint every session through ``evolving/state.py``, close the
evaluators.  A daemon restarted with the same ``--state-dir`` resumes each
session with a bit-identical future trajectory.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from pathlib import Path

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.sampling.rpc import RPCError, _normalise_secret, recv_message, send_message
from repro.serve import protocol, session as sessions_mod
from repro.serve.session import Session

__all__ = ["EvalServer"]

_log = get_logger("serve")

#: Poll slice for the accept loop (shutdown latency bound, not a deadline).
_ACCEPT_POLL = 0.5
#: Ceiling on one ``poll`` request's server-side wait.
_MAX_POLL_WAIT = 300.0


class _Work:
    """One admitted round: a base evaluation or an update batch."""

    __slots__ = ("kind", "session", "batch", "oracle", "done", "payload", "error")

    def __init__(self, kind: str, session: Session, batch=None, oracle=None) -> None:
        self.kind = kind
        self.session = session
        self.batch = batch
        self.oracle = oracle
        self.done = threading.Event()
        self.payload: dict | None = None
        self.error: str | None = None


class EvalServer:
    """Long-lived multi-session evaluation daemon.

    Parameters
    ----------
    host, port:
        Listen address (``port=0`` picks an ephemeral port; read
        :attr:`address` after :meth:`start`).
    secret:
        Shared client-authentication secret (``None`` = empty secret,
        loopback testing only).
    fleet_secret:
        Secret for the *worker fleet* an ``engine: rpc`` session dials —
        distinct from the client secret on purpose: estimate readers and
        shard workers are different trust domains.
    state_dir:
        Checkpoint directory.  When set, :meth:`start` resumes every
        checkpointed session and a draining :meth:`shutdown` checkpoints
        all live ones.
    queue_limit:
        Admission-queue bound; a full queue rejects submits with a
        ``backpressure`` error.
    root_seed:
        Entropy for the per-session ``SeedSequence`` streams handed to
        sessions that omit an explicit seed.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        secret=None,
        fleet_secret=None,
        state_dir: str | Path | None = None,
        queue_limit: int = 16,
        root_seed: int = 0,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be at least 1, got {queue_limit}")
        self._host = host
        self._port = port
        self._secret = _normalise_secret(secret)
        self._fleet_secret = fleet_secret
        self._state_dir = Path(state_dir) if state_dir is not None else None
        self._queue: queue.Queue[_Work | None] = queue.Queue(maxsize=queue_limit)
        self._seed_root = np.random.SeedSequence(root_seed)
        self._sessions: dict[str, Session] = {}
        self._graphs: dict[tuple, tuple] = {}
        self._registry_lock = threading.Lock()
        self._next_id = 0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._worker_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._unpaused = threading.Event()
        self._unpaused.set()
        self._closed = False
        self._shutdown_lock = threading.Lock()
        self._bound: tuple[str, int] | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        if self._bound is None:
            raise RuntimeError("EvalServer.address before start()")
        return f"{self._bound[0]}:{self._bound[1]}"

    def start(self) -> tuple[str, int]:
        """Bind, resume checkpointed sessions, spawn the service threads."""
        if self._bound is not None:
            raise RuntimeError("EvalServer.start() called twice")
        if self._state_dir is not None:
            self._resume_sessions()
        self._listener = socket.create_server((self._host, self._port))
        self._listener.settimeout(_ACCEPT_POLL)
        self._bound = self._listener.getsockname()[:2]
        self._worker_thread = threading.Thread(
            target=self._worker_loop, name="serve-eval-worker", daemon=True
        )
        self._worker_thread.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        _log.info(
            "serve_listening",
            address=self.address,
            sessions_resumed=len(self._sessions),
            queue_limit=self._queue.maxsize,
        )
        return self._bound

    def wait(self, stop: threading.Event | None = None) -> None:
        """Block until ``stop`` is set (or forever) — the CLI foreground."""
        if stop is None:
            stop = threading.Event()
        while not stop.is_set() and not self._stopping.is_set():
            stop.wait(_ACCEPT_POLL)

    def shutdown(self, *, drain: bool = True) -> None:
        """Stop the daemon; with ``drain`` finish and checkpoint everything.

        Idempotent.  Drain order matters: stop admitting, let the worker
        finish every already-admitted round (in-flight ``submit --wait``
        replies resolve), then checkpoint each session and close its
        evaluator.
        """
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join()
        if self._listener is not None:
            self._listener.close()
        if drain:
            self._unpaused.set()
            self._queue.join()
        self._queue.put(None)
        if self._worker_thread is not None:
            self._unpaused.set()
            self._worker_thread.join()
        checkpointed = 0
        with self._registry_lock:
            live = list(self._sessions.values())
        for sess in live:
            if drain and self._state_dir is not None and sess.failed is None:
                try:
                    sessions_mod.checkpoint_session(self._state_dir, sess)
                    checkpointed += 1
                    obs_metrics.counter("serve_checkpoints_total").inc()
                except Exception as exc:
                    _log.warning(
                        "checkpoint_failed", session=sess.id, error=f"{type(exc).__name__}: {exc}"
                    )
            try:
                sess.close()
            except Exception as exc:
                _log.warning(
                    "session_close_failed", session=sess.id, error=f"{type(exc).__name__}: {exc}"
                )
            obs_metrics.gauge("serve_sessions_active").dec()
        _log.info("serve_drained", sessions=len(live), checkpointed=checkpointed)

    def pause(self) -> None:
        """Hold the eval worker before its next round (backpressure/testing aid)."""
        self._unpaused.clear()

    def resume(self) -> None:
        self._unpaused.set()

    # ------------------------------------------------------------------ #
    # Resume
    # ------------------------------------------------------------------ #
    def _base_for(self, spec: dict) -> tuple:
        """Graph-cache lookup: one resident base per distinct spec identity."""
        key = sessions_mod.graph_cache_key(spec)
        cached = self._graphs.get(key)
        if cached is not None:
            obs_metrics.counter("serve_graph_cache_hits_total").inc()
            return cached
        built = sessions_mod.build_base(spec)
        self._graphs[key] = built
        return built

    def _resume_sessions(self) -> None:
        for path in sessions_mod.list_checkpoints(self._state_dir):
            try:
                sess = sessions_mod.restore_session(path, self._base_for)
            except Exception as exc:
                _log.warning(
                    "resume_failed", checkpoint=str(path), error=f"{type(exc).__name__}: {exc}"
                )
                continue
            with self._registry_lock:
                self._sessions[sess.id] = sess
                self._next_id = max(self._next_id, len(self._sessions))
            obs_metrics.gauge("serve_sessions_active").inc()
            _log.info("session_resumed", session=sess.id, records=len(sess.trajectory))

    # ------------------------------------------------------------------ #
    # Evaluation worker (the only thread that runs sampling)
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            self._unpaused.wait()
            work = self._queue.get()
            if work is None:
                self._queue.task_done()
                return
            obs_metrics.gauge("serve_queue_depth").set(self._queue.qsize())
            sess = work.session
            try:
                if work.kind == "base":
                    record = sess.monitor.evaluate_base()
                else:
                    record = sess.monitor.apply_update(work.batch, work.oracle)
                work.payload = sess.record_result(record, sess.evaluator.history[-1])
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                _log.warning("round_failed", session=sess.id, kind=work.kind, error=message)
                sess.record_failure(message)
                work.error = message
            finally:
                work.done.set()
                self._queue.task_done()

    def _admit(self, work: _Work) -> bool:
        """Admit one round or refuse with backpressure; never blocks."""
        with work.session.lock:
            work.session.pending += 1
        try:
            self._queue.put_nowait(work)
        except queue.Full:
            with work.session.lock:
                work.session.pending -= 1
            obs_metrics.counter("serve_backpressure_total").inc()
            return False
        obs_metrics.gauge("serve_queue_depth").set(self._queue.qsize())
        return True

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, peer = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            obs_metrics.counter("serve_connections_total").inc()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, f"{peer[0]}:{peer[1]}"),
                name=f"serve-conn-{peer[1]}",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket, peer: str) -> None:
        with conn:
            try:
                if not protocol.server_handshake(conn, self._secret):
                    obs_metrics.counter("serve_auth_failures_total").inc()
                    _log.warning("handshake_rejected", peer=peer)
                    return
                while True:
                    message = recv_message(conn, limit=protocol.MAX_REQUEST_BYTES)
                    if message is None or not isinstance(message, dict):
                        return
                    op = str(message.get("op"))
                    if op == "shutdown":
                        send_message(conn, {"op": "bye"})
                        return
                    started = time.perf_counter()
                    reply = self._dispatch(op, message)
                    obs_metrics.histogram("serve_request_seconds", op=op).observe(
                        time.perf_counter() - started
                    )
                    send_message(conn, reply)
            except (OSError, RPCError) as exc:
                obs_metrics.counter("serve_conn_errors_total").inc()
                _log.warning("conn_error", peer=peer, error=type(exc).__name__, detail=str(exc))
                return

    # ------------------------------------------------------------------ #
    # Request dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(self, op: str, message: dict) -> dict:
        handlers = {
            "attach": self._op_attach,
            "submit": self._op_submit,
            "estimate": self._op_estimate,
            "poll": self._op_poll,
            "trajectory": self._op_trajectory,
            "sessions": self._op_sessions,
            "detach": self._op_detach,
        }
        handler = handlers.get(op)
        if handler is None:
            return {"op": "error", "code": "unknown_op", "message": f"unknown op {op!r}"}
        try:
            return handler(message)
        except ValueError as exc:
            return {"op": "error", "code": "bad_request", "message": str(exc)}

    def _lookup(self, message: dict) -> Session:
        name = message.get("session")
        if not isinstance(name, str) or not name:
            raise ValueError("request requires a session name")
        with self._registry_lock:
            sess = self._sessions.get(name)
        if sess is None:
            raise ValueError(f"unknown session {name!r}")
        return sess

    def _session_seed(self, spec: dict) -> int:
        if spec["seed"] is not None:
            return spec["seed"]
        child = self._seed_root.spawn(1)[0]
        return int(child.generate_state(1, dtype=np.uint64)[0])

    def _op_attach(self, message: dict) -> dict:
        if self._stopping.is_set():
            return {"op": "error", "code": "draining", "message": "daemon is draining"}
        spec = sessions_mod.normalise_spec(message.get("spec"))
        name = message.get("session")
        if name is not None and (not isinstance(name, str) or not name):
            raise ValueError("session name must be a non-empty string")
        with self._registry_lock:
            if name is not None and name in self._sessions:
                # Idempotent re-attach (a client reconnecting after a drain
                # cycle): same spec resumes the live session, a different
                # one is a hard error — silently swapping evaluators would
                # corrupt the trajectory contract.
                sess = self._sessions[name]
                if sess.spec != spec:
                    return {
                        "op": "error",
                        "code": "spec_mismatch",
                        "message": f"session {name!r} exists with a different spec",
                    }
                latest, pending, num_records, failed = sess.snapshot()
                return {
                    "op": "attached",
                    "session": sess.id,
                    "resumed": True,
                    "seed": sess.seed,
                    "latest": latest,
                    "pending": pending,
                    "num_records": num_records,
                    "failed": failed,
                }
            if name is None:
                self._next_id += 1
                name = f"session-{self._next_id}"
            seed = self._session_seed(spec)
            base, labels = self._base_for(spec)
            sess = sessions_mod.build_session(
                name, spec, seed, base, labels, fleet_secret=self._fleet_secret
            )
            self._sessions[name] = sess
        obs_metrics.gauge("serve_sessions_active").inc()
        _log.info("session_attached", session=name, evaluator=spec["evaluator"], seed=seed)
        work = _Work("base", sess)
        if not self._admit(work):
            with self._registry_lock:
                self._sessions.pop(name, None)
            obs_metrics.gauge("serve_sessions_active").dec()
            sess.close()
            return {
                "op": "error",
                "code": "backpressure",
                "message": "admission queue is full; retry the attach",
            }
        if message.get("wait", True):
            work.done.wait()
            if work.error is not None:
                return {"op": "error", "code": "round_failed", "message": work.error}
        latest, pending, num_records, failed = sess.snapshot()
        return {
            "op": "attached",
            "session": name,
            "resumed": False,
            "seed": seed,
            "latest": latest,
            "pending": pending,
            "num_records": num_records,
            "failed": failed,
        }

    def _op_submit(self, message: dict) -> dict:
        if self._stopping.is_set():
            return {"op": "error", "code": "draining", "message": "daemon is draining"}
        sess = self._lookup(message)
        if sess.failed is not None:
            return {"op": "error", "code": "session_failed", "message": sess.failed}
        from repro.kg.updates import UpdateBatch
        from repro.labels.oracle import LabelOracle

        batch_id, triples, labels = protocol.decode_batch(message)
        batch = UpdateBatch(batch_id=batch_id, triples=triples)
        oracle = LabelOracle(dict(zip(triples, labels)))
        work = _Work("batch", sess, batch=batch, oracle=oracle)
        if not self._admit(work):
            return {
                "op": "error",
                "code": "backpressure",
                "message": "admission queue is full; wait for pending rounds and retry",
            }
        if not message.get("wait", True):
            _latest, pending, num_records, _failed = sess.snapshot()
            return {
                "op": "queued",
                "session": sess.id,
                "pending": pending,
                "num_records": num_records,
            }
        work.done.wait()
        if work.error is not None:
            return {"op": "error", "code": "round_failed", "message": work.error}
        return {"op": "result", "session": sess.id, **work.payload}

    def _op_estimate(self, message: dict) -> dict:
        """O(1) read of the latest cached round — the serve fast path.

        Touches the session's cached ``latest`` reference only: no queue,
        no evaluator, no sampling, regardless of what is in flight.
        """
        sess = self._lookup(message)
        latest, pending, num_records, failed = sess.snapshot()
        obs_metrics.counter("serve_estimate_cache_hits_total").inc()
        return {
            "op": "estimate",
            "session": sess.id,
            "latest": latest,
            "pending": pending,
            "num_records": num_records,
            "failed": failed,
        }

    def _op_poll(self, message: dict) -> dict:
        """Threshold polling: block until the trajectory satisfies a condition."""
        sess = self._lookup(message)
        min_records = message.get("min_records")
        moe_below = message.get("moe_below")
        if min_records is None and moe_below is None:
            raise ValueError("poll requires min_records and/or moe_below")
        timeout = min(float(message.get("timeout", 30.0)), _MAX_POLL_WAIT)

        def satisfied() -> bool:
            if sess.failed is not None:
                return True
            if min_records is not None and len(sess.trajectory) < int(min_records):
                return False
            if moe_below is not None:
                if sess.latest is None:
                    return False
                if float(sess.latest["record"].margin_of_error) > float(moe_below):
                    return False
            return True

        with sess.changed:
            met = sess.changed.wait_for(satisfied, timeout=timeout)
        latest, pending, num_records, failed = sess.snapshot()
        return {
            "op": "poll",
            "session": sess.id,
            "satisfied": bool(met and failed is None),
            "latest": latest,
            "pending": pending,
            "num_records": num_records,
            "failed": failed,
        }

    def _op_trajectory(self, message: dict) -> dict:
        sess = self._lookup(message)
        with sess.lock:
            entries = list(sess.trajectory)
            failed = sess.failed
        return {"op": "trajectory", "session": sess.id, "entries": entries, "failed": failed}

    def _op_sessions(self, message: dict) -> dict:
        with self._registry_lock:
            live = list(self._sessions.values())
        entries = []
        for sess in live:
            _latest, pending, num_records, failed = sess.snapshot()
            entries.append(
                {
                    "session": sess.id,
                    "evaluator": sess.spec["evaluator"],
                    "dataset": sess.spec.get("dataset", sess.spec.get("snapshot")),
                    "num_records": num_records,
                    "pending": pending,
                    "failed": failed,
                }
            )
        return {"op": "sessions", "entries": entries}

    def _op_detach(self, message: dict) -> dict:
        sess = self._lookup(message)
        with sess.lock:
            if sess.pending > 0:
                return {
                    "op": "error",
                    "code": "busy",
                    "message": f"session has {sess.pending} pending rounds; wait and retry",
                }
        with self._registry_lock:
            self._sessions.pop(sess.id, None)
        sess.close()
        if self._state_dir is not None:
            sessions_mod.drop_checkpoint(self._state_dir, sess.id)
        obs_metrics.gauge("serve_sessions_active").dec()
        _log.info("session_detached", session=sess.id)
        return {"op": "detached", "session": sess.id}
