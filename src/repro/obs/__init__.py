"""Observability subsystem: metrics, structured logs and trace spans.

Three dependency-free pieces, all deterministic by construction — none of
them ever touches a numpy RNG stream, so instrumentation on or off, every
sampling trajectory stays bit-identical:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram`` with
  labeled series, mergeable JSON snapshots and injectable monotonic clocks.
* :mod:`repro.obs.logging` — one JSON-lines sink per process behind
  ``get_logger(component)`` facades, off until ``configure()`` is called.
* :mod:`repro.obs.trace` — span tracer whose :class:`TraceContext` rides
  the RPC wire on ``ShardTask`` / ``ShardResult``, stitching master and
  worker logs into one cross-node trace.

``repro.obs.summarize`` renders exported snapshots for the
``repro metrics summarize`` CLI.
"""

from repro.obs.logging import configure as configure_logging
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, merge_snapshots, registry
from repro.obs.trace import TraceContext, span

__all__ = [
    "MetricsRegistry",
    "TraceContext",
    "configure_logging",
    "get_logger",
    "merge_snapshots",
    "registry",
    "span",
]
