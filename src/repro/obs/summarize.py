"""Render exported metrics snapshots as human-readable tables.

Backs ``repro metrics summarize FILE...``: each FILE is a JSON snapshot
written by :meth:`repro.obs.metrics.MetricsRegistry.export` (one per node —
the master's ``--metrics-out`` plus each worker's).  Snapshots merge via
:func:`repro.obs.metrics.merge_snapshots`; series that carry no ``node``
label inherit the exporting file's ``meta.node_id`` so per-node tables line
up across files.

Two first-class tables — per-shard draw time (from the
``sampling_shard_draw_seconds`` histogram) and per-node RPC traffic (frame /
byte / steal / drop counters) — then a catch-all listing of every remaining
series.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import merge_snapshots

__all__ = ["load_snapshot", "merge_files", "render_tables", "summarize_files"]

_SHARD_HISTOGRAM = "sampling_shard_draw_seconds"
_NODE_COUNTERS = (
    ("rpc_frames_sent_total", "frames_sent"),
    ("rpc_frames_received_total", "frames_recv"),
    ("rpc_bytes_sent_total", "bytes_sent"),
    ("rpc_bytes_received_total", "bytes_recv"),
    ("rpc_tasks_stolen_total", "steals"),
    ("rpc_node_drops_total", "drops"),
)
_NODE_COUNTER_NAMES = {name for name, _ in _NODE_COUNTERS}


def load_snapshot(path) -> dict:
    """Read one exported snapshot, tagging node-less series with its node id."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or not isinstance(payload.get("series"), list):
        raise ValueError(f"{path} is not a metrics snapshot (missing 'series' list)")
    node_id = (payload.get("meta") or {}).get("node_id")
    if node_id:
        for entry in payload["series"]:
            entry.setdefault("labels", {}).setdefault("node", str(node_id))
    return payload


def merge_files(paths) -> dict:
    """Load and merge snapshot files into one combined snapshot payload."""
    return merge_snapshots(load_snapshot(path) for path in paths)


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()
    divider = "  ".join("-" * width for width in widths)
    return "\n".join([line(headers), divider] + [line(row) for row in rows])


def _fmt_seconds(value) -> str:
    return "-" if value is None else f"{value:.4f}"


def _fmt_count(value) -> str:
    number = float(value)
    return str(int(number)) if number == int(number) else f"{number:.3f}"


def _shard_table(series: list[dict]) -> str | None:
    rows = []
    for entry in series:
        if entry["kind"] != "histogram" or entry["name"] != _SHARD_HISTOGRAM:
            continue
        labels = entry.get("labels", {})
        count = entry["count"]
        mean = entry["sum"] / count if count else None
        rows.append(
            (
                labels.get("shard", "?"),
                [
                    labels.get("shard", "?"),
                    str(count),
                    _fmt_seconds(entry["sum"]),
                    _fmt_seconds(mean),
                    _fmt_seconds(entry["min"]),
                    _fmt_seconds(entry["max"]),
                ],
            )
        )
    if not rows:
        return None
    rows.sort(key=lambda item: (len(item[0]), item[0]))
    return _table(
        ["shard", "tasks", "total_s", "mean_s", "min_s", "max_s"],
        [row for _, row in rows],
    )


def _node_table(series: list[dict]) -> str | None:
    per_node: dict[str, dict[str, float]] = {}
    for entry in series:
        if entry["kind"] != "counter" or entry["name"] not in _NODE_COUNTER_NAMES:
            continue
        node = entry.get("labels", {}).get("node", "?")
        bucket = per_node.setdefault(node, {})
        bucket[entry["name"]] = bucket.get(entry["name"], 0.0) + entry["value"]
    if not per_node:
        return None
    rows = [
        [node] + [_fmt_count(counters.get(name, 0)) for name, _ in _NODE_COUNTERS]
        for node, counters in sorted(per_node.items())
    ]
    return _table(["node"] + [column for _, column in _NODE_COUNTERS], rows)


def _other_lines(series: list[dict]) -> list[str]:
    lines = []
    for entry in sorted(series, key=lambda item: (item["name"], sorted(item["labels"].items()))):
        if entry["name"] == _SHARD_HISTOGRAM or entry["name"] in _NODE_COUNTER_NAMES:
            continue
        labels = entry.get("labels", {})
        label_text = (
            "{" + ",".join(f"{key}={value}" for key, value in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        if entry["kind"] == "histogram":
            count = entry["count"]
            mean = entry["sum"] / count if count else None
            lines.append(
                f"{entry['name']}{label_text}  count={count} sum={_fmt_seconds(entry['sum'])}"
                f" mean={_fmt_seconds(mean)} max={_fmt_seconds(entry['max'])}"
            )
        else:
            lines.append(f"{entry['name']}{label_text}  {_fmt_count(entry['value'])}")
    return lines


def render_tables(merged: dict) -> str:
    """Render one merged snapshot as the summarize report text."""
    series = merged.get("series", [])
    sections: list[str] = []
    shard = _shard_table(series)
    if shard is not None:
        sections.append("Per-shard draw time\n" + shard)
    node = _node_table(series)
    if node is not None:
        sections.append("Per-node RPC traffic\n" + node)
    other = _other_lines(series)
    if other:
        sections.append("Other series\n" + "\n".join(other))
    if not sections:
        return "(no series recorded)"
    return "\n\n".join(sections)


def summarize_files(paths) -> str:
    """Load, merge and render the given snapshot files."""
    return render_tables(merge_files(paths))
