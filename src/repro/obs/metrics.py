"""Dependency-free metrics registry: counters, gauges, histograms.

Every instrument is a *labeled series*: ``registry.counter("rpc_frames_sent_total",
node="127.0.0.1:9001")`` returns the one series for that (name, labels) pair,
creating it on first use.  Series are cheap to update (one small lock each),
safe to touch from any thread, and never touch numpy RNG streams — recording
a metric can never perturb a sampling trajectory.

Timing sources are injectable: a registry built with a fake monotonic clock
produces bit-reproducible histograms in tests, while the default uses
:func:`time.perf_counter`.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able dicts and
merge associatively across processes/nodes (:func:`merge_snapshots`):
counters and histogram buckets sum, gauges keep the last value seen,
histogram min/max widen.  :meth:`MetricsRegistry.export` writes one snapshot
(plus caller metadata) as a JSON file — the unit `repro metrics summarize`
consumes.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "registry",
    "snapshot",
    "export",
    "reset",
    "merge_snapshots",
]

#: Upper bucket bounds (seconds-ish scale) for histograms; the implicit final
#: bucket is +inf.  Chosen to span microsecond shard draws to minute-long runs.
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class _Series:
    """Base for one labeled time series."""

    __slots__ = ("name", "labels", "_lock")
    kind = "series"

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = {str(key): str(value) for key, value in labels.items()}
        self._lock = threading.Lock()

    def _base_snapshot(self) -> dict:
        return {"name": self.name, "kind": self.kind, "labels": dict(self.labels)}


class Counter(_Series):
    """Monotonically increasing value (floats allowed, e.g. cost seconds)."""

    __slots__ = ("_value",)
    kind = "counter"

    def __init__(self, name: str, labels: dict) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _snapshot(self) -> dict:
        out = self._base_snapshot()
        out["value"] = self._value
        return out


class Gauge(_Series):
    """Point-in-time value that can move both ways (e.g. window occupancy)."""

    __slots__ = ("_value",)
    kind = "gauge"

    def __init__(self, name: str, labels: dict) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _snapshot(self) -> dict:
        out = self._base_snapshot()
        out["value"] = self._value
        return out


class Histogram(_Series):
    """Counted/summed observations with fixed upper-bound buckets."""

    __slots__ = ("buckets", "_counts", "_count", "_sum", "_min", "_max", "_clock")
    kind = "histogram"

    def __init__(self, name: str, labels: dict, *, buckets=DEFAULT_BUCKETS, clock=None) -> None:
        super().__init__(name, labels)
        self.buckets = tuple(float(bound) for bound in buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None
        self._clock = clock if clock is not None else time.perf_counter

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            slot = len(self.buckets)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = index
                    break
            self._counts[slot] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    def time(self) -> "_Timer":
        """Context manager observing the elapsed clock time of its body."""
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def _snapshot(self) -> dict:
        out = self._base_snapshot()
        with self._lock:
            out.update(
                {
                    "count": self._count,
                    "sum": self._sum,
                    "min": self._min,
                    "max": self._max,
                    "bounds": list(self.buckets),
                    "bucket_counts": list(self._counts),
                }
            )
        return out


class _Timer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = None

    def __enter__(self) -> "_Timer":
        self._start = self._histogram._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(self._histogram._clock() - self._start)


class MetricsRegistry:
    """Process-local home for labeled series; snapshot/export as JSON."""

    def __init__(self, *, clock=None) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        self._lock = threading.Lock()
        self._series: dict[tuple, _Series] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs) -> _Series:
        key = (name, _label_key(labels))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = cls(name, labels, **kwargs)
                self._series[key] = series
            elif not isinstance(series, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {series.kind}, not {cls.kind}"
                )
            return series

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, *, buckets=DEFAULT_BUCKETS, **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets, clock=self.clock)

    def snapshot(self) -> dict:
        """One JSON-able snapshot of every series in this registry."""
        with self._lock:
            series = list(self._series.values())
        return {"series": [item._snapshot() for item in series]}

    def export(self, path, *, meta: dict | None = None) -> dict:
        """Write ``{"meta": ..., "series": [...]}`` to *path*; returns the dict."""
        payload = self.snapshot()
        payload["meta"] = dict(meta or {})
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return payload

    def reset(self) -> None:
        """Drop every series (tests and fresh CLI runs)."""
        with self._lock:
            self._series.clear()


def _series_merge_key(entry: dict) -> tuple:
    return (entry["name"], entry["kind"], _label_key(entry.get("labels", {})))


def merge_snapshots(snapshots) -> dict:
    """Merge snapshot dicts: counters/buckets sum, gauges last-wins, extrema widen."""
    merged: dict[tuple, dict] = {}
    for snap in snapshots:
        for entry in snap.get("series", []):
            key = _series_merge_key(entry)
            into = merged.get(key)
            if into is None:
                merged[key] = json.loads(json.dumps(entry))  # deep copy, JSON-able by contract
                continue
            kind = entry["kind"]
            if kind == "counter":
                into["value"] += entry["value"]
            elif kind == "gauge":
                into["value"] = entry["value"]
            elif kind == "histogram":
                into["count"] += entry["count"]
                into["sum"] += entry["sum"]
                if entry["min"] is not None:
                    into["min"] = (
                        entry["min"] if into["min"] is None else min(into["min"], entry["min"])
                    )
                if entry["max"] is not None:
                    into["max"] = (
                        entry["max"] if into["max"] is None else max(into["max"], entry["max"])
                    )
                if into.get("bounds") == entry.get("bounds"):
                    into["bucket_counts"] = [
                        a + b for a, b in zip(into["bucket_counts"], entry["bucket_counts"])
                    ]
    return {"series": list(merged.values())}


#: The process-default registry every instrumented layer records into.
_default = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-default registry (what the module-level helpers record into)."""
    return _default


def counter(name: str, **labels) -> Counter:
    """The default registry's counter series for ``(name, labels)``."""
    return _default.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    """The default registry's gauge series for ``(name, labels)``."""
    return _default.gauge(name, **labels)


def histogram(name: str, *, buckets=DEFAULT_BUCKETS, **labels) -> Histogram:
    """The default registry's histogram series for ``(name, labels)``."""
    return _default.histogram(name, buckets=buckets, **labels)


def snapshot() -> dict:
    """JSON-ready dump of every series in the default registry."""
    return _default.snapshot()


def export(path, *, meta: dict | None = None) -> dict:
    """Write the default registry's snapshot (plus ``meta``) to ``path``."""
    return _default.export(path, meta=meta)


def reset() -> None:
    """Drop every series in the default registry (test/benchmark scoping)."""
    _default.reset()
