"""Structured JSON-lines logging for every layer of the stack.

One process-wide sink, configured once (usually from the CLI's ``--log-json``
flag) and consumed through per-component facades::

    from repro.obs.logging import get_logger
    log = get_logger("rpc.master")
    log.info("node_drop", address=node.address, reason="connection lost")

Each record is one JSON object per line: timestamp, level, component, event
name, the configured run-wide context fields (``run_id``, ``node_id``), then
the event's own fields.  Logging is **off by default** — ``get_logger`` is
free to call at import time, every emit checks one integer level first, and
``enabled_for`` lets hot paths skip building expensive field values
entirely.  Nothing here ever touches numpy RNG streams, so enabling logs can
never move a sampling trajectory.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

__all__ = ["LEVELS", "StructLogger", "configure", "get_logger", "is_enabled", "reset"]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_OFF = 1000


class _State:
    __slots__ = ("sink", "owns_sink", "level", "context", "lock")

    def __init__(self) -> None:
        self.sink = None
        self.owns_sink = False
        self.level = _OFF
        self.context: dict = {}
        self.lock = threading.Lock()


_state = _State()


def configure(path=None, *, stream=None, level: str = "info", **context) -> None:
    """Open the JSON-lines sink and turn logging on.

    Exactly one of *path* (appended to) or *stream* (e.g. ``sys.stderr``) is
    the sink; *context* fields (``run_id=...``, ``node_id=...``) are merged
    into every subsequent record.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; expected one of {sorted(LEVELS)}")
    if (path is None) == (stream is None):
        raise ValueError("configure() needs exactly one of path= or stream=")
    with _state.lock:
        if _state.owns_sink and _state.sink is not None:
            _state.sink.close()
        if path is not None:
            target = Path(path)
            if target.parent != Path(""):
                target.parent.mkdir(parents=True, exist_ok=True)
            _state.sink = open(target, "a", encoding="utf-8")
            _state.owns_sink = True
        else:
            _state.sink = stream
            _state.owns_sink = False
        _state.level = LEVELS[level]
        _state.context = {key: value for key, value in context.items() if value is not None}


def reset() -> None:
    """Close the sink and disable logging (tests, end of CLI runs)."""
    with _state.lock:
        if _state.owns_sink and _state.sink is not None:
            try:
                _state.sink.close()
            except OSError:  # pragma: no cover - close race on teardown
                pass
        _state.sink = None
        _state.owns_sink = False
        _state.level = _OFF
        _state.context = {}


def is_enabled(level: str = "info") -> bool:
    """Whether a record at ``level`` would currently be written anywhere."""
    return LEVELS.get(level, _OFF) >= _state.level and _state.sink is not None


def _json_default(value):
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.ndarray):
            return value.tolist()
    except ImportError:  # pragma: no cover - numpy is a hard dep elsewhere
        pass
    return str(value)


class StructLogger:
    """Named facade over the process sink; safe to create at import time."""

    __slots__ = ("component",)

    def __init__(self, component: str) -> None:
        self.component = component

    def enabled_for(self, level: str) -> bool:
        """Guard for callers that build expensive log fields."""
        return is_enabled(level)

    def log(self, level: str, event: str, **fields) -> None:
        """Write one structured record; a no-op unless configured at ``level``."""
        numeric = LEVELS.get(level)
        if numeric is None:
            raise ValueError(f"unknown log level {level!r}")
        if numeric < _state.level or _state.sink is None:
            return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        record.update(_state.context)
        record.update(fields)
        line = json.dumps(record, default=_json_default, separators=(",", ":"))
        with _state.lock:
            sink = _state.sink
            if sink is None:  # reset() raced us; drop the record
                return
            try:
                sink.write(line + "\n")
                sink.flush()
            except (OSError, ValueError):  # pragma: no cover - sink went away
                pass

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


def get_logger(component: str) -> StructLogger:
    """The logging facade for ``component`` (e.g. ``"rpc.master"``).

    Cheap and import-time safe: records go nowhere until :func:`configure`
    turns the process sink on.
    """
    return StructLogger(component)
