"""Span tracer whose context rides the RPC wire.

A *trace* is one evaluation run; a *span* is one timed region inside it (a
sampling round, one shard task on a worker node).  The master opens spans
around each round, attaches the active :class:`TraceContext` to every
:class:`~repro.sampling.parallel.ShardTask` it ships, and workers open a
child span per task and echo their context back on the result — so the
JSON-lines logs of every node in the fleet share one ``trace_id`` and
stitch into a single cross-node trace.

Span and trace ids come from :func:`os.urandom` — **never** from numpy RNG
streams — and the tracer is disabled by default, so tracing on or off, every
sampling trajectory stays bit-identical.  Span events are emitted through
:mod:`repro.obs.logging` (component ``trace``, event ``span``), one line per
closed span with its duration.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.obs.logging import get_logger

__all__ = [
    "TraceContext",
    "Span",
    "enable",
    "disable",
    "enabled",
    "trace_id",
    "current",
    "span",
    "child_context",
]


@dataclass(frozen=True)
class TraceContext:
    """The (trace_id, span_id) pair that crosses process and wire boundaries."""

    trace_id: str
    span_id: str


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


_log = get_logger("trace")
_local = threading.local()
_enabled = False
_trace_id: str | None = None


def enable(trace_id: str | None = None) -> str:
    """Turn tracing on for this process; returns the active trace id."""
    global _enabled, _trace_id
    _trace_id = trace_id or _new_id(8)
    _enabled = True
    return _trace_id


def disable() -> None:
    """Turn tracing off and drop any open span stack."""
    global _enabled, _trace_id
    _enabled = False
    _trace_id = None
    _local.__dict__.pop("stack", None)


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _enabled


def trace_id() -> str | None:
    """The active trace id, or ``None`` when tracing is off."""
    return _trace_id


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current() -> TraceContext | None:
    """The innermost open span's context on this thread (None when idle/off)."""
    stack = getattr(_local, "stack", None)
    return stack[-1].context if stack else None


def child_context(parent: TraceContext) -> TraceContext:
    """A fresh span id under *parent*'s trace — works even when tracing is
    locally disabled, so workers always echo a usable context back."""
    return TraceContext(trace_id=parent.trace_id, span_id=_new_id(4))


class Span:
    """One timed region; use via ``with span("sampling.round", round=3):``."""

    __slots__ = ("name", "context", "parent_id", "fields", "_start")

    def __init__(self, name: str, context: TraceContext, parent_id: str | None, fields: dict):
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.fields = fields
        self._start = None

    def __enter__(self) -> "Span":
        _stack().append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        _log.debug(
            "span",
            name=self.name,
            trace_id=self.context.trace_id,
            span_id=self.context.span_id,
            parent_id=self.parent_id,
            duration=round(duration, 6),
            ok=exc_type is None,
            **self.fields,
        )


class _NullSpan:
    """Zero-cost stand-in when tracing is off; ``.context`` is None."""

    __slots__ = ()
    context = None
    parent_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, *, parent: TraceContext | None = None, **fields):
    """Open a span under *parent* (or the innermost open span, or the root).

    Returns a context manager; when tracing is disabled, a shared no-op span
    whose ``context`` is None — callers can unconditionally attach
    ``span.context`` to outgoing tasks.
    """
    if parent is not None:
        context = child_context(parent)
        return Span(name, context, parent.span_id, fields)
    if not _enabled:
        return _NULL_SPAN
    enclosing = current()
    if enclosing is not None:
        return Span(name, child_context(enclosing), enclosing.span_id, fields)
    return Span(name, TraceContext(trace_id=_trace_id, span_id=_new_id(4)), None, fields)
