"""Knowledge graph with an entity-cluster index over a pluggable storage backend.

The sampling designs in the paper operate on two views of the same graph:

* a flat population of triples (used by simple random sampling), and
* a population of *entity clusters* ``G[e] = {t : t.subject == e}`` (used by
  all cluster-sampling designs and by the annotation cost model).

:class:`KnowledgeGraph` maintains both views but no longer owns the physical
representation: storage is delegated to a
:class:`~repro.storage.backend.StorageBackend`.  The default
:class:`~repro.storage.memory.InMemoryStore` keeps the original
object-per-triple layout (cheap incremental ``add``); the columnar backend
(:class:`~repro.storage.columnar.ColumnarStore`) packs the graph into
interned ``int32`` NumPy columns with a CSR cluster index, which scales to
millions of triples and can be persisted/memory-mapped through
:class:`~repro.storage.snapshot.SnapshotStore`.

Two access styles coexist:

* the original object API (``cluster``, ``sample_cluster_triples``, …),
  which materialises :class:`~repro.kg.triple.Triple` objects and is what
  annotation flows need;
* a *position* API (``cluster_positions``, ``sample_cluster_positions``,
  ``sample_cluster_positions_batch``, ``labels_for_positions``), which works
  on integer triple positions only and lets the samplers' draw/estimate
  loops avoid allocating per-draw Triple tuples entirely.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.kg.triple import Triple
from repro.storage.backend import StorageBackend, make_backend

__all__ = ["EntityCluster", "KnowledgeGraph", "sample_csr_positions_batch"]


@dataclass(frozen=True)
class EntityCluster:
    """All triples of one subject entity, as a lightweight view.

    Attributes
    ----------
    entity_id:
        The shared subject id.
    triples:
        The triples belonging to the cluster, in insertion order.
    """

    entity_id: str
    triples: tuple[Triple, ...]

    @property
    def size(self) -> int:
        """Number of triples in the cluster (``M_i`` in the paper)."""
        return len(self.triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self.triples)

    def __len__(self) -> int:
        return len(self.triples)


def _floyd_sample_batch(sizes: np.ndarray, cap: int, rng: np.random.Generator) -> np.ndarray:
    """Sample ``cap`` distinct within-cluster offsets for each of many clusters.

    Vectorised Floyd's algorithm: iteration ``j`` draws, for every cluster at
    once, a uniform offset in ``[0, size - cap + j]``; a draw that collides
    with an earlier pick for the same cluster is replaced by ``size - cap +
    j`` itself, which cannot have been picked before.  Each row is a uniform
    without-replacement ``cap``-subset of ``range(size)`` (as a set; the
    within-row order is not uniform, which the estimators never observe).

    ``sizes`` must all be strictly greater than ``cap``.
    """
    base = np.asarray(sizes, dtype=np.int64) - cap
    picks = np.empty((base.shape[0], cap), dtype=np.int64)
    for j in range(cap):
        t = rng.integers(0, base + j + 1)
        if j:
            collision = (picks[:, :j] == t[:, None]).any(axis=1)
            t = np.where(collision, base + j, t)
        picks[:, j] = t
    return picks


def sample_csr_positions_batch(
    offsets: np.ndarray,
    positions: np.ndarray,
    rows: np.ndarray,
    cap: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Second-stage sample of up to ``cap`` positions from each CSR cluster.

    The vectorised core behind every position draw: cluster ``rows[i]`` owns
    ``positions[offsets[rows[i]]:offsets[rows[i] + 1]]``; clusters no larger
    than ``cap`` contribute their full (zero-copy) slice, larger clusters are
    subsampled without replacement with one batched Floyd pass.  Works on any
    CSR pair — a graph backend's index or an appended update segment — so the
    evolving evaluators consume the same random stream on every backend.
    """
    rows = np.asarray(rows, dtype=np.int64)
    out: list[np.ndarray | None] = [None] * rows.shape[0]
    starts = offsets[rows]
    sizes = offsets[rows + 1] - starts
    large = sizes > cap
    for i in np.flatnonzero(~large):
        start = int(starts[i])
        out[i] = positions[start : start + int(sizes[i])]
    large_indices = np.flatnonzero(large)
    if large_indices.size:
        picks = _floyd_sample_batch(sizes[large_indices], cap, rng)
        chosen = positions[starts[large_indices][:, None] + picks]
        for j, i in enumerate(large_indices):
            out[i] = chosen[j]
    return out  # type: ignore[return-value]


class KnowledgeGraph:
    """A set of triples indexed by entity cluster.

    Parameters
    ----------
    triples:
        Initial triples.  Duplicates (exact ``(s, p, o)`` repeats) are ignored
        so the graph behaves as a set, matching the paper's model ``G = {t}``.
    name:
        Optional human-readable name used in reports.
    backend:
        Physical storage: a :class:`~repro.storage.backend.StorageBackend`
        instance (possibly pre-populated, e.g. from a snapshot), a backend
        name (``"memory"`` or ``"columnar"``), or ``None`` for the default
        in-memory store.

    Examples
    --------
    >>> kg = KnowledgeGraph([Triple("e1", "bornIn", "NYC")], name="toy")
    >>> kg.add(Triple("e1", "plays", "basketball"))
    True
    >>> kg.num_entities, kg.num_triples
    (1, 2)
    >>> kg.cluster("e1").size
    2
    """

    def __init__(
        self,
        triples: Iterable[Triple] = (),
        name: str = "kg",
        backend: StorageBackend | str | None = None,
    ) -> None:
        self.name = name
        if backend is None:
            backend = make_backend("memory")
        elif isinstance(backend, str):
            backend = make_backend(backend)
        self._backend: StorageBackend = backend
        self._triples_view: tuple[Triple, ...] | None = None
        self._entity_ids_view: tuple[str, ...] | None = None
        for triple in triples:
            self.add(triple)

    @property
    def backend(self) -> StorageBackend:
        """The storage backend this graph delegates to."""
        return self._backend

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        """Insert ``triple``; return ``True`` if it was not already present."""
        added = self._backend.add(triple)
        if added:
            self._triples_view = None
            self._entity_ids_view = None
        return added

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return the number of new triples added."""
        return sum(self.add_batch(triples))

    def add_batch(self, triples: Iterable[Triple]) -> list[bool]:
        """Insert many triples; return one added-flag per input triple.

        Delegates to the backend's bulk path (vectorised dedup on the delta
        store) and invalidates the cached views once instead of per triple.
        """
        flags = self._backend.add_batch(triples)
        if any(flags):
            self._triples_view = None
            self._entity_ids_view = None
        return flags

    # ------------------------------------------------------------------ #
    # Size / membership
    # ------------------------------------------------------------------ #
    @property
    def num_triples(self) -> int:
        """Total number of triples (``M`` in the paper)."""
        return self._backend.num_triples

    @property
    def num_entities(self) -> int:
        """Number of distinct entity clusters (``N`` in the paper)."""
        return self._backend.num_entities

    @property
    def average_cluster_size(self) -> float:
        """``M / N``, the average cluster size reported in Table 3."""
        if self.num_entities == 0:
            return 0.0
        return self.num_triples / self.num_entities

    def __len__(self) -> int:
        return self.num_triples

    def __contains__(self, triple: Triple) -> bool:
        return self._backend.contains(triple)

    def __iter__(self) -> Iterator[Triple]:
        return self._backend.iter_triples()

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def triples(self) -> Sequence[Triple]:
        """All triples in insertion order (cached read-only view).

        The tuple is materialised on first access and reused until the next
        :meth:`add` invalidates it, so repeated reads are O(1) instead of the
        O(M) copy the seed implementation made on every access.
        """
        if self._triples_view is None:
            self._triples_view = tuple(self._backend.iter_triples())
        return self._triples_view

    def triple_at(self, position: int) -> Triple:
        """Return the triple stored at ``position`` (insertion order)."""
        return self._backend.triple_at(position)

    def triples_at(self, positions: Sequence[int] | np.ndarray) -> list[Triple]:
        """Materialise the triples at the given positions, in the given order."""
        return self._backend.triples_at(positions)

    @property
    def entity_ids(self) -> Sequence[str]:
        """All subject entity ids, in first-seen order (cached view)."""
        if self._entity_ids_view is None:
            self._entity_ids_view = tuple(self._backend.entity_ids())
        return self._entity_ids_view

    def cluster(self, entity_id: str) -> EntityCluster:
        """Return the entity cluster ``G[e]`` for ``entity_id``.

        Raises
        ------
        KeyError
            If the entity id has no triples in this graph.
        """
        positions = self._backend.cluster_positions(entity_id)
        return EntityCluster(entity_id, tuple(self._backend.triples_at(positions)))

    def clusters(self) -> Iterator[EntityCluster]:
        """Iterate over all entity clusters in first-seen order."""
        for entity_id in self.entity_ids:
            yield self.cluster(entity_id)

    def cluster_size(self, entity_id: str) -> int:
        """Return ``M_i`` for the given entity id."""
        return self._backend.cluster_size(entity_id)

    def cluster_sizes(self) -> Mapping[str, int]:
        """Return a mapping of entity id to cluster size."""
        sizes = self._backend.cluster_size_array()
        return {entity: int(size) for entity, size in zip(self.entity_ids, sizes)}

    def cluster_size_array(self) -> np.ndarray:
        """Return cluster sizes as an ``int64`` array aligned with :attr:`entity_ids`."""
        return self._backend.cluster_size_array()

    def has_entity(self, entity_id: str) -> bool:
        """Return whether any triple has ``entity_id`` as its subject."""
        return self._backend.has_entity(entity_id)

    # ------------------------------------------------------------------ #
    # Position API (allocation-free cluster views)
    # ------------------------------------------------------------------ #
    def cluster_positions(self, entity_id: str) -> np.ndarray:
        """Positions of the entity's triples (zero-copy on columnar backends)."""
        return self._backend.cluster_positions(entity_id)

    def entity_row(self, entity_id: str) -> int:
        """Row index of ``entity_id`` in :attr:`entity_ids` order."""
        return self._backend.entity_row(entity_id)

    def entity_id_of_row(self, row: int) -> str:
        """Subject id of cluster ``row`` (inverse of :meth:`entity_row`)."""
        return self._backend.entity_id_of_row(row)

    def cluster_positions_by_row(self, row: int) -> np.ndarray:
        """Positions of cluster ``row``'s triples (zero-copy on columnar backends)."""
        return self._backend.cluster_positions_by_row(row)

    def labels_for_positions(
        self,
        positions: Sequence[int] | np.ndarray,
        labels: Mapping[Triple, bool] | np.ndarray,
    ) -> np.ndarray:
        """Resolve correctness labels for triple positions as a boolean array.

        ``labels`` may be a position-aligned boolean array (fancy-indexed,
        no Triple objects are created) or a Triple-keyed mapping (each
        position is materialised and looked up — the compatibility path).
        """
        if isinstance(labels, np.ndarray):
            return labels[np.asarray(positions, dtype=np.int64)]
        return np.fromiter(
            (labels[t] for t in self._backend.triples_at(positions)),
            dtype=bool,
            count=len(positions),
        )

    def position_label_array(
        self, labels: Mapping[Triple, bool], default: bool = False
    ) -> np.ndarray:
        """Convert a Triple-keyed label mapping into a position-aligned array.

        One O(M) pass; afterwards :meth:`labels_for_positions` resolves labels
        without touching Triple objects at all.
        """
        return np.fromiter(
            (labels.get(t, default) for t in self._backend.iter_triples()),
            dtype=bool,
            count=self.num_triples,
        )

    # ------------------------------------------------------------------ #
    # Sampling helpers
    # ------------------------------------------------------------------ #
    def sample_triples(self, count: int, rng: np.random.Generator) -> list[Triple]:
        """Draw ``count`` triples uniformly at random without replacement."""
        if count > self.num_triples:
            raise ValueError(f"cannot draw {count} triples from a graph with {self.num_triples}")
        positions = rng.choice(self.num_triples, size=count, replace=False)
        return self._backend.triples_at(positions)

    def sample_cluster_positions(
        self, entity_id: str, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``min(count, M_i)`` triple positions without replacement from one cluster.

        Consumes the random stream exactly like the seed implementation of
        :meth:`sample_cluster_triples` (one ``rng.choice`` call), so draws are
        bit-for-bit reproducible across storage backends.
        """
        positions = self._backend.cluster_positions(entity_id)
        take = min(count, len(positions))
        chosen = rng.choice(len(positions), size=take, replace=False)
        return np.asarray(positions)[chosen]

    def sample_cluster_triples(
        self, entity_id: str, count: int, rng: np.random.Generator
    ) -> list[Triple]:
        """Draw ``min(count, M_i)`` triples without replacement from one cluster."""
        return self._backend.triples_at(self.sample_cluster_positions(entity_id, count, rng))

    def sample_cluster_positions_batch(
        self,
        rows: np.ndarray,
        cap: int,
        rng: np.random.Generator,
        executor=None,
    ) -> list[np.ndarray]:
        """Second-stage sample of up to ``cap`` positions from each cluster row.

        The vectorised fast path behind the designs' position draws: clusters
        no larger than ``cap`` contribute their full (zero-copy) position
        slice; larger clusters are subsampled without replacement with a
        batched Floyd pass (``cap`` vectorised RNG calls for the whole batch
        instead of one ``rng.choice`` per cluster).  The random stream
        therefore differs from :meth:`sample_cluster_positions`; within one
        backend it is still fully deterministic under a fixed seed.

        With ``executor`` (a
        :class:`~repro.sampling.parallel.ParallelSamplingExecutor`) the
        second stage fans out across the executor's shard plan instead: one
        seed is drawn from ``rng`` and each shard subsamples its clusters
        under its own spawned stream, so the result is deterministic for a
        given plan regardless of worker count or scheduling (but consumes
        the random stream differently from the single-stream path).
        """
        if executor is not None:
            entropy = int(rng.integers(np.iinfo(np.int64).max))
            return executor.sample_rows(rows, cap, entropy)
        rows = np.asarray(rows, dtype=np.int64)
        csr = self._backend.csr_arrays()
        if csr is None:
            out: list[np.ndarray | None] = [None] * rows.shape[0]
            for i, row in enumerate(rows):
                positions = np.asarray(self._backend.cluster_positions_by_row(int(row)))
                if positions.shape[0] <= cap:
                    out[i] = positions
                else:
                    out[i] = positions[rng.choice(positions.shape[0], size=cap, replace=False)]
            return out  # type: ignore[return-value]
        offsets, positions = csr
        return sample_csr_positions_batch(offsets, positions, rows, cap, rng)

    def shard_plan(self, num_shards: int) -> "ShardPlan":
        """Split this graph's CSR cluster index into balanced contiguous shards.

        See :class:`~repro.storage.shard.ShardPlan`; the parallel draw engine
        (:mod:`repro.sampling.parallel`) consumes the plan.
        """
        from repro.storage.shard import ShardPlan

        return ShardPlan.for_graph(self, num_shards)

    # ------------------------------------------------------------------ #
    # Storage conversion / persistence
    # ------------------------------------------------------------------ #
    def to_columnar(self, name: str | None = None) -> "KnowledgeGraph":
        """Return this graph re-packed onto a columnar backend."""
        from repro.storage.columnar import ColumnarStore

        if isinstance(self._backend, ColumnarStore):
            return self
        store = ColumnarStore.from_graph(self._backend.iter_triples())
        store.finalize()
        return KnowledgeGraph(name=name if name is not None else self.name, backend=store)

    def to_sqlite(
        self, path: str | Path | None = None, name: str | None = None
    ) -> "KnowledgeGraph":
        """Return this graph re-packed onto a disk-resident SQLite backend.

        Routes through the columnar representation so vocabulary ids, triple
        positions and entity rows — and therefore every seeded draw — are
        bit-identical to the columnar backend's.  ``path=None`` uses a
        private temporary database file.
        """
        from repro.storage.sqlite import SqliteStore

        if isinstance(self._backend, SqliteStore):
            return self
        graph_name = name if name is not None else self.name
        columnar = self.to_columnar()
        store = SqliteStore.from_columnar(columnar.backend, path=path, name=graph_name)
        return KnowledgeGraph(name=graph_name, backend=store)

    def save_snapshot(
        self,
        path: str | Path,
        compress: bool = False,
        labels: np.ndarray | None = None,
        annotated: np.ndarray | None = None,
    ) -> Path:
        """Persist the graph via :class:`~repro.storage.snapshot.SnapshotStore`.

        ``labels`` / ``annotated`` are optional position-aligned boolean
        arrays saved next to the columns (snapshot format v2), so an
        evaluation or monitoring run can stop and resume without
        re-annotating.
        """
        from repro.storage.snapshot import SnapshotStore

        return SnapshotStore(path).save(
            self, name=self.name, compress=compress, labels=labels, annotated=annotated
        )

    @classmethod
    def from_snapshot(
        cls, path: str | Path, mmap: bool = False, name: str | None = None
    ) -> "KnowledgeGraph":
        """Reopen a snapshot as a columnar-backed graph (optionally memory-mapped)."""
        from repro.storage.snapshot import SnapshotStore

        return SnapshotStore(path).load_graph(mmap=mmap, name=name)

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def subset(self, entity_ids: Iterable[str], name: str | None = None) -> "KnowledgeGraph":
        """Return a new graph containing only the clusters in ``entity_ids``."""
        subset_name = name if name is not None else f"{self.name}-subset"
        result = KnowledgeGraph(name=subset_name)
        for entity_id in entity_ids:
            if not self._backend.has_entity(entity_id):
                continue
            for triple in self._backend.triples_at(self._backend.cluster_positions(entity_id)):
                result.add(triple)
        return result

    def random_triple_subset(
        self, fraction: float, rng: np.random.Generator, name: str | None = None
    ) -> "KnowledgeGraph":
        """Return a new graph with a uniformly random ``fraction`` of the triples."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(round(fraction * self.num_triples)))
        subset_name = name if name is not None else f"{self.name}-{fraction:.0%}"
        return KnowledgeGraph(self.sample_triples(count, rng), name=subset_name)

    def copy(self, name: str | None = None) -> "KnowledgeGraph":
        """Return a shallow copy of this graph (triples are immutable).

        The copy uses a fresh backend of the same kind as this graph's.
        """
        return KnowledgeGraph(
            self._backend.iter_triples(),
            name=name if name is not None else self.name,
            backend=type(self._backend)(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KnowledgeGraph(name={self.name!r}, entities={self.num_entities}, "
            f"triples={self.num_triples})"
        )
