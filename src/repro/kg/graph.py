"""In-memory knowledge graph with an entity-cluster index.

The sampling designs in the paper operate on two views of the same graph:

* a flat population of triples (used by simple random sampling), and
* a population of *entity clusters* ``G[e] = {t : t.subject == e}`` (used by
  all cluster-sampling designs and by the annotation cost model).

:class:`KnowledgeGraph` maintains both views.  Triples are stored in insertion
order; the cluster index maps each subject id to the list of triple positions
belonging to it, so cluster lookups, cluster sizes and per-cluster sampling are
all O(cluster size) or better.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.kg.triple import Triple

__all__ = ["EntityCluster", "KnowledgeGraph"]


@dataclass(frozen=True)
class EntityCluster:
    """All triples of one subject entity, as a lightweight view.

    Attributes
    ----------
    entity_id:
        The shared subject id.
    triples:
        The triples belonging to the cluster, in insertion order.
    """

    entity_id: str
    triples: tuple[Triple, ...]

    @property
    def size(self) -> int:
        """Number of triples in the cluster (``M_i`` in the paper)."""
        return len(self.triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self.triples)

    def __len__(self) -> int:
        return len(self.triples)


class KnowledgeGraph:
    """A set of triples indexed by entity cluster.

    Parameters
    ----------
    triples:
        Initial triples.  Duplicates (exact ``(s, p, o)`` repeats) are ignored
        so the graph behaves as a set, matching the paper's model ``G = {t}``.
    name:
        Optional human-readable name used in reports.

    Examples
    --------
    >>> kg = KnowledgeGraph([Triple("e1", "bornIn", "NYC")], name="toy")
    >>> kg.add(Triple("e1", "plays", "basketball"))
    True
    >>> kg.num_entities, kg.num_triples
    (1, 2)
    >>> kg.cluster("e1").size
    2
    """

    def __init__(self, triples: Iterable[Triple] = (), name: str = "kg") -> None:
        self.name = name
        self._triples: list[Triple] = []
        self._triple_set: set[tuple[str, str, str]] = set()
        self._cluster_index: dict[str, list[int]] = {}
        for triple in triples:
            self.add(triple)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        """Insert ``triple``; return ``True`` if it was not already present."""
        key = triple.as_tuple()
        if key in self._triple_set:
            return False
        self._triple_set.add(key)
        position = len(self._triples)
        self._triples.append(triple)
        self._cluster_index.setdefault(triple.subject, []).append(position)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return the number of new triples added."""
        return sum(1 for t in triples if self.add(t))

    # ------------------------------------------------------------------ #
    # Size / membership
    # ------------------------------------------------------------------ #
    @property
    def num_triples(self) -> int:
        """Total number of triples (``M`` in the paper)."""
        return len(self._triples)

    @property
    def num_entities(self) -> int:
        """Number of distinct entity clusters (``N`` in the paper)."""
        return len(self._cluster_index)

    @property
    def average_cluster_size(self) -> float:
        """``M / N``, the average cluster size reported in Table 3."""
        if not self._cluster_index:
            return 0.0
        return self.num_triples / self.num_entities

    def __len__(self) -> int:
        return self.num_triples

    def __contains__(self, triple: Triple) -> bool:
        return triple.as_tuple() in self._triple_set

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def triples(self) -> Sequence[Triple]:
        """All triples in insertion order (read-only view)."""
        return tuple(self._triples)

    def triple_at(self, position: int) -> Triple:
        """Return the triple stored at ``position`` (insertion order)."""
        return self._triples[position]

    @property
    def entity_ids(self) -> Sequence[str]:
        """All subject entity ids, in first-seen order."""
        return tuple(self._cluster_index.keys())

    def cluster(self, entity_id: str) -> EntityCluster:
        """Return the entity cluster ``G[e]`` for ``entity_id``.

        Raises
        ------
        KeyError
            If the entity id has no triples in this graph.
        """
        positions = self._cluster_index[entity_id]
        return EntityCluster(entity_id, tuple(self._triples[i] for i in positions))

    def clusters(self) -> Iterator[EntityCluster]:
        """Iterate over all entity clusters in first-seen order."""
        for entity_id in self._cluster_index:
            yield self.cluster(entity_id)

    def cluster_size(self, entity_id: str) -> int:
        """Return ``M_i`` for the given entity id."""
        return len(self._cluster_index[entity_id])

    def cluster_sizes(self) -> Mapping[str, int]:
        """Return a mapping of entity id to cluster size."""
        return {entity: len(positions) for entity, positions in self._cluster_index.items()}

    def cluster_size_array(self) -> np.ndarray:
        """Return cluster sizes as an ``int64`` array aligned with :attr:`entity_ids`."""
        return np.array([len(p) for p in self._cluster_index.values()], dtype=np.int64)

    def has_entity(self, entity_id: str) -> bool:
        """Return whether any triple has ``entity_id`` as its subject."""
        return entity_id in self._cluster_index

    # ------------------------------------------------------------------ #
    # Sampling helpers
    # ------------------------------------------------------------------ #
    def sample_triples(self, count: int, rng: np.random.Generator) -> list[Triple]:
        """Draw ``count`` triples uniformly at random without replacement."""
        if count > self.num_triples:
            raise ValueError(
                f"cannot draw {count} triples from a graph with {self.num_triples}"
            )
        positions = rng.choice(self.num_triples, size=count, replace=False)
        return [self._triples[int(i)] for i in positions]

    def sample_cluster_triples(
        self, entity_id: str, count: int, rng: np.random.Generator
    ) -> list[Triple]:
        """Draw ``min(count, M_i)`` triples without replacement from one cluster."""
        positions = self._cluster_index[entity_id]
        take = min(count, len(positions))
        chosen = rng.choice(len(positions), size=take, replace=False)
        return [self._triples[positions[int(i)]] for i in chosen]

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def subset(self, entity_ids: Iterable[str], name: str | None = None) -> "KnowledgeGraph":
        """Return a new graph containing only the clusters in ``entity_ids``."""
        subset_name = name if name is not None else f"{self.name}-subset"
        result = KnowledgeGraph(name=subset_name)
        for entity_id in entity_ids:
            for position in self._cluster_index.get(entity_id, ()):
                result.add(self._triples[position])
        return result

    def random_triple_subset(
        self, fraction: float, rng: np.random.Generator, name: str | None = None
    ) -> "KnowledgeGraph":
        """Return a new graph with a uniformly random ``fraction`` of the triples."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(round(fraction * self.num_triples)))
        subset_name = name if name is not None else f"{self.name}-{fraction:.0%}"
        return KnowledgeGraph(self.sample_triples(count, rng), name=subset_name)

    def copy(self, name: str | None = None) -> "KnowledgeGraph":
        """Return a shallow copy of this graph (triples are immutable)."""
        return KnowledgeGraph(self._triples, name=name if name is not None else self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KnowledgeGraph(name={self.name!r}, entities={self.num_entities}, "
            f"triples={self.num_triples})"
        )
