"""The atomic unit of a knowledge graph: an RDF-style triple.

The paper (Section 2.1) models a knowledge graph as a set of
``(subject, predicate, object)`` triples where the subject is always an entity
id and the object is either another entity id (*entity property*) or an atomic
literal such as a date or a number (*data property*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Triple"]


@dataclass(frozen=True, slots=True)
class Triple:
    """An immutable ``(subject, predicate, object)`` fact.

    Parameters
    ----------
    subject:
        The entity id of the subject.  All triples sharing a subject form an
        *entity cluster* (Section 2.1 of the paper).
    predicate:
        The relation name.
    obj:
        Either an entity id (entity property) or an atomic literal rendered as
        a string (data property).
    is_entity_object:
        ``True`` when the object refers to another entity id rather than an
        atomic literal.  This distinction only matters for annotation-cost
        modelling (identifying an entity object may take extra effort) and for
        the KGEval coupling graph.
    """

    subject: str
    predicate: str
    obj: str
    is_entity_object: bool = field(default=False, compare=False)

    def as_tuple(self) -> tuple[str, str, str]:
        """Return the bare ``(subject, predicate, object)`` tuple."""
        return (self.subject, self.predicate, self.obj)

    def with_subject(self, subject: str) -> "Triple":
        """Return a copy of this triple with a different subject id."""
        return Triple(subject, self.predicate, self.obj, self.is_entity_object)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.subject}, {self.predicate}, {self.obj})"
