"""Plain-text I/O for knowledge graphs and label files.

Two interchange formats are supported:

* **Triple TSV** — one triple per line, tab-separated
  ``subject<TAB>predicate<TAB>object``.  This is the format the NELL and YAGO
  evaluation samples of Ojha & Talukdar (2017) are distributed in.
* **Labelled TSV** — the same with a fourth column containing ``1``/``0`` (or
  ``true``/``false``) for triple correctness.  Loading a labelled file yields
  both a :class:`~repro.kg.graph.KnowledgeGraph` and a mapping of triple to
  label which can back a :class:`~repro.labels.oracle.LabelOracle`.

These loaders let the harness run against the real annotated NELL/YAGO files
when they are available; the default experiments use synthetic equivalents
from :mod:`repro.generators`.

For large files, :func:`read_triples_tsv` accepts ``backend="columnar"``,
which routes through the streaming ingest path
(:mod:`repro.storage.ingest`): fields are interned on the fly into the
columnar store's ``int32`` buffers and no intermediate
:class:`~repro.kg.triple.Triple` objects are built.  N-Triples files can be
loaded the same way via :func:`repro.storage.ingest.ingest_nt`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple

__all__ = [
    "read_triples_tsv",
    "write_triples_tsv",
    "read_labelled_tsv",
    "write_labelled_tsv",
]

_TRUE_TOKENS = {"1", "true", "t", "yes", "correct"}
_FALSE_TOKENS = {"0", "false", "f", "no", "incorrect"}


def _parse_label(token: str, line_number: int) -> bool:
    lowered = token.strip().lower()
    if lowered in _TRUE_TOKENS:
        return True
    if lowered in _FALSE_TOKENS:
        return False
    raise ValueError(f"line {line_number}: unrecognised label token {token!r}")


def _iter_data_lines(path: Path) -> Iterator[tuple[int, str]]:
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            yield line_number, line


def read_triples_tsv(
    path: str | Path, name: str | None = None, backend: str = "memory"
) -> KnowledgeGraph:
    """Load a knowledge graph from a triple TSV file.

    Lines that are empty or start with ``#`` are skipped.

    Parameters
    ----------
    path, name:
        File to read and optional graph name (defaults to the file stem).
    backend:
        ``"memory"`` (default) builds the object-backed graph;
        ``"columnar"`` streams the file straight into a columnar store
        without materialising intermediate Triple objects.  Both produce the
        same triple set in the same order.

    Raises
    ------
    ValueError
        If a line does not have at least three tab-separated fields.
    """
    path = Path(path)
    if backend == "columnar":
        from repro.storage.ingest import ingest_tsv

        return ingest_tsv(path, name=name)
    if backend != "memory":
        raise ValueError(f"unknown backend {backend!r}; choose 'memory' or 'columnar'")
    graph = KnowledgeGraph(name=name if name is not None else path.stem)
    for line_number, line in _iter_data_lines(path):
        fields = line.split("\t")
        if len(fields) < 3:
            raise ValueError(f"line {line_number}: expected >= 3 columns, got {len(fields)}")
        graph.add(Triple(fields[0], fields[1], fields[2]))
    return graph


def write_triples_tsv(graph: KnowledgeGraph | Iterable[Triple], path: str | Path) -> int:
    """Write triples to a TSV file; return the number of lines written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for triple in graph:
            handle.write(f"{triple.subject}\t{triple.predicate}\t{triple.obj}\n")
            count += 1
    return count


def read_labelled_tsv(
    path: str | Path, name: str | None = None
) -> tuple[KnowledgeGraph, dict[Triple, bool]]:
    """Load a labelled TSV file; return the graph and a triple-to-label mapping.

    Raises
    ------
    ValueError
        If a line does not have at least four columns or has an unparseable
        label token.
    """
    path = Path(path)
    graph = KnowledgeGraph(name=name if name is not None else path.stem)
    labels: dict[Triple, bool] = {}
    for line_number, line in _iter_data_lines(path):
        fields = line.split("\t")
        if len(fields) < 4:
            raise ValueError(f"line {line_number}: expected 4 columns, got {len(fields)}")
        triple = Triple(fields[0], fields[1], fields[2])
        graph.add(triple)
        labels[triple] = _parse_label(fields[3], line_number)
    return graph, labels


def write_labelled_tsv(labels: dict[Triple, bool], path: str | Path) -> int:
    """Write a triple-to-label mapping to a labelled TSV file."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for triple, label in labels.items():
            value = "1" if label else "0"
            handle.write(f"{triple.subject}\t{triple.predicate}\t{triple.obj}\t{value}\n")
            count += 1
    return count
