"""Cluster-level statistics of a knowledge graph.

These helpers back two parts of the reproduction:

* Table 3 (dataset characteristics: number of entities, triples, average
  cluster size), via :func:`cluster_size_summary`;
* Figure 3 (correlation between entity accuracy and cluster size), via
  :func:`entity_accuracy_by_size`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph

__all__ = [
    "ClusterSizeSummary",
    "cluster_size_summary",
    "entity_accuracy_by_size",
    "size_accuracy_correlation",
]


@dataclass(frozen=True)
class ClusterSizeSummary:
    """Summary of the cluster-size distribution of a knowledge graph."""

    num_entities: int
    num_triples: int
    mean_size: float
    median_size: float
    max_size: int
    min_size: int
    std_size: float

    def as_row(self) -> dict[str, float | int]:
        """Return the summary as a flat dict suitable for tabular reports."""
        return {
            "num_entities": self.num_entities,
            "num_triples": self.num_triples,
            "mean_size": self.mean_size,
            "median_size": self.median_size,
            "max_size": self.max_size,
            "min_size": self.min_size,
            "std_size": self.std_size,
        }


def cluster_size_summary(graph: KnowledgeGraph) -> ClusterSizeSummary:
    """Compute the cluster-size distribution summary for ``graph``."""
    sizes = graph.cluster_size_array()
    if sizes.size == 0:
        return ClusterSizeSummary(0, 0, 0.0, 0.0, 0, 0, 0.0)
    return ClusterSizeSummary(
        num_entities=int(sizes.size),
        num_triples=int(sizes.sum()),
        mean_size=float(sizes.mean()),
        median_size=float(np.median(sizes)),
        max_size=int(sizes.max()),
        min_size=int(sizes.min()),
        std_size=float(sizes.std(ddof=0)),
    )


def entity_accuracy_by_size(graph: KnowledgeGraph, labels: dict) -> list[tuple[str, int, float]]:
    """Return ``(entity_id, cluster_size, entity_accuracy)`` for each cluster.

    ``labels`` maps each :class:`~repro.kg.triple.Triple` to a boolean
    correctness value; entity accuracy is the fraction of correct triples in
    the cluster (the y-axis of Figure 3).

    Raises
    ------
    KeyError
        If a triple of the graph is missing from ``labels``.
    """
    rows: list[tuple[str, int, float]] = []
    for cluster in graph.clusters():
        correct = sum(1 for triple in cluster if labels[triple])
        rows.append((cluster.entity_id, cluster.size, correct / cluster.size))
    return rows


def size_accuracy_correlation(graph: KnowledgeGraph, labels: dict) -> float:
    """Pearson correlation between cluster size and entity accuracy.

    Returns ``0.0`` when either variable is constant (correlation undefined),
    which happens e.g. for a perfectly accurate KG.
    """
    rows = entity_accuracy_by_size(graph, labels)
    sizes = np.array([size for _, size, _ in rows], dtype=float)
    accuracies = np.array([acc for _, _, acc in rows], dtype=float)
    if sizes.size < 2 or np.isclose(sizes.std(), 0.0) or np.isclose(accuracies.std(), 0.0):
        return 0.0
    return float(np.corrcoef(sizes, accuracies)[0, 1])
