"""Append-only evolution of a knowledge graph.

Section 2.1 of the paper models KG evolution as a sequence of triple-level
insertions that arrive in batches.  A batch ``Δ`` is clustered by subject id
into per-entity insertion sets ``Δ_e``; the evolved graph is ``G + Δ``.

Section 6.1 additionally treats every ``Δ_e`` as a *new, independent cluster*
even when the entity already exists in the base graph, so that cluster weights
stay constant for weighted reservoir sampling.  :class:`UpdateBatch` therefore
exposes its per-entity insertion sets with batch-scoped cluster keys.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.kg.graph import EntityCluster, KnowledgeGraph
from repro.kg.triple import Triple

__all__ = ["UpdateBatch", "EvolvingKnowledgeGraph"]


@dataclass(frozen=True)
class UpdateBatch:
    """A batch ``Δ`` of triple insertions.

    Parameters
    ----------
    batch_id:
        Identifier of the batch (e.g. ``"delta-3"``); used to derive
        batch-scoped cluster keys so insertions for an existing entity form a
        fresh cluster, as required by the reservoir scheme of Section 6.1.
    triples:
        The inserted triples.
    """

    batch_id: str
    triples: tuple[Triple, ...]

    @property
    def size(self) -> int:
        """Number of inserted triples ``|Δ|``."""
        return len(self.triples)

    def __len__(self) -> int:
        return len(self.triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self.triples)

    def entity_insertions(self) -> dict[str, EntityCluster]:
        """Group the insertions by subject id into per-entity clusters ``Δ_e``.

        The returned mapping is keyed by a *batch-scoped* cluster key
        ``"{batch_id}/{entity_id}"`` so a ``Δ_e`` never merges with the
        entity's existing cluster in the base graph.
        """
        grouped: dict[str, list[Triple]] = {}
        for triple in self.triples:
            grouped.setdefault(triple.subject, []).append(triple)
        return {
            f"{self.batch_id}/{entity_id}": EntityCluster(entity_id, tuple(triples))
            for entity_id, triples in grouped.items()
        }

    def as_knowledge_graph(self, name: str | None = None) -> KnowledgeGraph:
        """Materialise the batch as a standalone :class:`KnowledgeGraph`.

        Stratified incremental evaluation (Algorithm 2) treats each batch as an
        independent stratum and runs TWCS on it directly, which needs a full
        graph view of the batch.
        """
        return KnowledgeGraph(self.triples, name=name if name is not None else self.batch_id)


class EvolvingKnowledgeGraph:
    """A knowledge graph plus the ordered sequence of update batches applied to it.

    The class keeps the *current* materialised graph (base plus all applied
    batches) and remembers each applied batch so incremental evaluators can
    reason about strata and reservoir updates per batch.

    Examples
    --------
    >>> base = KnowledgeGraph([Triple("e1", "p", "o")], name="base")
    >>> ekg = EvolvingKnowledgeGraph(base)
    >>> ekg.apply(UpdateBatch("delta-1", (Triple("e2", "p", "o"),)))
    >>> ekg.current.num_triples
    2
    >>> [b.batch_id for b in ekg.applied_batches]
    ['delta-1']
    """

    def __init__(
        self,
        base: KnowledgeGraph,
        compact_threshold: float | None = None,
        compact_min_tail: int = 1024,
    ) -> None:
        from repro.storage.columnar import ColumnarStore
        from repro.storage.delta import DeltaStore

        if compact_threshold is not None and compact_threshold <= 0:
            raise ValueError("compact_threshold must be positive (or None to disable)")
        self._base = base
        self.compact_threshold = compact_threshold
        self.compact_min_tail = compact_min_tail
        self.compactions = 0
        if isinstance(base.backend, ColumnarStore):
            # Zero-copy evolution: layer an append-only delta view over the
            # frozen columnar base instead of re-adding all M base triples.
            # The base graph must not be mutated independently afterwards.
            self._current = KnowledgeGraph(
                name=f"{base.name}+updates", backend=DeltaStore(base.backend)
            )
        else:
            self._current = base.copy(name=f"{base.name}+updates")
        self._batches: list[UpdateBatch] = []

    @property
    def base(self) -> KnowledgeGraph:
        """The graph before any update batch was applied."""
        return self._base

    @property
    def current(self) -> KnowledgeGraph:
        """The graph after all applied batches (``G + Δ_1 + ... + Δ_k``)."""
        return self._current

    @property
    def applied_batches(self) -> Sequence[UpdateBatch]:
        """The batches applied so far, in application order."""
        return tuple(self._batches)

    @property
    def num_batches(self) -> int:
        """Number of update batches applied so far."""
        return len(self._batches)

    def apply(self, batch: UpdateBatch) -> list[bool]:
        """Apply one insertion batch to the current graph.

        Returns one added-flag per batch triple (``False`` for duplicates
        that were already present), which is what the position-surface
        evaluators need to map the batch onto its appended graph positions.

        With ``compact_threshold`` set and a delta-backed current graph, the
        tail is re-frozen into the base whenever it outgrows that fraction
        of the base (:meth:`~repro.storage.delta.DeltaStore.maybe_compact`),
        so arbitrarily long update streams keep O(1) cluster reads.
        Compaction changes no position, row or per-cluster order, so
        samplers and evaluators observe bit-identical draws either way.
        """
        from repro.storage.delta import DeltaStore

        flags = self._current.add_batch(batch.triples)
        self._batches.append(batch)
        backend = self._current.backend
        if self.compact_threshold is not None and isinstance(backend, DeltaStore):
            if backend.maybe_compact(
                threshold=self.compact_threshold, min_tail=self.compact_min_tail
            ):
                self.compactions += 1
        return flags

    def apply_all(self, batches: Iterable[UpdateBatch]) -> None:
        """Apply a sequence of insertion batches in order."""
        for batch in batches:
            self.apply(batch)
