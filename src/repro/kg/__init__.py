"""Knowledge-graph data model.

This subpackage provides the substrate on which every sampling design in the
paper operates: an immutable :class:`~repro.kg.triple.Triple`, a
:class:`~repro.kg.graph.KnowledgeGraph` indexed by entity cluster (all
triples sharing a subject id), an append-only evolution model
(:class:`~repro.kg.updates.UpdateBatch`,
:class:`~repro.kg.updates.EvolvingKnowledgeGraph`), plain-text I/O and
cluster-level statistics.

Physical storage is pluggable (see :mod:`repro.storage`): the default
in-memory backend keeps Python objects for cheap incremental mutation, while
the columnar backend packs triples into interned ``int32`` NumPy columns
with a CSR cluster index for million-triple graphs, zero-copy cluster
position slices, persistent/memory-mapped snapshots and streaming ingest.
"""

from repro.kg.graph import EntityCluster, KnowledgeGraph
from repro.kg.statistics import ClusterSizeSummary, cluster_size_summary, entity_accuracy_by_size
from repro.kg.triple import Triple
from repro.kg.updates import EvolvingKnowledgeGraph, UpdateBatch

__all__ = [
    "Triple",
    "EntityCluster",
    "KnowledgeGraph",
    "UpdateBatch",
    "EvolvingKnowledgeGraph",
    "ClusterSizeSummary",
    "cluster_size_summary",
    "entity_accuracy_by_size",
]
