"""The iterative evaluation framework (Section 4, Figure 2).

The framework glues together a sampling design (Sample Collector), a simulated
or human annotator (the Sample Pool's manual annotation step), the design's
estimator (Estimation), and a margin-of-error stopping rule (Quality Control):
it keeps drawing small batches of sample units, collecting labels and
re-estimating until the estimate's margin of error drops below the requested
threshold, then reports the estimate together with the annotation cost spent.
"""

from repro.core.config import EvaluationConfig
from repro.core.framework import StaticEvaluator, evaluate_accuracy
from repro.core.granular import GranularEvaluator, GroupReport, evaluate_by_predicate
from repro.core.result import EvaluationReport

__all__ = [
    "EvaluationConfig",
    "EvaluationReport",
    "StaticEvaluator",
    "evaluate_accuracy",
    "GranularEvaluator",
    "GroupReport",
    "evaluate_by_predicate",
]
