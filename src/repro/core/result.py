"""Results reported by an evaluation run."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sampling.base import Estimate
from repro.stats.ci import ConfidenceInterval

__all__ = ["EvaluationReport"]


@dataclass(frozen=True)
class EvaluationReport:
    """The outcome of one (static or incremental) evaluation run.

    Attributes
    ----------
    estimate:
        Final accuracy estimate with its standard error.
    confidence_level:
        Confidence level the margin of error refers to.
    moe_target:
        The requested margin-of-error threshold.
    satisfied:
        Whether the threshold was met (it may not be when the population was
        exhausted or the unit budget ran out first).
    iterations:
        Number of draw/annotate/estimate iterations performed.
    num_units:
        Sample units drawn (triples for SRS, cluster draws for cluster designs).
    num_triples_annotated:
        Distinct triples labelled during this run.
    num_entities_identified:
        Distinct subject entities identified during this run.
    annotation_cost_seconds:
        Total annotation cost charged by the cost model during this run.
    """

    estimate: Estimate
    confidence_level: float
    moe_target: float
    satisfied: bool
    iterations: int
    num_units: int
    num_triples_annotated: int
    num_entities_identified: int
    annotation_cost_seconds: float

    @property
    def accuracy(self) -> float:
        """The point estimate of KG accuracy."""
        return self.estimate.value

    @property
    def margin_of_error(self) -> float:
        """The achieved margin of error at :attr:`confidence_level`."""
        return self.estimate.margin_of_error(self.confidence_level)

    @property
    def confidence_interval(self) -> ConfidenceInterval:
        """The achieved confidence interval, clipped to [0, 1]."""
        return self.estimate.confidence_interval(self.confidence_level)

    @property
    def annotation_cost_hours(self) -> float:
        """Annotation cost in hours (the unit used in the paper's tables)."""
        return self.annotation_cost_seconds / 3600.0

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        return (
            f"accuracy={self.accuracy:.3f} ±{self.margin_of_error:.3f} "
            f"({self.confidence_level:.0%} confidence), "
            f"{self.num_triples_annotated} triples / "
            f"{self.num_entities_identified} entities annotated, "
            f"cost={self.annotation_cost_hours:.2f}h"
        )
