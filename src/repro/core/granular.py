"""Accuracy evaluation at finer granularity: per predicate or per custom group.

The paper's conclusion lists "efficient evaluation on different granularity,
such as accuracy per predicate or per entity type" as future work.  This
module provides that extension on top of the existing machinery: the KG is
partitioned into groups by an arbitrary triple-level key (predicate by
default), each group is evaluated with its own TWCS design and
margin-of-error target, and all groups share one annotation session so an
entity identified for one group is free for every other group it appears in.

Small groups (fewer triples than a census would cost to reach the MoE target)
are simply annotated exhaustively, which is both cheaper and exact.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.config import EvaluationConfig
from repro.core.framework import StaticEvaluator
from repro.core.result import EvaluationReport
from repro.cost.annotator import SimulatedAnnotator
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.sampling.base import Estimate
from repro.sampling.twcs import TwoStageWeightedClusterDesign

__all__ = ["GroupReport", "GranularEvaluator", "evaluate_by_predicate"]


@dataclass(frozen=True)
class GroupReport:
    """The evaluation outcome for one group of triples."""

    group: str
    num_triples_in_group: int
    report: EvaluationReport
    exhaustive: bool

    @property
    def accuracy(self) -> float:
        """Estimated (or exact, if exhaustive) accuracy of the group."""
        return self.report.accuracy

    @property
    def margin_of_error(self) -> float:
        """Margin of error of the group estimate (0 for exhaustive groups)."""
        return 0.0 if self.exhaustive else self.report.margin_of_error


class GranularEvaluator:
    """Evaluates KG accuracy separately for each group of triples.

    Parameters
    ----------
    graph:
        The knowledge graph to evaluate.
    annotator:
        A single annotator shared by all groups, so entity identifications are
        paid for once across the whole granular evaluation.
    config:
        Per-group quality requirement (MoE / confidence / batch size).
    second_stage_size:
        TWCS cap ``m`` used inside each group.
    seed:
        Seed for all sampling randomness.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        annotator: SimulatedAnnotator,
        config: EvaluationConfig | None = None,
        second_stage_size: int = 5,
        seed: int | None = None,
    ) -> None:
        self.graph = graph
        self.annotator = annotator
        self.config = config if config is not None else EvaluationConfig()
        self.second_stage_size = second_stage_size
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Grouping
    # ------------------------------------------------------------------ #
    def _partition(self, group_key: Callable[[Triple], str]) -> dict[str, KnowledgeGraph]:
        groups: dict[str, KnowledgeGraph] = {}
        for triple in self.graph:
            key = group_key(triple)
            groups.setdefault(key, KnowledgeGraph(name=f"{self.graph.name}:{key}")).add(triple)
        return groups

    def _census_cheaper(self, group_graph: KnowledgeGraph) -> bool:
        """Whether exhaustively annotating the group is cheaper than sampling.

        A TWCS evaluation needs at least ``min_units`` cluster draws; when the
        group holds fewer triples than that, a census costs no more and yields
        an exact answer.
        """
        return group_graph.num_triples <= self.config.min_units

    def _exhaustive_report(self, group_graph: KnowledgeGraph) -> EvaluationReport:
        cost_before = self.annotator.total_cost_seconds
        triples_before = self.annotator.total_triples_annotated
        entities_before = self.annotator.entities_identified
        result = self.annotator.annotate_triples(group_graph.triples)
        labels = [result.labels[t] for t in group_graph]
        accuracy = sum(labels) / len(labels) if labels else 0.0
        estimate = Estimate(
            value=accuracy,
            std_error=0.0,
            num_units=group_graph.num_triples,
            num_triples=group_graph.num_triples,
        )
        return EvaluationReport(
            estimate=estimate,
            confidence_level=self.config.confidence_level,
            moe_target=self.config.moe_target,
            satisfied=True,
            iterations=1,
            num_units=group_graph.num_triples,
            num_triples_annotated=self.annotator.total_triples_annotated - triples_before,
            num_entities_identified=self.annotator.entities_identified - entities_before,
            annotation_cost_seconds=self.annotator.total_cost_seconds - cost_before,
        )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, group_key: Callable[[Triple], str]) -> dict[str, GroupReport]:
        """Evaluate every group induced by ``group_key`` to the configured MoE.

        Returns a mapping from group label to :class:`GroupReport`, ordered by
        descending group size (largest groups first, which also front-loads
        the entity identifications most likely to be shared).
        """
        groups = self._partition(group_key)
        ordered = sorted(groups.items(), key=lambda item: -item[1].num_triples)
        reports: dict[str, GroupReport] = {}
        for label, group_graph in ordered:
            if self._census_cheaper(group_graph):
                report = self._exhaustive_report(group_graph)
                exhaustive = True
            else:
                design = TwoStageWeightedClusterDesign(
                    group_graph, second_stage_size=self.second_stage_size, seed=self._rng
                )
                evaluator = StaticEvaluator(design, self.annotator, self.config)
                report = evaluator.run(reset=False)
                exhaustive = False
            reports[label] = GroupReport(
                group=label,
                num_triples_in_group=group_graph.num_triples,
                report=report,
                exhaustive=exhaustive,
            )
        return reports

    def evaluate_by_predicate(self) -> dict[str, GroupReport]:
        """Per-predicate accuracy evaluation (the paper's headline future-work case)."""
        return self.evaluate(lambda triple: triple.predicate)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    @staticmethod
    def combine(reports: Mapping[str, GroupReport]) -> Estimate:
        """Combine group estimates into an overall estimate (stratified form).

        Groups are non-overlapping and cover the KG, so the combination is a
        stratified estimator with weights proportional to group sizes.
        """
        total = sum(report.num_triples_in_group for report in reports.values())
        if total == 0:
            return Estimate(value=0.0, std_error=float("inf"), num_units=0, num_triples=0)
        value = 0.0
        variance = 0.0
        num_units = 0
        num_triples = 0
        for report in reports.values():
            weight = report.num_triples_in_group / total
            value += weight * report.report.estimate.value
            std_error = report.report.estimate.std_error
            if not report.exhaustive and np.isfinite(std_error):
                variance += weight * weight * std_error**2
            num_units += report.report.estimate.num_units
            num_triples += report.report.estimate.num_triples
        return Estimate(
            value=value,
            std_error=float(np.sqrt(variance)),
            num_units=num_units,
            num_triples=num_triples,
        )


def evaluate_by_predicate(
    graph: KnowledgeGraph,
    annotator: SimulatedAnnotator,
    moe_target: float = 0.05,
    confidence_level: float = 0.95,
    second_stage_size: int = 5,
    seed: int | None = None,
) -> dict[str, GroupReport]:
    """One-call per-predicate accuracy evaluation.

    Examples
    --------
    >>> from repro.generators import make_nell_like
    >>> from repro.cost import SimulatedAnnotator
    >>> data = make_nell_like(seed=0)
    >>> reports = evaluate_by_predicate(data.graph, SimulatedAnnotator(data.oracle), moe_target=0.1)
    >>> all(0.0 <= r.accuracy <= 1.0 for r in reports.values())
    True
    """
    config = EvaluationConfig(moe_target=moe_target, confidence_level=confidence_level)
    evaluator = GranularEvaluator(
        graph, annotator, config, second_stage_size=second_stage_size, seed=seed
    )
    return evaluator.evaluate_by_predicate()
