"""The iterative static-evaluation loop (Figure 2 of the paper).

``StaticEvaluator`` repeats four steps until the quality requirement is met:

1. **Sample Collector** — ask the sampling design for a small batch of units;
2. **Sample Pool** — send the units' triples to the annotator for labels;
3. **Estimation** — fold the labels into the design's estimator;
4. **Quality Control** — stop as soon as the margin of error is no larger
   than the user threshold (and the CLT minimum sample size is reached).

The evaluator never over-samples: it stops at the end of the first batch whose
estimate satisfies the requirement, which is the "avoid oversampling and
unnecessary manual evaluations" property claimed in Section 4.
"""

from __future__ import annotations

from repro.core.config import EvaluationConfig
from repro.core.result import EvaluationReport
from repro.cost.annotator import SimulatedAnnotator
from repro.sampling.base import SamplingDesign

__all__ = ["StaticEvaluator", "evaluate_accuracy"]


class StaticEvaluator:
    """Runs the iterative evaluation loop for one sampling design.

    Parameters
    ----------
    design:
        Any :class:`~repro.sampling.base.SamplingDesign`.
    annotator:
        The annotator charged with labelling sampled triples (normally a
        :class:`~repro.cost.annotator.SimulatedAnnotator`; any object with the
        same ``annotate_triples`` / cost-accounting interface works).
    config:
        Quality/budget requirements; defaults to the paper's standard task
        (5 % MoE at 95 % confidence).
    """

    def __init__(
        self,
        design: SamplingDesign,
        annotator: SimulatedAnnotator,
        config: EvaluationConfig | None = None,
    ) -> None:
        self.design = design
        self.annotator = annotator
        self.config = config if config is not None else EvaluationConfig()

    def run(self, reset: bool = True) -> EvaluationReport:
        """Execute the loop until the MoE target is met or samples run out.

        Parameters
        ----------
        reset:
            When ``True`` (default) the design's estimator and the annotator's
            session are cleared first.  Incremental evaluators pass ``False``
            to continue on top of previously annotated samples.
        """
        config = self.config
        if reset:
            self.design.reset()
            self.annotator.reset()

        cost_before = self.annotator.total_cost_seconds
        triples_before = self.annotator.total_triples_annotated
        entities_before = self.annotator.entities_identified

        iterations = 0
        satisfied = False
        while True:
            estimate = self.design.estimate()
            enough_units = estimate.num_units >= config.min_units
            if enough_units and estimate.satisfies(config.moe_target, config.confidence_level):
                satisfied = True
                break
            if config.max_units is not None and estimate.num_units >= config.max_units:
                break

            batch = self.design.draw(config.batch_size)
            if not batch:
                # Population exhausted (e.g. SRS drew every triple): the
                # estimate is now a census and cannot be improved further.
                satisfied = estimate.satisfies(config.moe_target, config.confidence_level)
                break
            iterations += 1
            for unit in batch:
                result = self.annotator.annotate_triples(unit.triples)
                self.design.update(unit, result.labels)

        final_estimate = self.design.estimate()
        if not satisfied:
            satisfied = final_estimate.num_units >= config.min_units and final_estimate.satisfies(
                config.moe_target, config.confidence_level
            )
        return EvaluationReport(
            estimate=final_estimate,
            confidence_level=config.confidence_level,
            moe_target=config.moe_target,
            satisfied=satisfied,
            iterations=iterations,
            num_units=final_estimate.num_units,
            num_triples_annotated=self.annotator.total_triples_annotated - triples_before,
            num_entities_identified=self.annotator.entities_identified - entities_before,
            annotation_cost_seconds=self.annotator.total_cost_seconds - cost_before,
        )


def evaluate_accuracy(
    design: SamplingDesign,
    annotator: SimulatedAnnotator,
    moe_target: float = 0.05,
    confidence_level: float = 0.95,
    batch_size: int = 10,
    min_units: int = 30,
    max_units: int | None = None,
) -> EvaluationReport:
    """One-call convenience wrapper around :class:`StaticEvaluator`.

    Examples
    --------
    >>> from repro.generators import make_nell_like
    >>> from repro.sampling import TwoStageWeightedClusterDesign
    >>> from repro.cost import SimulatedAnnotator
    >>> data = make_nell_like(seed=0)
    >>> design = TwoStageWeightedClusterDesign(data.graph, second_stage_size=5, seed=0)
    >>> annotator = SimulatedAnnotator(data.oracle)
    >>> report = evaluate_accuracy(design, annotator, moe_target=0.05)
    >>> abs(report.accuracy - data.true_accuracy) < 0.1
    True
    """
    config = EvaluationConfig(
        moe_target=moe_target,
        confidence_level=confidence_level,
        batch_size=batch_size,
        min_units=min_units,
        max_units=max_units,
    )
    return StaticEvaluator(design, annotator, config).run()
