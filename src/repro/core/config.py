"""Configuration of an evaluation run."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EvaluationConfig"]


@dataclass(frozen=True)
class EvaluationConfig:
    """User-facing quality and budget knobs for an evaluation run.

    Parameters
    ----------
    moe_target:
        Required margin of error ``ε`` of the final estimate.  The paper's
        default evaluation task is ``ε = 5 %``.
    confidence_level:
        Confidence level ``1 - α`` of the margin of error (default 95 %).
    batch_size:
        Number of sample units drawn per iteration of the framework.  Smaller
        batches track the stopping point more precisely at the price of more
        estimator updates; the default of 10 mirrors the "small batch"
        behaviour of Online Aggregation referenced by the paper.
    min_units:
        Minimum number of sample units before the stopping rule may fire.  The
        Central Limit Theorem approximation behind Eq. (1) needs roughly 30
        i.i.d. observations (the rule of thumb cited in the paper), so the
        default is 30.
    max_units:
        Hard budget on sample units, as a safety net against non-terminating
        runs on degenerate inputs; ``None`` means unbounded.
    """

    moe_target: float = 0.05
    confidence_level: float = 0.95
    batch_size: int = 10
    min_units: int = 30
    max_units: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.moe_target < 1.0:
            raise ValueError("moe_target must be in (0, 1)")
        if not 0.0 < self.confidence_level < 1.0:
            raise ValueError("confidence_level must be in (0, 1)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.min_units < 2:
            raise ValueError("min_units must be at least 2")
        if self.max_units is not None and self.max_units < self.min_units:
            raise ValueError("max_units must be at least min_units")
