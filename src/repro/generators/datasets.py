"""Synthetic stand-ins for the paper's evaluation datasets (Table 3).

| Paper dataset | Entities | Triples | Avg. cluster size | Gold accuracy |
|---------------|----------|---------|-------------------|---------------|
| NELL          | 817      | 1 860   | 2.3               | 91 %          |
| YAGO          | 822      | 1 386   | 1.7               | 99 %          |
| MOVIE         | 288 770  | 2.65 M  | 9.2               | 90 % (5 % MoE)|
| MOVIE-FULL    | 14.5 M   | 130 M   | 9.0               | n/a           |

``make_nell_like`` / ``make_yago_like`` generate KGs at the published sizes;
``make_movie_like`` / ``make_movie_full_like`` are scaled by default (the
sampling cost of every design in the paper is insensitive to population size —
that is the point of Figure 7 — so a scaled population with the same
cluster-size distribution and accuracy reproduces the same behaviour; pass
``scale=1.0`` to generate the full-size graphs).

Gold labels are drawn so that entity accuracy is positively correlated with
cluster size (the Figure 3 observation) and the triple-weighted mean accuracy
is calibrated to the published gold accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.generators.synthetic_kg import SyntheticKGConfig, generate_kg
from repro.kg.graph import KnowledgeGraph
from repro.labels.binomial_mixture import BinomialMixtureModel
from repro.labels.oracle import LabelOracle
from repro.labels.random_error import RandomErrorModel

__all__ = [
    "LabelledKG",
    "generate_calibrated_labels",
    "make_nell_like",
    "make_yago_like",
    "make_movie_like",
    "make_movie_syn",
    "make_movie_full_like",
]


@dataclass(frozen=True)
class LabelledKG:
    """A knowledge graph together with its ground-truth label oracle."""

    graph: KnowledgeGraph
    oracle: LabelOracle

    @property
    def name(self) -> str:
        """Name of the underlying graph."""
        return self.graph.name

    @property
    def true_accuracy(self) -> float:
        """Exact population accuracy under the oracle."""
        return self.oracle.true_accuracy(self.graph)


def generate_calibrated_labels(
    graph: KnowledgeGraph,
    target_accuracy: float,
    size_correlation: float = 0.15,
    noise_sigma: float = 0.05,
    seed: int | np.random.Generator | None = None,
) -> LabelOracle:
    """Draw labels whose overall accuracy is calibrated to ``target_accuracy``.

    Per-cluster accuracies increase with cluster size (controlled by
    ``size_correlation``, the accuracy gap between the smallest and largest
    clusters) plus Gaussian noise, then the whole profile is shifted so the
    triple-weighted mean matches the target.  Labels are Bernoulli draws from
    the per-cluster accuracy, so the realised accuracy fluctuates around the
    target by O(1/sqrt(M)).

    Parameters
    ----------
    graph:
        The knowledge graph to label.
    target_accuracy:
        Desired overall (triple-weighted) accuracy in [0, 1].
    size_correlation:
        Strength of the cluster-size/accuracy coupling; 0 disables it.
    noise_sigma:
        Standard deviation of the per-cluster accuracy noise.
    seed:
        Seed or generator for reproducible draws.
    """
    if not 0.0 <= target_accuracy <= 1.0:
        raise ValueError("target_accuracy must be in [0, 1]")
    rng = np.random.default_rng(seed)
    sizes = graph.cluster_size_array().astype(float)
    if sizes.size == 0:
        return LabelOracle({})
    # Rank-normalise sizes to [0, 1]; ranks are robust to heavy tails.
    order = sizes.argsort().argsort()
    normalised_rank = order / max(1, sizes.size - 1)
    noise = rng.normal(0.0, noise_sigma, size=sizes.size) if noise_sigma > 0 else 0.0
    probabilities = target_accuracy + size_correlation * (normalised_rank - 0.5) + noise
    probabilities = np.clip(probabilities, 0.01, 1.0)
    # Shift so the triple-weighted mean hits the target (a few fixed-point
    # passes are enough; clipping makes a closed form unavailable).
    weights = sizes / sizes.sum()
    for _ in range(8):
        gap = target_accuracy - float(np.dot(weights, probabilities))
        if abs(gap) < 1e-4:
            break
        probabilities = np.clip(probabilities + gap, 0.01, 1.0)
    labels: dict = {}
    for cluster, probability in zip(graph.clusters(), probabilities):
        draws = rng.random(cluster.size)
        for triple, draw in zip(cluster, draws):
            labels[triple] = bool(draw < probability)
    return LabelOracle(labels)


def make_nell_like(seed: int | None = 0) -> LabelledKG:
    """NELL-like KG: 817 entities, ≈1 860 triples, long-tailed sizes, 91 % accuracy."""
    rng = np.random.default_rng(seed)
    config = SyntheticKGConfig(
        num_entities=817,
        mean_cluster_size=2.3,
        size_skew=1.0,
        max_cluster_size=25,
        name="NELL-like",
    )
    graph = generate_kg(config, rng)
    oracle = generate_calibrated_labels(
        graph, target_accuracy=0.91, size_correlation=0.15, noise_sigma=0.08, seed=rng
    )
    return LabelledKG(graph, oracle)


def make_yago_like(seed: int | None = 0) -> LabelledKG:
    """YAGO-like KG: 822 entities, ≈1 386 triples, 99 % accuracy."""
    rng = np.random.default_rng(seed)
    config = SyntheticKGConfig(
        num_entities=822,
        mean_cluster_size=1.7,
        size_skew=0.9,
        max_cluster_size=35,
        name="YAGO-like",
    )
    graph = generate_kg(config, rng)
    oracle = generate_calibrated_labels(
        graph, target_accuracy=0.99, size_correlation=0.02, noise_sigma=0.01, seed=rng
    )
    return LabelledKG(graph, oracle)


def make_movie_like(seed: int | None = 0, scale: float = 0.05) -> LabelledKG:
    """MOVIE-like KG (IMDb ⋈ WikiData): avg cluster size 9.2, 90 % accuracy.

    ``scale`` multiplies the published entity count (288 770); the default 5 %
    scale yields ≈14 000 entities / ≈130 000 triples, large enough that every
    sampling design operates far from census conditions yet small enough for
    repeated trials on a laptop.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)
    num_entities = max(100, int(round(288_770 * scale)))
    config = SyntheticKGConfig(
        num_entities=num_entities,
        mean_cluster_size=9.2,
        size_skew=1.1,
        max_cluster_size=500,
        name="MOVIE-like",
    )
    graph = generate_kg(config, rng)
    oracle = generate_calibrated_labels(
        graph, target_accuracy=0.90, size_correlation=0.12, noise_sigma=0.06, seed=rng
    )
    return LabelledKG(graph, oracle)


def make_movie_syn(
    c: float = 0.01,
    sigma: float = 0.1,
    k: int = 3,
    seed: int | None = 0,
    scale: float = 0.02,
) -> LabelledKG:
    """MOVIE-SYN: the MOVIE-like graph with Binomial Mixture Model labels.

    This reproduces Section 7.1.2: labels are generated by
    :class:`~repro.labels.binomial_mixture.BinomialMixtureModel` with the given
    ``c`` / ``sigma`` / ``k`` (paper defaults c=0.01, sigma=0.1, k=3), which
    yields an overall accuracy around 62 % for the default parameters, as in
    Table 7.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)
    num_entities = max(100, int(round(288_770 * scale)))
    config = SyntheticKGConfig(
        num_entities=num_entities,
        mean_cluster_size=9.2,
        size_skew=1.1,
        max_cluster_size=500,
        name=f"MOVIE-SYN(c={c},sigma={sigma})",
    )
    graph = generate_kg(config, rng)
    model = BinomialMixtureModel(c=c, sigma=sigma, k=k, seed=rng)
    return LabelledKG(graph, model.generate(graph))


def make_movie_full_like(
    num_triples: int = 1_000_000,
    accuracy: float = 0.9,
    seed: int | None = 0,
) -> LabelledKG:
    """MOVIE-FULL-like KG for the scalability sweep of Figure 7.

    The paper uses 26 M–130 M triples with Random Error Model labels at a
    fixed accuracy.  This constructor takes the desired triple count directly
    (the Figure 7 harness sweeps it) and uses REM labels, matching the paper's
    synthetic-label protocol for MOVIE-FULL.
    """
    if num_triples < 1:
        raise ValueError("num_triples must be positive")
    rng = np.random.default_rng(seed)
    mean_cluster_size = 9.0
    num_entities = max(10, int(round(num_triples / mean_cluster_size)))
    config = SyntheticKGConfig(
        num_entities=num_entities,
        mean_cluster_size=mean_cluster_size,
        size_skew=1.1,
        max_cluster_size=500,
        name=f"MOVIE-FULL-like({num_triples} triples)",
    )
    graph = generate_kg(config, rng)
    oracle = RandomErrorModel.with_accuracy(accuracy, seed=rng).generate(graph)
    return LabelledKG(graph, oracle)
