"""Synthetic dataset and workload generators.

The paper evaluates on four KGs (NELL, YAGO, MOVIE, MOVIE-FULL; Table 3) whose
raw annotated files are not redistributable here.  This subpackage generates
synthetic equivalents that match the *published statistics* — entity counts,
cluster-size skew and gold accuracy — which is what every estimator in the
paper actually interacts with.  It also generates the evolving-KG update
workloads of Section 7.3 (batches mixing brand-new entities with enrichment of
existing entities, at a controlled accuracy).
"""

from repro.generators.datasets import (
    LabelledKG,
    make_movie_full_like,
    make_movie_like,
    make_movie_syn,
    make_nell_like,
    make_yago_like,
)
from repro.generators.synthetic_kg import SyntheticKGConfig, generate_kg, sample_cluster_sizes
from repro.generators.workload import UpdateWorkloadGenerator

__all__ = [
    "SyntheticKGConfig",
    "generate_kg",
    "sample_cluster_sizes",
    "LabelledKG",
    "make_nell_like",
    "make_yago_like",
    "make_movie_like",
    "make_movie_syn",
    "make_movie_full_like",
    "UpdateWorkloadGenerator",
]
