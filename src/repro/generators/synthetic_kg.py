"""Low-level synthetic knowledge-graph generation.

A synthetic KG is fully described by its cluster-size distribution: for each
entity we draw a size from a skewed (discretised lognormal) distribution and
emit that many triples with distinct predicates/objects.  The estimators under
study only observe subject ids, cluster sizes and per-triple labels, so this
is the minimal substrate that reproduces their behaviour on the real datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple

__all__ = ["SyntheticKGConfig", "sample_cluster_sizes", "generate_kg"]

#: Predicate vocabulary used for generated triples.  Names are cosmetic; the
#: estimators never inspect predicates, but the KGEval baseline uses them to
#: build coupling constraints, so a realistic, reused vocabulary matters there.
_DEFAULT_PREDICATES = (
    "wasBornIn",
    "graduatedFrom",
    "performedIn",
    "directedBy",
    "hasChild",
    "releaseDate",
    "duration",
    "actedIn",
    "locatedIn",
    "playsFor",
    "coachOf",
    "memberOfTeam",
    "birthDate",
    "hasGenre",
    "producedBy",
    "marriedTo",
    "worksAt",
    "capitalOf",
    "hasPopulation",
    "foundedIn",
)


@dataclass(frozen=True)
class SyntheticKGConfig:
    """Parameters describing a synthetic knowledge graph.

    Parameters
    ----------
    num_entities:
        Number of entity clusters (``N``).
    mean_cluster_size:
        Target average cluster size (``M / N``).
    size_skew:
        Log-scale standard deviation of the lognormal size distribution; larger
        values produce a heavier tail (a few very large clusters, many
        singletons).
    max_cluster_size:
        Hard cap on cluster size.
    entity_object_fraction:
        Fraction of triples whose object is another entity id (entity property)
        rather than an atomic literal (data property).
    name:
        Name given to the generated graph.
    """

    num_entities: int
    mean_cluster_size: float = 2.5
    size_skew: float = 0.8
    max_cluster_size: int = 200
    entity_object_fraction: float = 0.4
    name: str = "synthetic-kg"

    def __post_init__(self) -> None:
        if self.num_entities < 1:
            raise ValueError("num_entities must be positive")
        if self.mean_cluster_size < 1.0:
            raise ValueError("mean_cluster_size must be at least 1")
        if self.size_skew < 0:
            raise ValueError("size_skew must be non-negative")
        if self.max_cluster_size < 1:
            raise ValueError("max_cluster_size must be at least 1")
        if not 0.0 <= self.entity_object_fraction <= 1.0:
            raise ValueError("entity_object_fraction must be in [0, 1]")


def sample_cluster_sizes(
    num_entities: int,
    mean_cluster_size: float,
    size_skew: float,
    max_cluster_size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw integer cluster sizes with the requested mean and skew.

    Sizes are ``1 + round(Lognormal)`` samples whose lognormal scale is solved
    analytically so the expected size matches ``mean_cluster_size``, then
    clipped to ``[1, max_cluster_size]``.
    """
    if num_entities < 1:
        raise ValueError("num_entities must be positive")
    if mean_cluster_size < 1.0:
        raise ValueError("mean_cluster_size must be at least 1")
    excess_mean = mean_cluster_size - 1.0
    if excess_mean <= 0 or size_skew == 0:
        sizes = np.full(num_entities, round(mean_cluster_size), dtype=np.int64)
        return np.clip(sizes, 1, max_cluster_size)
    # E[Lognormal(mu, s)] = exp(mu + s^2/2)  =>  mu = log(excess_mean) - s^2/2.
    mu = np.log(excess_mean) - 0.5 * size_skew * size_skew
    excess = rng.lognormal(mean=mu, sigma=size_skew, size=num_entities)
    sizes = 1 + np.round(excess).astype(np.int64)
    return np.clip(sizes, 1, max_cluster_size)


def generate_kg(
    config: SyntheticKGConfig,
    seed: int | np.random.Generator | None = None,
    backend: str = "memory",
) -> KnowledgeGraph:
    """Generate a synthetic knowledge graph according to ``config``.

    ``backend="columnar"`` builds the graph directly inside a
    :class:`~repro.storage.columnar.ColumnarStore` — string ids are interned
    on the fly and appended to the store's ``int32`` buffers, so no
    intermediate :class:`~repro.kg.triple.Triple` objects, key tuples or
    per-cluster position lists are ever allocated.  Both backends consume the
    random stream identically and produce the *same triples in the same
    order* for a given seed, so a columnar graph (or a snapshot of it) is a
    drop-in stand-in for the in-memory one.
    """
    rng = np.random.default_rng(seed)
    sizes = sample_cluster_sizes(
        config.num_entities,
        config.mean_cluster_size,
        config.size_skew,
        config.max_cluster_size,
        rng,
    )
    if backend == "columnar":
        return _generate_columnar(config, sizes, rng)
    if backend != "memory":
        raise ValueError(f"unknown backend {backend!r}; choose 'memory' or 'columnar'")
    graph = KnowledgeGraph(name=config.name)
    predicates = _DEFAULT_PREDICATES
    entity_object_cutoff = config.entity_object_fraction
    for entity_index, size in enumerate(sizes):
        subject = f"e{entity_index}"
        predicate_choices = rng.integers(0, len(predicates), size=int(size))
        object_draws = rng.random(int(size))
        for fact_index in range(int(size)):
            predicate = predicates[int(predicate_choices[fact_index])]
            is_entity_object = bool(object_draws[fact_index] < entity_object_cutoff)
            if is_entity_object:
                target = int(rng.integers(0, config.num_entities))
                obj = f"e{target}"
            else:
                obj = f"value_{entity_index}_{fact_index}"
            # Predicates may repeat within a cluster; disambiguate the object so
            # the triple stays unique (the graph is a set of triples).
            triple = Triple(subject, predicate, obj, is_entity_object=is_entity_object)
            if triple in graph:
                triple = Triple(
                    subject,
                    predicate,
                    f"{obj}#{fact_index}",
                    is_entity_object=is_entity_object,
                )
            graph.add(triple)
    return graph


def _generate_columnar(
    config: SyntheticKGConfig, sizes: np.ndarray, rng: np.random.Generator
) -> KnowledgeGraph:
    """Bulk columnar twin of the in-memory generation loop.

    Consumes the random stream in exactly the same order as the memory path.
    Duplicate disambiguation uses a per-cluster ``(predicate, object)`` set,
    which is equivalent to the memory path's global ``triple in graph`` check
    because subjects are unique per cluster.
    """
    from repro.storage.columnar import ColumnarStore

    store = ColumnarStore()
    intern = store.vocab.intern
    append = store.append_interned
    predicate_ids = [intern(predicate) for predicate in _DEFAULT_PREDICATES]
    entity_object_cutoff = config.entity_object_fraction
    num_entities = config.num_entities
    for entity_index, size in enumerate(sizes):
        subject_id = intern(f"e{entity_index}")
        predicate_choices = rng.integers(0, len(predicate_ids), size=int(size))
        object_draws = rng.random(int(size))
        seen: set[tuple[int, int]] = set()
        for fact_index in range(int(size)):
            predicate_id = predicate_ids[int(predicate_choices[fact_index])]
            is_entity_object = bool(object_draws[fact_index] < entity_object_cutoff)
            if is_entity_object:
                obj = f"e{int(rng.integers(0, num_entities))}"
            else:
                obj = f"value_{entity_index}_{fact_index}"
            object_id = intern(obj)
            if (predicate_id, object_id) in seen:
                object_id = intern(f"{obj}#{fact_index}")
            seen.add((predicate_id, object_id))
            append(subject_id, predicate_id, object_id, is_entity_object)
    store.finalize()
    return KnowledgeGraph(name=config.name, backend=store)
