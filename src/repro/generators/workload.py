"""Evolving-KG update workload generation (Section 7.3).

The paper's evolving-KG experiments start from a base KG (50 % of MOVIE) and
apply batches of insertions drawn from MOVIE-FULL, so a batch mixes brand-new
entities with enrichment of entities that already exist in the base graph.
:class:`UpdateWorkloadGenerator` reproduces that recipe against any base
graph: each generated :class:`~repro.kg.updates.UpdateBatch` has a controlled
size, a controlled fraction of triples landing on new entities, and ground
truth labels at a controlled accuracy.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.generators.datasets import LabelledKG
from repro.generators.synthetic_kg import sample_cluster_sizes
from repro.kg.triple import Triple
from repro.kg.updates import UpdateBatch
from repro.labels.oracle import LabelOracle

__all__ = ["UpdateWorkloadGenerator", "DeletionBatch", "batch_schedule", "SCHEDULE_PATTERNS"]

SCHEDULE_PATTERNS = ("uniform", "trickle", "bursty", "frontloaded")


@dataclass(frozen=True)
class DeletionBatch:
    """A batch of triples to remove from an evolving knowledge graph.

    The evolving storage layer is append-only, so deletions are not applied
    through :class:`~repro.kg.updates.EvolvingKnowledgeGraph`; a deletion-aware
    harness (e.g. the scenario runner) subtracts these triples from its live
    triple set and rebuilds the graph for the post-deletion state.
    """

    batch_id: str
    triples: tuple[Triple, ...]

    @property
    def size(self) -> int:
        """Number of triples removed by this batch."""
        return len(self.triples)

    def __iter__(self):
        return iter(self.triples)

    def __len__(self) -> int:
        return len(self.triples)


def batch_schedule(total_updates: int, num_batches: int, pattern: str = "uniform") -> list[int]:
    """Split ``total_updates`` into per-batch sizes following a named pattern.

    The sizes always sum to exactly ``total_updates`` (largest-remainder
    apportionment with stable tie-breaking by batch index), so every schedule
    of the same total applies the same amount of work regardless of shape:

    * ``uniform`` / ``trickle`` — as equal as possible.  A trickle stream is a
      uniform schedule with many batches, so the two names share weights; the
      semantic difference lives in how many batches the caller asks for.
    * ``bursty`` — every third batch is a spike carrying ~8x the weight of the
      quiet batches between spikes.
    * ``frontloaded`` — geometrically decaying weights ``2^-i``: one large
      initial burst that tapers into a trickle.
    """
    if total_updates < 1:
        raise ValueError(f"total_updates must be positive, got {total_updates}")
    if num_batches < 1:
        raise ValueError(f"num_batches must be positive, got {num_batches}")
    if pattern not in SCHEDULE_PATTERNS:
        raise ValueError(f"pattern must be one of {SCHEDULE_PATTERNS}, got {pattern!r}")
    if pattern in ("uniform", "trickle"):
        weights = np.ones(num_batches)
    elif pattern == "bursty":
        weights = np.where(np.arange(num_batches) % 3 == 0, 8.0, 1.0)
    else:  # frontloaded
        weights = 2.0 ** -np.arange(num_batches, dtype=np.float64)
    raw = weights / weights.sum() * total_updates
    sizes = np.floor(raw).astype(np.int64)
    shortfall = total_updates - int(sizes.sum())
    if shortfall > 0:
        # Stable sort: equal remainders are resolved by batch index, so the
        # schedule is a pure function of (total, batches, pattern).
        order = np.argsort(-(raw - sizes), kind="stable")
        sizes[order[:shortfall]] += 1
    return [int(size) for size in sizes]


class UpdateWorkloadGenerator:
    """Generates labelled insertion batches for an evolving knowledge graph.

    Parameters
    ----------
    base:
        The labelled base KG the updates will be applied to; used to pick
        existing entities for enrichment and to name new entities without
        collisions.
    new_entity_fraction:
        Fraction of inserted triples that belong to brand-new entities (the
        rest enrich entities already present in the base graph).
    mean_cluster_size:
        Average number of inserted triples per new entity.
    size_skew:
        Skew of the new-entity cluster-size distribution.
    seed:
        Seed or generator for reproducibility.
    """

    def __init__(
        self,
        base: LabelledKG,
        new_entity_fraction: float = 0.6,
        mean_cluster_size: float = 5.0,
        size_skew: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= new_entity_fraction <= 1.0:
            raise ValueError("new_entity_fraction must be in [0, 1]")
        if mean_cluster_size < 1.0:
            raise ValueError("mean_cluster_size must be at least 1")
        self.base = base
        self.new_entity_fraction = new_entity_fraction
        self.mean_cluster_size = mean_cluster_size
        self.size_skew = size_skew
        self._rng = np.random.default_rng(seed)
        self._next_entity_index = 0
        self._next_batch_index = 0
        self._next_deletion_index = 0
        self._existing_entities = list(base.graph.entity_ids)
        self._deleted: set[Triple] = set()

    # ------------------------------------------------------------------ #
    # Batch generation
    # ------------------------------------------------------------------ #
    def _new_entity_id(self) -> str:
        entity_id = f"new_entity_{self._next_entity_index}"
        self._next_entity_index += 1
        return entity_id

    def generate_batch(
        self, num_triples: int, accuracy: float, batch_id: str | None = None
    ) -> tuple[UpdateBatch, LabelOracle]:
        """Generate one insertion batch of ``num_triples`` triples.

        Returns the batch and a label oracle covering exactly the inserted
        triples (merge it into the base oracle with
        :meth:`~repro.labels.oracle.LabelOracle.merged_with`).

        Parameters
        ----------
        num_triples:
            Batch size ``|Δ|``.
        accuracy:
            Probability that each inserted triple is correct.
        batch_id:
            Optional identifier; auto-numbered when omitted.
        """
        if num_triples < 1:
            raise ValueError("num_triples must be positive")
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")
        if batch_id is None:
            batch_id = f"delta-{self._next_batch_index}"
        self._next_batch_index += 1

        num_new_entity_triples = int(round(num_triples * self.new_entity_fraction))
        num_enrichment_triples = num_triples - num_new_entity_triples
        triples: list[Triple] = []

        # Brand-new entities, with their own skewed cluster sizes.
        remaining = num_new_entity_triples
        while remaining > 0:
            size = int(
                sample_cluster_sizes(1, self.mean_cluster_size, self.size_skew, 200, self._rng)[0]
            )
            size = min(size, remaining)
            subject = self._new_entity_id()
            for fact_index in range(size):
                triples.append(
                    Triple(subject, "insertedFact", f"{batch_id}_value_{subject}_{fact_index}")
                )
            remaining -= size

        # Enrichment of existing entities.
        if num_enrichment_triples > 0 and self._existing_entities:
            chosen = self._rng.choice(
                len(self._existing_entities), size=num_enrichment_triples, replace=True
            )
            for insert_index, entity_index in enumerate(chosen):
                subject = self._existing_entities[int(entity_index)]
                triples.append(Triple(subject, "insertedFact", f"{batch_id}_enrich_{insert_index}"))

        batch = UpdateBatch(batch_id, tuple(triples))
        draws = self._rng.random(len(triples))
        labels = {triple: bool(draw < accuracy) for triple, draw in zip(triples, draws)}
        return batch, LabelOracle(labels)

    def generate_sequence(
        self, num_batches: int, batch_size: int, accuracy: float
    ) -> Iterator[tuple[UpdateBatch, LabelOracle]]:
        """Yield a sequence of equally sized batches at the same accuracy."""
        for _ in range(num_batches):
            yield self.generate_batch(batch_size, accuracy)

    def generate_scheduled_sequence(
        self,
        total_updates: int,
        num_batches: int,
        accuracy: float,
        pattern: str = "uniform",
    ) -> Iterator[tuple[UpdateBatch, LabelOracle]]:
        """Yield batches whose sizes follow :func:`batch_schedule`.

        The schedule conserves the total update count exactly; batches the
        apportionment leaves empty (e.g. the tail of a short frontloaded
        stream) are skipped rather than emitted, since an
        :class:`~repro.kg.updates.UpdateBatch` must hold at least one triple.
        """
        for size in batch_schedule(total_updates, num_batches, pattern):
            if size > 0:
                yield self.generate_batch(size, accuracy)

    def generate_deletion_batch(
        self,
        candidates: Sequence[Triple],
        num_deletions: int,
        batch_id: str | None = None,
    ) -> DeletionBatch:
        """Pick distinct triples to delete from ``candidates``.

        Triples this generator has already marked for deletion are excluded
        from the candidate pool, so a deletion workload produced by a single
        generator never deletes the same triple twice — even when the caller
        passes overlapping candidate lists across batches.  When fewer than
        ``num_deletions`` eligible candidates remain, the batch simply shrinks
        (possibly to empty).
        """
        if num_deletions < 0:
            raise ValueError(f"num_deletions must be non-negative, got {num_deletions}")
        if batch_id is None:
            batch_id = f"delete-{self._next_deletion_index}"
        self._next_deletion_index += 1
        eligible = [triple for triple in candidates if triple not in self._deleted]
        count = min(num_deletions, len(eligible))
        if count > 0:
            chosen_indices = self._rng.choice(len(eligible), size=count, replace=False)
            chosen = tuple(eligible[int(index)] for index in chosen_indices)
        else:
            chosen = ()
        self._deleted.update(chosen)
        return DeletionBatch(batch_id, chosen)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    @staticmethod
    def split_base(
        labelled: LabelledKG, fraction: float, seed: int | np.random.Generator | None = None
    ) -> LabelledKG:
        """Return a labelled subset of ``labelled`` holding ``fraction`` of its triples.

        The paper's evolving experiments use a 50 % random subset of MOVIE as
        the base KG; this helper builds such a base while keeping the original
        oracle (which still covers the subset's triples).
        """
        rng = np.random.default_rng(seed)
        subset_graph = labelled.graph.random_triple_subset(fraction, rng)
        return LabelledKG(subset_graph, labelled.oracle)
