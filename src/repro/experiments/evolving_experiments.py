"""Evolving-KG experiments: Figure 8 (single update batch) and Figure 9 (sequence).

The setup mirrors Section 7.3: the base KG is a 50 % random subset of a
MOVIE-like graph relabelled with the Random Error Model at 90 % accuracy;
update batches mix brand-new entities with enrichment of existing entities at
a controlled size and accuracy.  Three evaluators are compared: the Baseline
(fresh static TWCS per snapshot), RS (reservoir incremental evaluation,
Algorithm 1) and SS (stratified incremental evaluation, Algorithm 2).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.config import EvaluationConfig
from repro.evolving.base import IncrementalEvaluator
from repro.evolving.baseline import BaselineEvolvingEvaluator
from repro.evolving.monitor import EvolvingAccuracyMonitor
from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
from repro.experiments.harness import run_trials
from repro.generators.datasets import LabelledKG, make_movie_like
from repro.generators.workload import UpdateWorkloadGenerator
from repro.labels.random_error import RandomErrorModel

__all__ = ["figure8_single_update", "figure9_update_sequence", "SequenceTrajectory"]

_EVALUATORS: dict[str, type[IncrementalEvaluator]] = {
    "Baseline": BaselineEvolvingEvaluator,
    "RS": ReservoirIncrementalEvaluator,
    "SS": StratifiedIncrementalEvaluator,
}


def _make_base(
    seed: int,
    movie_scale: float,
    base_fraction: float,
    base_accuracy: float,
    backend: str = "memory",
) -> LabelledKG:
    """Build the evolving-KG base: a subset of MOVIE relabelled with REM labels."""
    movie = make_movie_like(seed=seed, scale=movie_scale)
    rng = np.random.default_rng(seed)
    base_graph = movie.graph.random_triple_subset(base_fraction, rng, name="MOVIE-base")
    oracle = RandomErrorModel.with_accuracy(base_accuracy, seed=seed).generate(base_graph)
    if backend == "columnar":
        base_graph = base_graph.to_columnar()
    return LabelledKG(base_graph, oracle)


def _make_evaluator(
    method: str,
    base: LabelledKG,
    config: EvaluationConfig,
    seed: int,
    backend: str = "memory",
) -> IncrementalEvaluator:
    evaluator_cls = _EVALUATORS.get(method)
    if evaluator_cls is None:
        raise ValueError(f"unknown evolving evaluation method {method!r}")
    # RS/SS run the position surface on the columnar backend (appended CSR
    # segments over a DeltaStore view); the Baseline re-annotates Triples and
    # therefore always runs the object surface.
    surface = "position" if backend == "columnar" and method != "Baseline" else "object"
    return evaluator_cls(base, config=config, seed=seed, surface=surface)


# --------------------------------------------------------------------------- #
# Figure 8 — single batch of update
# --------------------------------------------------------------------------- #
def figure8_single_update(
    num_trials: int = 10,
    seed: int = 0,
    movie_scale: float = 0.01,
    base_fraction: float = 0.5,
    base_accuracy: float = 0.9,
    update_size_fractions: tuple[float, ...] = (0.1, 0.2, 0.3, 0.5),
    update_accuracies: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8),
    fixed_update_accuracy: float = 0.9,
    fixed_update_fraction: float = 0.5,
    methods: tuple[str, ...] = ("Baseline", "RS", "SS"),
    backend: str = "memory",
) -> dict[str, list[dict[str, object]]]:
    """Figure 8: evaluation cost after one update batch.

    Two sweeps are produced, as in the paper: the update *size* varies at fixed
    90 % update accuracy (Figure 8-1), and the update *accuracy* varies at a
    fixed size of 50 % of the base (Figure 8-2).  The reported cost of each
    method is the incremental annotation time spent to re-certify the evolved
    KG (the base evaluation is excluded, identically for every method).
    """

    def run_one(
        method: str, update_fraction: float, update_accuracy: float, trial_seed: int
    ) -> dict[str, float]:
        base = _make_base(trial_seed, movie_scale, base_fraction, base_accuracy, backend)
        config = EvaluationConfig(moe_target=0.05, confidence_level=0.95)
        evaluator = _make_evaluator(method, base, config, trial_seed, backend)
        evaluator.evaluate_base()
        workload = UpdateWorkloadGenerator(base, seed=trial_seed)
        update_size = max(1, int(round(update_fraction * base.graph.num_triples)))
        batch, batch_oracle = workload.generate_batch(update_size, update_accuracy)
        evaluation = evaluator.apply_update(batch, batch_oracle)
        true_accuracy = evaluator.current_true_accuracy()
        return {
            "update_cost_hours": evaluation.incremental_cost_hours,
            "accuracy_estimate": evaluation.accuracy,
            "true_accuracy": true_accuracy,
            "estimation_error": abs(evaluation.accuracy - true_accuracy),
            "moe": evaluation.report.margin_of_error,
        }

    varying_size: list[dict[str, object]] = []
    for update_fraction in update_size_fractions:
        for method in methods:

            def trial(
                trial_seed: int, method=method, update_fraction=update_fraction
            ) -> dict[str, float]:
                return run_one(method, update_fraction, fixed_update_accuracy, trial_seed)

            stats = run_trials(trial, num_trials, base_seed=seed)
            row: dict[str, object] = {
                "update_fraction": update_fraction,
                "update_accuracy": fixed_update_accuracy,
                "method": method,
            }
            row.update({name: value.mean for name, value in stats.items()})
            row.update({f"{name}_std": value.std for name, value in stats.items()})
            varying_size.append(row)

    varying_accuracy: list[dict[str, object]] = []
    for update_accuracy in update_accuracies:
        for method in methods:

            def trial(
                trial_seed: int, method=method, update_accuracy=update_accuracy
            ) -> dict[str, float]:
                return run_one(method, fixed_update_fraction, update_accuracy, trial_seed)

            stats = run_trials(trial, num_trials, base_seed=seed)
            row = {
                "update_fraction": fixed_update_fraction,
                "update_accuracy": update_accuracy,
                "method": method,
            }
            row.update({name: value.mean for name, value in stats.items()})
            row.update({f"{name}_std": value.std for name, value in stats.items()})
            varying_accuracy.append(row)

    return {"varying_size": varying_size, "varying_accuracy": varying_accuracy}


# --------------------------------------------------------------------------- #
# Figure 9 — sequence of updates
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SequenceTrajectory:
    """The accuracy trajectory of one evaluator over a sequence of updates."""

    method: str
    batch_index: tuple[int, ...]
    estimated_accuracy: tuple[float, ...]
    true_accuracy: tuple[float, ...]
    cumulative_cost_hours: tuple[float, ...]

    @property
    def final_error(self) -> float:
        """Absolute estimation error after the last update batch."""
        return abs(self.estimated_accuracy[-1] - self.true_accuracy[-1])

    @property
    def mean_error(self) -> float:
        """Mean absolute estimation error across the sequence."""
        errors = [
            abs(estimate - truth)
            for estimate, truth in zip(self.estimated_accuracy, self.true_accuracy)
        ]
        return float(np.mean(errors))


def _run_trajectory(
    method: str,
    base: LabelledKG,
    config: EvaluationConfig,
    num_batches: int,
    batch_fraction: float,
    update_accuracy: float,
    seed: int,
    backend: str = "memory",
) -> SequenceTrajectory:
    evaluator = _make_evaluator(method, base, config, seed, backend)
    monitor = EvolvingAccuracyMonitor(evaluator)
    monitor.evaluate_base()
    workload = UpdateWorkloadGenerator(base, seed=seed)
    batch_size = max(1, int(round(batch_fraction * base.graph.num_triples)))
    for batch, batch_oracle in workload.generate_sequence(num_batches, batch_size, update_accuracy):
        monitor.apply_update(batch, batch_oracle)
    records = monitor.records
    return SequenceTrajectory(
        method=method,
        batch_index=tuple(record.batch_index for record in records),
        estimated_accuracy=tuple(record.estimated_accuracy for record in records),
        true_accuracy=tuple(record.true_accuracy for record in records),
        cumulative_cost_hours=tuple(record.cumulative_cost_hours for record in records),
    )


def figure9_update_sequence(
    num_trials: int = 5,
    seed: int = 0,
    movie_scale: float = 0.005,
    base_fraction: float = 0.5,
    base_accuracy: float = 0.9,
    num_batches: int = 30,
    batch_fraction: float = 0.1,
    update_accuracy: float = 0.9,
    methods: tuple[str, ...] = ("RS", "SS"),
    progress: Callable[[str], None] | None = None,
    backend: str = "memory",
) -> dict[str, object]:
    """Figure 9: accuracy tracking over a sequence of update batches.

    Returns the per-method mean trajectory across trials (Figure 9-1) plus the
    single trial with the largest initial over-estimation and the single trial
    with the largest initial under-estimation (Figures 9-2 and 9-3), which is
    how the paper illustrates the fault-tolerance difference between RS and SS.
    """
    config = EvaluationConfig(moe_target=0.05, confidence_level=0.95)
    trajectories: dict[str, list[SequenceTrajectory]] = {method: [] for method in methods}
    for trial_index in range(num_trials):
        trial_seed = seed + trial_index
        base = _make_base(trial_seed, movie_scale, base_fraction, base_accuracy, backend)
        for method in methods:
            if progress is not None:
                progress(f"trial {trial_index} method {method}")
            trajectories[method].append(
                _run_trajectory(
                    method,
                    base,
                    config,
                    num_batches,
                    batch_fraction,
                    update_accuracy,
                    trial_seed,
                    backend,
                )
            )

    def mean_trajectory(items: list[SequenceTrajectory]) -> dict[str, object]:
        estimates = np.array([item.estimated_accuracy for item in items])
        truths = np.array([item.true_accuracy for item in items])
        costs = np.array([item.cumulative_cost_hours for item in items])
        return {
            "batch_index": list(items[0].batch_index),
            "estimated_accuracy_mean": estimates.mean(axis=0).tolist(),
            "estimated_accuracy_std": estimates.std(axis=0, ddof=0).tolist(),
            "true_accuracy_mean": truths.mean(axis=0).tolist(),
            "cumulative_cost_hours_mean": costs.mean(axis=0).tolist(),
        }

    result: dict[str, object] = {"mean": {}, "overestimation_run": {}, "underestimation_run": {}}
    for method, items in trajectories.items():
        result["mean"][method] = mean_trajectory(items)
        initial_errors = [item.estimated_accuracy[0] - item.true_accuracy[0] for item in items]
        over_index = int(np.argmax(initial_errors))
        under_index = int(np.argmin(initial_errors))
        result["overestimation_run"][method] = trajectories[method][over_index]
        result["underestimation_run"][method] = trajectories[method][under_index]
    return result
