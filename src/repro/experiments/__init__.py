"""Reproduction harness: one entry point per table and figure of the paper.

Every function returns plain data (lists of dictionaries / small dataclasses)
so it can be consumed programmatically by the benchmarks and tests, and every
result can be rendered as a text table with
:func:`repro.experiments.report.format_table`.

Static-KG experiments (Section 7.2):

* :func:`~repro.experiments.static_experiments.figure1_cost_curves`
* :func:`~repro.experiments.static_experiments.figure3_accuracy_vs_size`
* :func:`~repro.experiments.static_experiments.figure4_cost_fit`
* :func:`~repro.experiments.static_experiments.table4_movie_cost`
* :func:`~repro.experiments.static_experiments.table5_static_comparison`
* :func:`~repro.experiments.static_experiments.table6_kgeval_comparison`
* :func:`~repro.experiments.static_experiments.figure5_confidence_sweep`
* :func:`~repro.experiments.static_experiments.figure6_optimal_m`
* :func:`~repro.experiments.static_experiments.table7_stratification`
* :func:`~repro.experiments.static_experiments.figure7_scalability`

Evolving-KG experiments (Section 7.3):

* :func:`~repro.experiments.evolving_experiments.figure8_single_update`
* :func:`~repro.experiments.evolving_experiments.figure9_update_sequence`
"""

from repro.experiments.evolving_experiments import figure8_single_update, figure9_update_sequence
from repro.experiments.harness import TrialStatistics, run_trials
from repro.experiments.report import format_table
from repro.experiments.static_experiments import (
    figure1_cost_curves,
    figure3_accuracy_vs_size,
    figure4_cost_fit,
    figure5_confidence_sweep,
    figure6_optimal_m,
    figure7_scalability,
    table3_dataset_characteristics,
    table4_movie_cost,
    table5_static_comparison,
    table6_kgeval_comparison,
    table7_stratification,
)

__all__ = [
    "run_trials",
    "TrialStatistics",
    "format_table",
    "table3_dataset_characteristics",
    "figure1_cost_curves",
    "figure3_accuracy_vs_size",
    "figure4_cost_fit",
    "table4_movie_cost",
    "table5_static_comparison",
    "table6_kgeval_comparison",
    "figure5_confidence_sweep",
    "figure6_optimal_m",
    "table7_stratification",
    "figure7_scalability",
    "figure8_single_update",
    "figure9_update_sequence",
]
