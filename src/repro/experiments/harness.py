"""Running repeated randomised trials and aggregating their statistics.

The paper reports every sampling-based number as an average (with standard
deviation) over 1000 random runs.  :func:`run_trials` provides the same
machinery with a configurable trial count so the benchmark suite can trade
precision for wall-clock time.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["TrialStatistics", "run_trials", "aggregate"]


@dataclass(frozen=True)
class TrialStatistics:
    """Mean and spread of one scalar metric across repeated trials."""

    mean: float
    std: float
    minimum: float
    maximum: float
    num_trials: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f}±{self.std:.3f}"


def aggregate(values: Sequence[float]) -> TrialStatistics:
    """Aggregate a sequence of per-trial values into summary statistics."""
    if not values:
        raise ValueError("values must be non-empty")
    array = np.asarray(values, dtype=float)
    return TrialStatistics(
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        maximum=float(array.max()),
        num_trials=int(array.size),
    )


def run_trials(
    trial: Callable[[int], Mapping[str, float]],
    num_trials: int,
    base_seed: int = 0,
) -> dict[str, TrialStatistics]:
    """Run ``trial(seed)`` for ``num_trials`` different seeds and aggregate.

    Parameters
    ----------
    trial:
        A callable mapping a seed to a dict of scalar metrics.  Every trial
        must return the same set of metric names.
    num_trials:
        Number of repetitions.
    base_seed:
        Seeds used are ``base_seed, base_seed + 1, …``.

    Returns
    -------
    dict
        Metric name → :class:`TrialStatistics` across the trials.
    """
    if num_trials < 1:
        raise ValueError("num_trials must be at least 1")
    collected: dict[str, list[float]] = {}
    for index in range(num_trials):
        metrics = trial(base_seed + index)
        for name, value in metrics.items():
            collected.setdefault(name, []).append(float(value))
    incomplete = {
        name: len(values) for name, values in collected.items() if len(values) != num_trials
    }
    if incomplete:
        raise ValueError(f"trials returned inconsistent metric sets: {incomplete}")
    return {name: aggregate(values) for name, values in collected.items()}
