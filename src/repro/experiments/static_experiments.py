"""Static-KG experiments: Figures 1, 3, 4, 5, 6, 7 and Tables 4, 5, 6, 7.

Every function is self-contained: it builds (synthetic stand-ins for) the
paper's datasets, runs the relevant evaluation procedures over a configurable
number of randomised trials and returns rows shaped like the corresponding
table or figure series in the paper.  Trial counts and dataset scales default
to laptop-friendly values; pass larger ones to tighten the aggregates (the
paper uses 1000 trials).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.kgeval import KGEvalBaseline
from repro.core.config import EvaluationConfig
from repro.core.framework import StaticEvaluator
from repro.cost.annotator import SimulatedAnnotator
from repro.cost.fitting import CostFit, CostObservation, fit_cost_model
from repro.cost.model import CostModel
from repro.experiments.harness import TrialStatistics, run_trials
from repro.generators.datasets import (
    LabelledKG,
    make_movie_full_like,
    make_movie_like,
    make_movie_syn,
    make_nell_like,
    make_yago_like,
)
from repro.kg.statistics import entity_accuracy_by_size, size_accuracy_correlation
from repro.kg.triple import Triple
from repro.sampling.base import SamplingDesign
from repro.sampling.optimal import (
    expected_twcs_cost_seconds,
    optimal_second_stage_size,
    required_twcs_cluster_draws,
)
from repro.sampling.rcs import RandomClusterDesign
from repro.sampling.srs import SimpleRandomDesign
from repro.sampling.stratification import stratify_by_oracle_accuracy, stratify_by_size
from repro.sampling.stratified import StratifiedTWCSDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.sampling.wcs import WeightedClusterDesign

__all__ = [
    "table3_dataset_characteristics",
    "figure1_cost_curves",
    "figure3_accuracy_vs_size",
    "figure4_cost_fit",
    "table4_movie_cost",
    "table5_static_comparison",
    "table6_kgeval_comparison",
    "figure5_confidence_sweep",
    "figure6_optimal_m",
    "table7_stratification",
    "figure7_scalability",
]

#: Default second-stage cap used when an experiment does not search for the
#: optimal m; Section 7.2.2 finds the optimum in the 3–5 range for every KG.
DEFAULT_SECOND_STAGE_SIZE = 5


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #
def _dataset(name: str, seed: int, movie_scale: float = 0.02) -> LabelledKG:
    """Build one of the paper's datasets (synthetic stand-in) by name."""
    normalised = name.upper()
    if normalised == "NELL":
        return make_nell_like(seed=seed)
    if normalised == "YAGO":
        return make_yago_like(seed=seed)
    if normalised == "MOVIE":
        return make_movie_like(seed=seed, scale=movie_scale)
    if normalised == "MOVIE-SYN":
        return make_movie_syn(seed=seed, scale=movie_scale)
    raise ValueError(f"unknown dataset {name!r}")


def _run_static(
    design: SamplingDesign,
    data: LabelledKG,
    config: EvaluationConfig,
    seed: int,
) -> dict[str, float]:
    """Run one static evaluation and return the metrics every table reports."""
    annotator = SimulatedAnnotator(data.oracle, seed=seed)
    report = StaticEvaluator(design, annotator, config).run()
    return {
        "accuracy_estimate": report.accuracy,
        "annotation_hours": report.annotation_cost_hours,
        "num_triples": float(report.num_triples_annotated),
        "num_entities": float(report.num_entities_identified),
        "num_units": float(report.num_units),
        "moe": report.margin_of_error,
        "estimation_error": abs(report.accuracy - data.true_accuracy),
    }


def _make_design(
    method: str,
    data: LabelledKG,
    seed: int,
    second_stage_size: int = DEFAULT_SECOND_STAGE_SIZE,
    num_strata: int = 4,
) -> SamplingDesign:
    """Instantiate a sampling design by its name as used in the paper's tables."""
    graph = data.graph
    normalised = method.upper()
    if normalised == "SRS":
        return SimpleRandomDesign(graph, seed=seed)
    if normalised == "RCS":
        return RandomClusterDesign(graph, seed=seed)
    if normalised == "WCS":
        return WeightedClusterDesign(graph, seed=seed)
    if normalised == "TWCS":
        return TwoStageWeightedClusterDesign(graph, second_stage_size, seed=seed)
    if normalised == "TWCS+SIZE":
        strata = stratify_by_size(graph, num_strata)
        return StratifiedTWCSDesign(graph, strata, second_stage_size, seed=seed)
    if normalised == "TWCS+ORACLE":
        strata = stratify_by_oracle_accuracy(
            graph, data.oracle.cluster_accuracies(graph), num_strata
        )
        return StratifiedTWCSDesign(graph, strata, second_stage_size, seed=seed)
    raise ValueError(f"unknown sampling method {method!r}")


def _stats_row(stats: dict[str, TrialStatistics]) -> dict[str, float]:
    """Flatten a metric→statistics mapping into a mean/std row."""
    row: dict[str, float] = {}
    for name, value in stats.items():
        row[name] = value.mean
        row[f"{name}_std"] = value.std
    return row


# --------------------------------------------------------------------------- #
# Table 3 — data characteristics of the evaluation datasets
# --------------------------------------------------------------------------- #
def table3_dataset_characteristics(
    seed: int = 0, movie_scale: float = 0.02
) -> list[dict[str, object]]:
    """Table 3: entities, triples, average cluster size and gold accuracy per dataset.

    The published values are included in each row (``paper_*`` columns) so the
    synthetic stand-ins can be compared against the real datasets at a glance.
    MOVIE-FULL is summarised at the same scaled size used by the Figure 7
    harness rather than the 130 M-triple original.
    """
    published = {
        "NELL": {"paper_entities": 817, "paper_triples": 1_860, "paper_accuracy": 0.91},
        "YAGO": {"paper_entities": 822, "paper_triples": 1_386, "paper_accuracy": 0.99},
        "MOVIE": {"paper_entities": 288_770, "paper_triples": 2_653_870, "paper_accuracy": 0.90},
    }
    rows: list[dict[str, object]] = []
    for name, reference in published.items():
        data = _dataset(name, seed, movie_scale)
        from repro.kg.statistics import cluster_size_summary

        summary = cluster_size_summary(data.graph)
        row: dict[str, object] = {
            "dataset": data.graph.name,
            "num_entities": summary.num_entities,
            "num_triples": summary.num_triples,
            "avg_cluster_size": summary.mean_size,
            "gold_accuracy": data.true_accuracy,
        }
        row.update(reference)
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Figure 1 — annotation cost of triple-level vs entity-level tasks
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Figure1Result:
    """Cumulative annotation-time curves for the two task types of Figure 1."""

    triple_level_seconds: tuple[float, ...]
    entity_level_seconds: tuple[float, ...]
    num_triples: int
    entity_level_num_entities: int

    @property
    def triple_level_total_hours(self) -> float:
        """Total time of the triple-level task in hours."""
        return self.triple_level_seconds[-1] / 3600.0 if self.triple_level_seconds else 0.0

    @property
    def entity_level_total_hours(self) -> float:
        """Total time of the entity-level task in hours."""
        return self.entity_level_seconds[-1] / 3600.0 if self.entity_level_seconds else 0.0


def figure1_cost_curves(
    seed: int = 0,
    num_triples: int = 50,
    triples_per_cluster: int = 5,
    movie_scale: float = 0.01,
    time_noise_sigma: float = 0.25,
) -> Figure1Result:
    """Figure 1: cumulative evaluation time, triple-level vs entity-level task.

    The triple-level task draws ``num_triples`` triples with distinct subjects;
    the entity-level task draws random clusters and up to
    ``triples_per_cluster`` triples from each until the same number of triples
    is reached (the paper uses 50 triples from 11 clusters).
    """
    data = make_movie_like(seed=seed, scale=movie_scale)
    rng = np.random.default_rng(seed)

    # Triple-level task: 50 random triples with all-distinct subjects.
    triple_level: list[Triple] = []
    seen_subjects: set[str] = set()
    for triple in data.graph.sample_triples(min(10 * num_triples, data.graph.num_triples), rng):
        if triple.subject in seen_subjects:
            continue
        triple_level.append(triple)
        seen_subjects.add(triple.subject)
        if len(triple_level) == num_triples:
            break

    # Entity-level task: random clusters, at most `triples_per_cluster` each.
    entity_level: list[Triple] = []
    entity_ids = list(data.graph.entity_ids)
    rng.shuffle(entity_ids)
    used_entities = 0
    for entity_id in entity_ids:
        if len(entity_level) >= num_triples:
            break
        chosen = data.graph.sample_cluster_triples(entity_id, triples_per_cluster, rng)
        chosen = chosen[: num_triples - len(entity_level)]
        if chosen:
            entity_level.extend(chosen)
            used_entities += 1

    annotator = SimulatedAnnotator(data.oracle, time_noise_sigma=time_noise_sigma, seed=seed)
    _, triple_timeline = annotator.annotate_with_timeline(triple_level)
    annotator.reset()
    _, entity_timeline = annotator.annotate_with_timeline(entity_level)
    return Figure1Result(
        triple_level_seconds=tuple(triple_timeline),
        entity_level_seconds=tuple(entity_timeline),
        num_triples=num_triples,
        entity_level_num_entities=used_entities,
    )


# --------------------------------------------------------------------------- #
# Figure 3 — entity accuracy vs cluster size
# --------------------------------------------------------------------------- #
def figure3_accuracy_vs_size(seed: int = 0) -> dict[str, dict[str, object]]:
    """Figure 3: per-entity (cluster size, accuracy) scatter for NELL and YAGO.

    Returns, per dataset, the scatter points and the Pearson correlation — the
    paper's qualitative claim is that the correlation is positive (larger
    clusters are more accurate).
    """
    results: dict[str, dict[str, object]] = {}
    for name in ("NELL", "YAGO"):
        data = _dataset(name, seed)
        labels = data.oracle.as_dict()
        points = entity_accuracy_by_size(data.graph, labels)
        results[name] = {
            "points": [(size, accuracy) for _, size, accuracy in points],
            "correlation": size_accuracy_correlation(data.graph, labels),
            "true_accuracy": data.true_accuracy,
        }
    return results


# --------------------------------------------------------------------------- #
# Figure 4 — cost-function fitting
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Figure4Result:
    """Observed vs fitted annotation times for a set of evaluation tasks."""

    observations: tuple[CostObservation, ...]
    fit: CostFit
    predicted_seconds: tuple[float, ...]


def figure4_cost_fit(
    seed: int = 0,
    num_tasks: int = 12,
    movie_scale: float = 0.01,
    time_noise_sigma: float = 0.2,
) -> Figure4Result:
    """Figure 4: fit Eq. (4) to observed task times and report the fit quality.

    Tasks of varying composition (from all-distinct subjects to heavily
    clustered) are annotated with per-step timing noise; the (c1, c2) fit
    should land near the true cost-model parameters and the fitted curve near
    the observed times.
    """
    data = make_movie_like(seed=seed, scale=movie_scale)
    rng = np.random.default_rng(seed)
    true_model = CostModel()
    observations: list[CostObservation] = []
    for task_index in range(num_tasks):
        annotator = SimulatedAnnotator(
            data.oracle,
            cost_model=true_model,
            time_noise_sigma=time_noise_sigma,
            seed=seed + task_index,
        )
        # Alternate between scattered and clustered task compositions.
        per_cluster = 1 + (task_index % 6)
        total = 20 + 5 * (task_index % 5)
        triples: list[Triple] = []
        entity_ids = list(data.graph.entity_ids)
        rng.shuffle(entity_ids)
        for entity_id in entity_ids:
            if len(triples) >= total:
                break
            chosen = data.graph.sample_cluster_triples(entity_id, per_cluster, rng)
            triples.extend(chosen[: total - len(triples)])
        result = annotator.annotate_triples(triples)
        observations.append(
            CostObservation(
                num_entities=result.newly_identified_entities,
                num_triples=result.num_triples,
                observed_seconds=result.cost_seconds,
            )
        )
    fit = fit_cost_model(observations)
    predicted = tuple(
        fit.model.cost_seconds(obs.num_entities, obs.num_triples) for obs in observations
    )
    return Figure4Result(observations=tuple(observations), fit=fit, predicted_seconds=predicted)


# --------------------------------------------------------------------------- #
# Table 4 — manual evaluation cost on MOVIE (SRS vs TWCS)
# --------------------------------------------------------------------------- #
def table4_movie_cost(
    num_trials: int = 20,
    seed: int = 0,
    movie_scale: float = 0.02,
    twcs_second_stage_size: int = 10,
) -> list[dict[str, object]]:
    """Table 4: annotation cost of the MOVIE accuracy evaluation, SRS vs TWCS (m=10)."""
    config = EvaluationConfig(moe_target=0.05, confidence_level=0.95)
    rows: list[dict[str, object]] = []
    for method, m in (("SRS", 1), ("TWCS", twcs_second_stage_size)):

        def trial(trial_seed: int, method=method, m=m) -> dict[str, float]:
            data = _dataset("MOVIE", seed, movie_scale)
            design = _make_design(method, data, trial_seed, second_stage_size=m)
            return _run_static(design, data, config, trial_seed)

        stats = run_trials(trial, num_trials, base_seed=seed)
        row: dict[str, object] = {"method": method if method == "SRS" else f"TWCS (m={m})"}
        row.update(_stats_row(stats))
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 5 — SRS / RCS / WCS / TWCS on MOVIE, NELL, YAGO
# --------------------------------------------------------------------------- #
def table5_static_comparison(
    num_trials: int = 20,
    seed: int = 0,
    movie_scale: float = 0.02,
    datasets: tuple[str, ...] = ("MOVIE", "NELL", "YAGO"),
    methods: tuple[str, ...] = ("SRS", "RCS", "WCS", "TWCS"),
    second_stage_size: int = DEFAULT_SECOND_STAGE_SIZE,
) -> list[dict[str, object]]:
    """Table 5: annotation hours and estimates of the four designs on each KG."""
    config = EvaluationConfig(moe_target=0.05, confidence_level=0.95)
    rows: list[dict[str, object]] = []
    for dataset_name in datasets:
        reference = _dataset(dataset_name, seed, movie_scale)
        for method in methods:

            def trial(
                trial_seed: int, dataset_name=dataset_name, method=method
            ) -> dict[str, float]:
                data = _dataset(dataset_name, seed, movie_scale)
                design = _make_design(method, data, trial_seed, second_stage_size)
                return _run_static(design, data, config, trial_seed)

            stats = run_trials(trial, num_trials, base_seed=seed)
            row: dict[str, object] = {
                "dataset": dataset_name,
                "method": method,
                "gold_accuracy": reference.true_accuracy,
            }
            row.update(_stats_row(stats))
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 6 — TWCS vs KGEval on NELL and YAGO
# --------------------------------------------------------------------------- #
def table6_kgeval_comparison(
    num_trials: int = 5,
    seed: int = 0,
    datasets: tuple[str, ...] = ("NELL", "YAGO"),
    second_stage_size: int = DEFAULT_SECOND_STAGE_SIZE,
) -> list[dict[str, object]]:
    """Table 6: machine time, triples annotated, hours and estimates for both systems."""
    config = EvaluationConfig(moe_target=0.05, confidence_level=0.95)
    rows: list[dict[str, object]] = []
    for dataset_name in datasets:
        reference = _dataset(dataset_name, seed)

        def kgeval_trial(trial_seed: int, dataset_name=dataset_name) -> dict[str, float]:
            data = _dataset(dataset_name, seed)
            annotator = SimulatedAnnotator(data.oracle, seed=trial_seed)
            baseline = KGEvalBaseline(data.graph, annotator)
            result = baseline.run()
            return {
                "accuracy_estimate": result.estimated_accuracy,
                "annotation_hours": result.annotation_cost_hours,
                "num_triples": float(result.num_annotated),
                "machine_time_seconds": result.machine_time_seconds,
                "estimation_error": abs(result.estimated_accuracy - data.true_accuracy),
            }

        def twcs_trial(trial_seed: int, dataset_name=dataset_name) -> dict[str, float]:
            data = _dataset(dataset_name, seed)
            design = _make_design("TWCS", data, trial_seed, second_stage_size)
            metrics = _run_static(design, data, config, trial_seed)
            metrics["machine_time_seconds"] = 0.0
            return metrics

        for method, trial in (("KGEval", kgeval_trial), ("TWCS", twcs_trial)):
            stats = run_trials(trial, num_trials, base_seed=seed)
            row: dict[str, object] = {
                "dataset": dataset_name,
                "method": method,
                "gold_accuracy": reference.true_accuracy,
            }
            row.update(_stats_row(stats))
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Figure 5 — sample size and evaluation time vs confidence level
# --------------------------------------------------------------------------- #
def figure5_confidence_sweep(
    num_trials: int = 20,
    seed: int = 0,
    movie_scale: float = 0.02,
    datasets: tuple[str, ...] = ("MOVIE", "NELL", "YAGO"),
    confidence_levels: tuple[float, ...] = (0.90, 0.95, 0.99),
    second_stage_size: int = DEFAULT_SECOND_STAGE_SIZE,
) -> list[dict[str, object]]:
    """Figure 5: SRS vs TWCS sample sizes and times as the confidence level varies.

    Each row carries the per-method aggregates plus the cost-reduction ratio of
    TWCS over SRS (the number printed on top of the bars in Figure 5-2).
    """
    rows: list[dict[str, object]] = []
    for dataset_name in datasets:
        for confidence in confidence_levels:
            config = EvaluationConfig(moe_target=0.05, confidence_level=confidence)
            per_method: dict[str, dict[str, TrialStatistics]] = {}
            for method in ("SRS", "TWCS"):

                def trial(
                    trial_seed: int,
                    dataset_name=dataset_name,
                    method=method,
                    config=config,
                ) -> dict[str, float]:
                    data = _dataset(dataset_name, seed, movie_scale)
                    design = _make_design(method, data, trial_seed, second_stage_size)
                    return _run_static(design, data, config, trial_seed)

                per_method[method] = run_trials(trial, num_trials, base_seed=seed)
            srs_hours = per_method["SRS"]["annotation_hours"].mean
            twcs_hours = per_method["TWCS"]["annotation_hours"].mean
            reduction = 0.0 if srs_hours == 0 else 1.0 - twcs_hours / srs_hours
            for method, stats in per_method.items():
                row: dict[str, object] = {
                    "dataset": dataset_name,
                    "confidence_level": confidence,
                    "method": method,
                    "cost_reduction_vs_srs": reduction if method == "TWCS" else 0.0,
                }
                row.update(_stats_row(stats))
                rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Figure 6 — optimal second-stage size m
# --------------------------------------------------------------------------- #
def figure6_optimal_m(
    num_trials: int = 10,
    seed: int = 0,
    movie_scale: float = 0.01,
    m_values: tuple[int, ...] = (1, 2, 3, 5, 8, 10, 15, 20),
    datasets: tuple[str, ...] = ("NELL", "MOVIE-SYN-weak", "MOVIE-SYN-strong"),
) -> list[dict[str, object]]:
    """Figure 6: TWCS sample size and cost as the second-stage size m varies.

    ``MOVIE-SYN-weak`` uses the paper's default BMM parameters
    (c=0.01, σ=0.1 — weak size/accuracy coupling); ``MOVIE-SYN-strong`` uses a
    larger c (0.5) so cluster accuracies are strongly size-determined.  Each
    row also carries the SRS reference and the theoretical cost band (upper
    bound: all clusters larger than m; lower bound: all clusters of size 1).
    """
    config = EvaluationConfig(moe_target=0.05, confidence_level=0.95)
    cost_model = CostModel()
    rows: list[dict[str, object]] = []
    for dataset_name in datasets:

        def build(trial_seed: int, dataset_name=dataset_name) -> LabelledKG:
            if dataset_name == "NELL":
                return make_nell_like(seed=seed)
            if dataset_name == "MOVIE-SYN-weak":
                return make_movie_syn(c=0.01, sigma=0.1, seed=seed, scale=movie_scale)
            if dataset_name == "MOVIE-SYN-strong":
                return make_movie_syn(c=0.5, sigma=0.1, seed=seed, scale=movie_scale)
            raise ValueError(f"unknown dataset {dataset_name!r}")

        reference = build(seed)
        sizes = [cluster.size for cluster in reference.graph.clusters()]
        accuracies = [
            reference.oracle.cluster_accuracy(reference.graph, entity_id)
            for entity_id in reference.graph.entity_ids
        ]

        def srs_trial(trial_seed: int, dataset_name=dataset_name) -> dict[str, float]:
            data = build(trial_seed)
            design = _make_design("SRS", data, trial_seed)
            return _run_static(design, data, config, trial_seed)

        srs_stats = run_trials(srs_trial, num_trials, base_seed=seed)

        for m in m_values:

            def twcs_trial(trial_seed: int, dataset_name=dataset_name, m=m) -> dict[str, float]:
                data = build(trial_seed)
                design = _make_design("TWCS", data, trial_seed, second_stage_size=m)
                return _run_static(design, data, config, trial_seed)

            stats = run_trials(twcs_trial, num_trials, base_seed=seed)
            theoretical_draws = required_twcs_cluster_draws(
                sizes, accuracies, m, config.moe_target, config.confidence_level
            )
            upper_cost = expected_twcs_cost_seconds(theoretical_draws, m, cost_model) / 3600.0
            lower_cost = expected_twcs_cost_seconds(theoretical_draws, 1, cost_model) / 3600.0
            row: dict[str, object] = {
                "dataset": dataset_name,
                "m": m,
                "srs_annotation_hours": srs_stats["annotation_hours"].mean,
                "srs_num_triples": srs_stats["num_triples"].mean,
                "theoretical_cluster_draws": float(theoretical_draws),
                "theoretical_cost_upper_hours": upper_cost,
                "theoretical_cost_lower_hours": lower_cost,
            }
            row.update(_stats_row(stats))
            rows.append(row)

        optimum = optimal_second_stage_size(
            sizes, accuracies, cost_model, config.moe_target, config.confidence_level
        )
        rows.append(
            {
                "dataset": dataset_name,
                "m": optimum.second_stage_size,
                "optimal": True,
                "theoretical_cluster_draws": float(optimum.num_cluster_draws),
                "theoretical_cost_upper_hours": optimum.expected_cost_hours,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Table 7 — TWCS with stratification
# --------------------------------------------------------------------------- #
def table7_stratification(
    num_trials: int = 20,
    seed: int = 0,
    movie_scale: float = 0.02,
    datasets: tuple[str, ...] = ("NELL", "MOVIE-SYN", "MOVIE"),
    second_stage_size: int = DEFAULT_SECOND_STAGE_SIZE,
) -> list[dict[str, object]]:
    """Table 7: SRS, TWCS, TWCS + size stratification and TWCS + oracle stratification."""
    config = EvaluationConfig(moe_target=0.05, confidence_level=0.95)
    rows: list[dict[str, object]] = []
    for dataset_name in datasets:
        reference = _dataset(dataset_name, seed, movie_scale)
        num_strata = 2 if dataset_name == "NELL" else 4
        for method in ("SRS", "TWCS", "TWCS+SIZE", "TWCS+ORACLE"):

            def trial(
                trial_seed: int,
                dataset_name=dataset_name,
                method=method,
                num_strata=num_strata,
            ) -> dict[str, float]:
                data = _dataset(dataset_name, seed, movie_scale)
                design = _make_design(
                    method, data, trial_seed, second_stage_size, num_strata=num_strata
                )
                return _run_static(design, data, config, trial_seed)

            stats = run_trials(trial, num_trials, base_seed=seed)
            row: dict[str, object] = {
                "dataset": dataset_name,
                "method": method,
                "gold_accuracy": reference.true_accuracy,
                "num_strata": num_strata if "+" in method else 1,
            }
            row.update(_stats_row(stats))
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Figure 7 — scalability of TWCS
# --------------------------------------------------------------------------- #
def figure7_scalability(
    num_trials: int = 5,
    seed: int = 0,
    triple_counts: tuple[int, ...] = (26_000, 52_000, 104_000, 208_000),
    accuracies: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    accuracy_sweep_triples: int = 52_000,
    second_stage_size: int = DEFAULT_SECOND_STAGE_SIZE,
) -> dict[str, list[dict[str, object]]]:
    """Figure 7: TWCS cost vs KG size (left) and vs overall accuracy (right).

    The paper sweeps 26 M–130 M triples on MOVIE-FULL; the default here keeps
    the same 1×/2×/4×/8× progression at 1/1000 scale (pass the paper's sizes
    to regenerate the full sweep — the code path is identical).  The expected
    shapes: cost flat in KG size, peaked at 50 % accuracy.
    """
    config = EvaluationConfig(moe_target=0.05, confidence_level=0.95)
    size_rows: list[dict[str, object]] = []
    for num_triples in triple_counts:

        def size_trial(trial_seed: int, num_triples=num_triples) -> dict[str, float]:
            data = make_movie_full_like(num_triples=num_triples, accuracy=0.9, seed=seed)
            design = _make_design("TWCS", data, trial_seed, second_stage_size)
            return _run_static(design, data, config, trial_seed)

        stats = run_trials(size_trial, num_trials, base_seed=seed)
        row: dict[str, object] = {"num_triples_in_kg": num_triples, "accuracy": 0.9}
        row.update(_stats_row(stats))
        size_rows.append(row)

    accuracy_rows: list[dict[str, object]] = []
    for accuracy in accuracies:

        def accuracy_trial(trial_seed: int, accuracy=accuracy) -> dict[str, float]:
            data = make_movie_full_like(
                num_triples=accuracy_sweep_triples, accuracy=accuracy, seed=seed
            )
            design = _make_design("TWCS", data, trial_seed, second_stage_size)
            return _run_static(design, data, config, trial_seed)

        stats = run_trials(accuracy_trial, num_trials, base_seed=seed)
        row = {"num_triples_in_kg": accuracy_sweep_triples, "accuracy": accuracy}
        row.update(_stats_row(stats))
        accuracy_rows.append(row)

    return {"varying_size": size_rows, "varying_accuracy": accuracy_rows}
