"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows the paper's tables report;
:func:`format_table` turns a list of row dictionaries into an aligned,
monospace table (no external dependencies, safe for CI logs).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell: floats rounded, other values via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Format rows as an aligned text table.

    Parameters
    ----------
    rows:
        One mapping per row.  Missing keys render as empty cells.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional title line printed above the table.
    precision:
        Decimal places used for float cells.
    """
    if not rows:
        return title or "(no rows)"
    column_names = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [
        [format_value(row.get(column, ""), precision) for column in column_names]
        for row in rows
    ]
    widths = [
        max(len(column_names[i]), *(len(row[i]) for row in rendered))
        for i in range(len(column_names))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(name.ljust(width) for name, width in zip(column_names, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
