"""The declarative scenario-pack format.

A *scenario* names everything one statistical stress test needs — a graph
source, a label (error) model, a cost model, the design or incremental
evaluator under test, optionally an update workload — plus the gates its
replications must pass: empirical CI coverage inside a Wilson tolerance band
around the nominal level, margin-of-error bounds, and measured annotation
cost against the :class:`~repro.cost.model.CostModel` prediction.

A *pack* is a named list of scenarios.  Packs are plain data: a Python dict,
a JSON file or a TOML file all parse through the same :func:`pack_from_dict`
path, and the built-in packs in :mod:`repro.scenarios.packs` are written in
exactly the format user packs use.  Parsing is strict — unknown keys raise,
so a typo in a pack file fails loudly instead of silently running a default.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "GraphSpec",
    "LabelSpec",
    "CostSpec",
    "WorkloadSpec",
    "FleetSessionSpec",
    "GateSpec",
    "ScenarioSpec",
    "ScenarioPack",
    "scenario_from_dict",
    "pack_from_dict",
    "load_pack_file",
]

SCENARIO_KINDS = ("static", "evolving", "deletion", "fleet")
LABEL_MODELS = ("random_error", "binomial_mixture", "calibrated", "adversarial", "dataset")
GRAPH_SOURCES = ("synthetic", "dataset")
STATIC_DESIGNS = ("srs", "rcs", "wcs", "twcs", "twcs-strat")
EVOLVING_EVALUATORS = ("rs", "ss", "baseline")
PACK_DATASETS = ("nell", "yago", "movie", "movie-syn")


def _take(mapping: Mapping[str, Any], allowed: tuple[str, ...], context: str) -> dict[str, Any]:
    """Copy ``mapping`` after rejecting keys outside ``allowed``."""
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ValueError(f"{context}: unknown keys {unknown}; allowed keys are {sorted(allowed)}")
    return dict(mapping)


@dataclass(frozen=True)
class GraphSpec:
    """Where the graph under test comes from.

    ``source="synthetic"`` feeds the sizing parameters to
    :func:`~repro.generators.synthetic_kg.generate_kg`; ``source="dataset"``
    builds one of the named dataset stand-ins (which come with their own gold
    labels, usable via the ``dataset`` label model).
    """

    source: str = "synthetic"
    num_entities: int = 400
    mean_cluster_size: float = 2.5
    size_skew: float = 0.8
    max_cluster_size: int = 200
    dataset: str | None = None
    scale: float = 0.01

    def __post_init__(self) -> None:
        if self.source not in GRAPH_SOURCES:
            raise ValueError(f"graph source must be one of {GRAPH_SOURCES}, got {self.source!r}")
        if self.source == "dataset":
            if self.dataset not in PACK_DATASETS:
                raise ValueError(
                    f"graph dataset must be one of {PACK_DATASETS}, got {self.dataset!r}"
                )
        elif self.num_entities < 1:
            raise ValueError(f"num_entities must be positive, got {self.num_entities}")

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any], context: str) -> "GraphSpec":
        return cls(
            **_take(
                raw,
                (
                    "source",
                    "num_entities",
                    "mean_cluster_size",
                    "size_skew",
                    "max_cluster_size",
                    "dataset",
                    "scale",
                ),
                context,
            )
        )


@dataclass(frozen=True)
class LabelSpec:
    """Which error model labels the graph, with its parameters.

    ``params`` is passed through to the model builder in
    :mod:`repro.scenarios.runner`; the model's own constructor validates it.
    ``model="dataset"`` reuses the gold oracle bundled with a dataset-sourced
    graph and takes no parameters.
    """

    model: str = "random_error"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.model not in LABEL_MODELS:
            raise ValueError(f"label model must be one of {LABEL_MODELS}, got {self.model!r}")
        if self.model == "dataset" and self.params:
            raise ValueError("the 'dataset' label model takes no params")

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any], context: str) -> "LabelSpec":
        data = _take(raw, ("model", "params"), context)
        return cls(model=data.get("model", "random_error"), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class CostSpec:
    """Eq. (4) cost parameters plus optional annotator fatigue drift.

    ``drift`` inflates every charged cost component by a factor
    ``1 + drift * n / 100`` where ``n`` is the number of triples the session
    has already annotated — a deterministic stand-in for annotators slowing
    down over a long session.  The cost gate widens its allowance to match.
    """

    identification_cost: float = 45.0
    validation_cost: float = 25.0
    drift: float = 0.0

    def __post_init__(self) -> None:
        if self.identification_cost < 0 or self.validation_cost < 0:
            raise ValueError("cost components must be non-negative")
        if self.drift < 0:
            raise ValueError(f"drift must be non-negative, got {self.drift}")

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any], context: str) -> "CostSpec":
        return cls(**_take(raw, ("identification_cost", "validation_cost", "drift"), context))


@dataclass(frozen=True)
class WorkloadSpec:
    """The update stream for evolving and deletion scenarios."""

    total_updates: int = 200
    num_batches: int = 4
    schedule: str = "uniform"
    update_accuracy: float = 0.8
    new_entity_fraction: float = 0.6
    deletion_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.total_updates < 1:
            raise ValueError(f"total_updates must be positive, got {self.total_updates}")
        if self.num_batches < 1:
            raise ValueError(f"num_batches must be positive, got {self.num_batches}")
        if not 0.0 <= self.update_accuracy <= 1.0:
            raise ValueError(f"update_accuracy must be in [0, 1], got {self.update_accuracy}")
        if not 0.0 <= self.deletion_fraction <= 1.0:
            raise ValueError(f"deletion_fraction must be in [0, 1], got {self.deletion_fraction}")
        # Schedule names are validated by batch_schedule at run time too, but
        # failing at parse time localises the error to the pack file.
        from repro.generators.workload import SCHEDULE_PATTERNS

        if self.schedule not in SCHEDULE_PATTERNS:
            raise ValueError(f"schedule must be one of {SCHEDULE_PATTERNS}, got {self.schedule!r}")

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any], context: str) -> "WorkloadSpec":
        return cls(
            **_take(
                raw,
                (
                    "total_updates",
                    "num_batches",
                    "schedule",
                    "update_accuracy",
                    "new_entity_fraction",
                    "deletion_fraction",
                ),
                context,
            )
        )


@dataclass(frozen=True)
class FleetSessionSpec:
    """One session of a multi-KG fleet scenario driven through ``repro serve``."""

    dataset: str = "nell"
    evaluator: str = "ss"

    def __post_init__(self) -> None:
        if self.dataset not in PACK_DATASETS:
            raise ValueError(f"fleet dataset must be one of {PACK_DATASETS}, got {self.dataset!r}")
        if self.evaluator not in EVOLVING_EVALUATORS:
            raise ValueError(
                f"fleet evaluator must be one of {EVOLVING_EVALUATORS}, got {self.evaluator!r}"
            )

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any], context: str) -> "FleetSessionSpec":
        return cls(**_take(raw, ("dataset", "evaluator"), context))


@dataclass(frozen=True)
class GateSpec:
    """The statistical gates a scenario's replications must pass.

    The coverage gate is one-sided against *under*-coverage: with ``R``
    replications of which ``h`` contained the truth, the scenario fails only
    when the upper bound of the ``gate_confidence`` Wilson interval for the
    coverage proportion lies below ``nominal - coverage_slack``.  Clipped
    intervals legitimately over-cover, so high empirical coverage is recorded
    but never failed.  ``coverage_slack`` is the documented weakness band of
    the scenario: a value above zero pins a known deficiency (e.g. the
    adversarial pack member) so that further degradation becomes a CI failure
    without pretending the estimator is better than it is.
    """

    nominal_coverage: float | None = None
    coverage_slack: float = 0.02
    gate_confidence: float = 0.99
    max_moe: float | None = None
    cost_tolerance: float = 1.01

    def __post_init__(self) -> None:
        if self.nominal_coverage is not None and not 0.0 < self.nominal_coverage < 1.0:
            raise ValueError(f"nominal_coverage must be in (0, 1), got {self.nominal_coverage}")
        if not 0.0 <= self.coverage_slack < 1.0:
            raise ValueError(f"coverage_slack must be in [0, 1), got {self.coverage_slack}")
        if not 0.0 < self.gate_confidence < 1.0:
            raise ValueError(f"gate_confidence must be in (0, 1), got {self.gate_confidence}")
        if self.max_moe is not None and self.max_moe <= 0:
            raise ValueError(f"max_moe must be positive, got {self.max_moe}")
        if self.cost_tolerance < 1.0:
            raise ValueError(f"cost_tolerance must be >= 1, got {self.cost_tolerance}")

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any], context: str) -> "GateSpec":
        return cls(
            **_take(
                raw,
                (
                    "nominal_coverage",
                    "coverage_slack",
                    "gate_confidence",
                    "max_moe",
                    "cost_tolerance",
                ),
                context,
            )
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative stress scenario."""

    name: str
    kind: str = "static"
    description: str = ""
    replications: int = 30
    graph: GraphSpec = field(default_factory=GraphSpec)
    labels: LabelSpec = field(default_factory=LabelSpec)
    cost: CostSpec = field(default_factory=CostSpec)
    design: str = "twcs"
    second_stage_size: int = 5
    evaluator: str = "ss"
    moe_target: float = 0.05
    confidence: float = 0.95
    batch_size: int = 10
    min_units: int = 30
    max_units: int | None = 2000
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    fleet: tuple[FleetSessionSpec, ...] = ()
    gates: GateSpec = field(default_factory=GateSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(f"kind must be one of {SCENARIO_KINDS}, got {self.kind!r}")
        if self.replications < 1:
            raise ValueError(f"replications must be positive, got {self.replications}")
        if self.design not in STATIC_DESIGNS:
            raise ValueError(f"design must be one of {STATIC_DESIGNS}, got {self.design!r}")
        if self.evaluator not in EVOLVING_EVALUATORS:
            raise ValueError(
                f"evaluator must be one of {EVOLVING_EVALUATORS}, got {self.evaluator!r}"
            )
        if not 0.0 < self.moe_target < 1.0:
            raise ValueError(f"moe_target must be in (0, 1), got {self.moe_target}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.labels.model == "dataset" and self.graph.source != "dataset":
            raise ValueError(
                f"scenario {self.name!r}: the 'dataset' label model needs a dataset-sourced graph"
            )
        if self.kind == "fleet" and not self.fleet:
            raise ValueError(f"scenario {self.name!r}: fleet scenarios need at least one session")
        if self.kind == "deletion" and self.workload.deletion_fraction == 0.0:
            raise ValueError(
                f"scenario {self.name!r}: deletion scenarios need deletion_fraction > 0"
            )
        if self.cost.drift > 0 and self.kind not in ("static", "deletion"):
            raise ValueError(
                f"scenario {self.name!r}: cost drift is only supported for static and "
                "deletion scenarios (evolving/fleet evaluators own their annotators)"
            )
        if self.kind == "fleet" and (
            self.cost.drift > 0
            or self.cost.identification_cost != 45.0
            or self.cost.validation_cost != 25.0
        ):
            raise ValueError(
                f"scenario {self.name!r}: fleet sessions run inside `repro serve`, "
                "which charges the paper-default cost model"
            )

    @property
    def nominal_coverage(self) -> float:
        """The coverage level the gate tests against (defaults to ``confidence``)."""
        if self.gates.nominal_coverage is not None:
            return self.gates.nominal_coverage
        return self.confidence

    @property
    def max_moe(self) -> float:
        """The MoE ceiling (defaults to 1.5x the target, headroom for max_units stops)."""
        if self.gates.max_moe is not None:
            return self.gates.max_moe
        return 1.5 * self.moe_target


@dataclass(frozen=True)
class ScenarioPack:
    """A named collection of scenarios run and reported together."""

    name: str
    description: str = ""
    scenarios: tuple[ScenarioSpec, ...] = ()

    def __post_init__(self) -> None:
        names = [scenario.name for scenario in self.scenarios]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ValueError(f"pack {self.name!r}: duplicate scenario names {duplicates}")

    def __iter__(self):
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def scenario(self, name: str) -> ScenarioSpec:
        """Look a scenario up by name."""
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(f"pack {self.name!r} has no scenario {name!r}")


def scenario_from_dict(raw: Mapping[str, Any]) -> ScenarioSpec:
    """Parse one scenario from its dict form (the JSON/TOML object shape)."""
    context = f"scenario {raw.get('name', '<unnamed>')!r}"
    data = _take(
        raw,
        (
            "name",
            "kind",
            "description",
            "replications",
            "graph",
            "labels",
            "cost",
            "design",
            "second_stage_size",
            "evaluator",
            "moe_target",
            "confidence",
            "batch_size",
            "min_units",
            "max_units",
            "workload",
            "fleet",
            "gates",
        ),
        context,
    )
    if "graph" in data:
        data["graph"] = GraphSpec.from_dict(data["graph"], f"{context}.graph")
    if "labels" in data:
        data["labels"] = LabelSpec.from_dict(data["labels"], f"{context}.labels")
    if "cost" in data:
        data["cost"] = CostSpec.from_dict(data["cost"], f"{context}.cost")
    if "workload" in data:
        data["workload"] = WorkloadSpec.from_dict(data["workload"], f"{context}.workload")
    if "fleet" in data:
        data["fleet"] = tuple(
            FleetSessionSpec.from_dict(session, f"{context}.fleet[{index}]")
            for index, session in enumerate(data["fleet"])
        )
    if "gates" in data:
        data["gates"] = GateSpec.from_dict(data["gates"], f"{context}.gates")
    return ScenarioSpec(**data)


def pack_from_dict(raw: Mapping[str, Any]) -> ScenarioPack:
    """Parse a whole pack from its dict form."""
    context = f"pack {raw.get('name', '<unnamed>')!r}"
    data = _take(raw, ("name", "description", "scenarios"), context)
    scenarios = tuple(scenario_from_dict(scenario) for scenario in data.get("scenarios", ()))
    return ScenarioPack(
        name=data.get("name", "<unnamed>"),
        description=data.get("description", ""),
        scenarios=scenarios,
    )


def load_pack_file(path: str | Path) -> ScenarioPack:
    """Load a pack from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    if path.suffix == ".json":
        raw = json.loads(path.read_text())
    elif path.suffix == ".toml":
        import tomllib

        raw = tomllib.loads(path.read_text())
    else:
        raise ValueError(f"pack files must end in .json or .toml, got {path.name!r}")
    return pack_from_dict(raw)
