"""Executes scenario packs through the real engine and gates the statistics.

Every scenario runs ``replications`` independent seeded replications.  A
replication builds its graph and labels from scratch on the requested storage
backend, evaluates through the same code paths the CLI uses
(:class:`~repro.core.framework.StaticEvaluator`, the incremental evaluators
behind ``repro monitor``, or a live ``repro serve`` daemon for fleet
scenarios) and records, per confidence-interval claim, whether the interval
contained the true accuracy.

Determinism contract: the per-replication seed is a stable hash of
``(scenario name, root seed, replication index)`` — independent of the
process, platform and of which other scenarios run — and every replication
folds its trajectory into a SHA-256 digest.  The digest must be bit-identical
across the memory, columnar and sqlite backends for a given (scenario, seed);
`repro scenario compare` holds result files to that standard.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import EvaluationConfig
from repro.core.framework import StaticEvaluator
from repro.cost.annotator import SimulatedAnnotator
from repro.cost.model import CostModel
from repro.generators.datasets import (
    LabelledKG,
    generate_calibrated_labels,
    make_movie_like,
    make_movie_syn,
    make_nell_like,
    make_yago_like,
)
from repro.generators.synthetic_kg import SyntheticKGConfig, generate_kg
from repro.generators.workload import UpdateWorkloadGenerator, batch_schedule
from repro.kg.graph import KnowledgeGraph
from repro.labels.adversarial import AdversarialClusterModel
from repro.labels.binomial_mixture import BinomialMixtureModel
from repro.labels.oracle import LabelOracle
from repro.labels.random_error import RandomErrorModel
from repro.sampling.rcs import RandomClusterDesign
from repro.sampling.srs import SimpleRandomDesign
from repro.sampling.stratification import stratify_by_size
from repro.sampling.stratified import StratifiedTWCSDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.sampling.wcs import WeightedClusterDesign
from repro.scenarios.spec import CostSpec, GraphSpec, LabelSpec, ScenarioPack, ScenarioSpec
from repro.stats.ci import wilson_interval

__all__ = ["DriftingAnnotator", "ScenarioResult", "run_scenario", "run_pack", "BACKENDS"]

BACKENDS = ("memory", "columnar", "sqlite")

_FLEET_SECRET = b"scenario-fleet"


class DriftingAnnotator(SimulatedAnnotator):
    """An annotator whose per-component cost grows linearly with fatigue.

    Each charged cost component (identification or validation) is multiplied
    by ``1 + drift * n / 100`` where ``n`` is the number of triples already
    annotated in the session.  The factor is deterministic — no RNG draw —
    so drift perturbs costs without ever perturbing a sampling trajectory.
    """

    def __init__(
        self, oracle: LabelOracle, cost_model: CostModel | None = None, drift: float = 0.0
    ) -> None:
        if drift < 0:
            raise ValueError(f"drift must be non-negative, got {drift}")
        super().__init__(oracle, cost_model=cost_model)
        self.drift = drift

    def _noise_factor(self) -> float:
        return 1.0 + self.drift * (self.total_triples_annotated / 100.0)


# --------------------------------------------------------------------------- #
# Seeding and digests
# --------------------------------------------------------------------------- #
def _replication_seed(scenario_name: str, root_seed: int, replication: int) -> int:
    """A stable 64-bit seed for one replication, independent of the platform."""
    token = f"{scenario_name}:{root_seed}:{replication}".encode()
    return int.from_bytes(hashlib.blake2b(token, digest_size=8).digest(), "big")


def _child_seeds(replication_seed: int, count: int) -> list[int]:
    """Derive ``count`` independent 32-bit integer seeds from one replication seed."""
    return [int(s) for s in np.random.SeedSequence(replication_seed).generate_state(count)]


def _fold(hasher, *values) -> None:
    """Fold values into a digest with a canonical, round-trip-exact encoding."""
    for value in values:
        if isinstance(value, float):
            hasher.update(repr(value).encode())
        else:
            hasher.update(str(value).encode())
        hasher.update(b"|")
    hasher.update(b";")


# --------------------------------------------------------------------------- #
# Builders
# --------------------------------------------------------------------------- #
def _make_dataset(name: str, seed: int, scale: float) -> LabelledKG:
    if name == "nell":
        return make_nell_like(seed=seed)
    if name == "yago":
        return make_yago_like(seed=seed)
    if name == "movie":
        return make_movie_like(seed=seed, scale=scale)
    if name == "movie-syn":
        return make_movie_syn(seed=seed, scale=scale)
    raise ValueError(f"unknown dataset {name!r}")


def _pop_params(params: dict, context: str):
    """Return a popper that raises on leftover (unknown) parameters at the end."""

    def finish() -> None:
        if params:
            raise ValueError(f"{context}: unknown label params {sorted(params)}")

    return finish


def _build_labels(label_spec: LabelSpec, graph: KnowledgeGraph, seed: int) -> LabelOracle:
    params = dict(label_spec.params)
    context = f"label model {label_spec.model!r}"
    finish = _pop_params(params, context)
    if label_spec.model == "random_error":
        accuracy = params.pop("accuracy", None)
        error_rate = params.pop("error_rate", None)
        finish()
        if accuracy is not None and error_rate is not None:
            raise ValueError(f"{context}: give either accuracy or error_rate, not both")
        if accuracy is not None:
            return RandomErrorModel.with_accuracy(accuracy, seed=seed).generate(graph)
        return RandomErrorModel(error_rate if error_rate is not None else 0.1, seed=seed).generate(
            graph
        )
    if label_spec.model == "binomial_mixture":
        model = BinomialMixtureModel(
            c=params.pop("c", 0.01),
            sigma=params.pop("sigma", 0.1),
            k=params.pop("k", 3),
            rho=params.pop("rho", 0.0),
            seed=seed,
        )
        finish()
        return model.generate(graph)
    if label_spec.model == "calibrated":
        oracle = generate_calibrated_labels(
            graph,
            target_accuracy=params.pop("accuracy", 0.9),
            size_correlation=params.pop("size_correlation", 0.15),
            noise_sigma=params.pop("noise_sigma", 0.05),
            seed=seed,
        )
        finish()
        return oracle
    if label_spec.model == "adversarial":
        model = AdversarialClusterModel(
            poisoned_mass=params.pop("poisoned_mass", 0.1),
            poisoned_accuracy=params.pop("poisoned_accuracy", 0.0),
            base_accuracy=params.pop("base_accuracy", 1.0),
            seed=seed,
        )
        finish()
        return model.generate(graph)
    raise ValueError(f"label model {label_spec.model!r} needs a dataset-sourced graph")


def _to_backend(graph: KnowledgeGraph, backend: str) -> KnowledgeGraph:
    if backend == "memory":
        return graph
    if backend == "columnar":
        return graph.to_columnar()
    if backend == "sqlite":
        return graph.to_sqlite()
    raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")


def _close_backend(graph: KnowledgeGraph) -> None:
    """Release disk resources of a per-replication sqlite graph."""
    close = getattr(graph.backend, "close", None)
    if close is not None:
        close()


def _build_graph_and_oracle(
    graph_spec: GraphSpec,
    label_spec: LabelSpec,
    graph_seed: int,
    label_seed: int,
    backend: str,
    scenario_name: str,
) -> tuple[KnowledgeGraph, LabelOracle]:
    if graph_spec.source == "synthetic":
        config = SyntheticKGConfig(
            num_entities=graph_spec.num_entities,
            mean_cluster_size=graph_spec.mean_cluster_size,
            size_skew=graph_spec.size_skew,
            max_cluster_size=graph_spec.max_cluster_size,
            name=scenario_name,
        )
        graph = generate_kg(config, graph_seed)
    else:
        data = _make_dataset(graph_spec.dataset, graph_seed, graph_spec.scale)
        graph = data.graph
        if label_spec.model == "dataset":
            return _to_backend(graph, backend), data.oracle
    # Labels are always drawn on the memory graph, then the graph is re-packed:
    # conversion preserves triple and cluster order, so the oracle (keyed by
    # Triple values) and every seeded draw transfer bit-identically.
    oracle = _build_labels(label_spec, graph, label_seed)
    return _to_backend(graph, backend), oracle


def _build_design(name: str, graph: KnowledgeGraph, second_stage_size: int, seed: int):
    if name == "srs":
        return SimpleRandomDesign(graph, seed=seed)
    if name == "rcs":
        return RandomClusterDesign(graph, seed=seed)
    if name == "wcs":
        return WeightedClusterDesign(graph, seed=seed)
    if name == "twcs":
        return TwoStageWeightedClusterDesign(graph, second_stage_size=second_stage_size, seed=seed)
    if name == "twcs-strat":
        strata = stratify_by_size(graph, num_strata=4)
        return StratifiedTWCSDesign(graph, strata, second_stage_size=second_stage_size, seed=seed)
    raise ValueError(f"unknown design {name!r}")


def _build_annotator(cost_spec: CostSpec, oracle: LabelOracle) -> SimulatedAnnotator:
    cost_model = CostModel(
        identification_cost=cost_spec.identification_cost,
        validation_cost=cost_spec.validation_cost,
    )
    if cost_spec.drift > 0:
        return DriftingAnnotator(oracle, cost_model=cost_model, drift=cost_spec.drift)
    return SimulatedAnnotator(oracle, cost_model=cost_model)


def _config(spec: ScenarioSpec) -> EvaluationConfig:
    return EvaluationConfig(
        moe_target=spec.moe_target,
        confidence_level=spec.confidence,
        batch_size=spec.batch_size,
        min_units=spec.min_units,
        max_units=spec.max_units,
    )


# --------------------------------------------------------------------------- #
# Per-replication outcomes
# --------------------------------------------------------------------------- #
@dataclass
class _RepOutcome:
    """Coverage observations and cost checks from one replication."""

    observations: list[tuple[bool, float]] = field(default_factory=list)
    cost_checks: list[tuple[float, float, float]] = field(default_factory=list)

    def observe_interval(self, estimate: float, moe: float, truth: float) -> None:
        lower = max(0.0, estimate - moe)
        upper = min(1.0, estimate + moe)
        self.observations.append((lower <= truth <= upper, float(moe)))

    def check_cost(self, measured: float, predicted: float, allowance: float) -> None:
        self.cost_checks.append((float(measured), float(predicted), float(allowance)))


def _static_state_eval(
    spec: ScenarioSpec,
    graph: KnowledgeGraph,
    oracle: LabelOracle,
    design_seed: int,
    outcome: _RepOutcome,
    hasher,
    tag,
) -> None:
    """One full static evaluation of a graph state: coverage, cost, digest."""
    truth = oracle.true_accuracy(graph)
    design = _build_design(spec.design, graph, spec.second_stage_size, design_seed)
    annotator = _build_annotator(spec.cost, oracle)
    report = StaticEvaluator(design, annotator, _config(spec)).run()
    interval = report.confidence_interval
    outcome.observations.append((interval.contains(truth), float(report.margin_of_error)))
    predicted = annotator.cost_model.cost_seconds(
        report.num_entities_identified, report.num_triples_annotated
    )
    allowance = 1.0 + spec.cost.drift * report.num_triples_annotated / 100.0
    outcome.check_cost(report.annotation_cost_seconds, predicted, allowance)
    _fold(
        hasher,
        tag,
        float(truth),
        float(report.accuracy),
        float(report.margin_of_error),
        int(report.num_units),
        int(report.num_triples_annotated),
        int(report.num_entities_identified),
        float(report.annotation_cost_seconds),
    )


def _run_static_rep(
    spec: ScenarioSpec, backend: str, replication: int, rep_seed: int, hasher
) -> _RepOutcome:
    seeds = _child_seeds(rep_seed, 3)
    graph, oracle = _build_graph_and_oracle(
        spec.graph, spec.labels, seeds[0], seeds[1], backend, spec.name
    )
    outcome = _RepOutcome()
    try:
        _static_state_eval(spec, graph, oracle, seeds[2], outcome, hasher, replication)
    finally:
        _close_backend(graph)
    return outcome


def _run_evolving_rep(
    spec: ScenarioSpec, backend: str, replication: int, rep_seed: int, hasher
) -> _RepOutcome:
    from repro.evolving.baseline import BaselineEvolvingEvaluator
    from repro.evolving.monitor import EvolvingAccuracyMonitor
    from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
    from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator

    # The evolving layer's disk-oriented path is the columnar delta store, so
    # a sqlite scenario run uses a columnar base (the draws are bit-identical
    # by construction — sqlite positions mirror columnar positions).
    base_backend = "columnar" if backend == "sqlite" else backend
    seeds = _child_seeds(rep_seed, 4)
    graph, oracle = _build_graph_and_oracle(
        spec.graph, spec.labels, seeds[0], seeds[1], base_backend, spec.name
    )
    base = LabelledKG(graph, oracle)
    evaluator_cls = {
        "rs": ReservoirIncrementalEvaluator,
        "ss": StratifiedIncrementalEvaluator,
        "baseline": BaselineEvolvingEvaluator,
    }[spec.evaluator]
    cost_model = CostModel(
        identification_cost=spec.cost.identification_cost,
        validation_cost=spec.cost.validation_cost,
    )
    evaluator = evaluator_cls(
        base,
        config=_config(spec),
        cost_model=cost_model,
        second_stage_size=spec.second_stage_size,
        seed=seeds[2],
    )
    outcome = _RepOutcome()
    monitor = EvolvingAccuracyMonitor(evaluator)
    monitor.evaluate_base()
    workload = spec.workload
    generator = UpdateWorkloadGenerator(
        base, new_entity_fraction=workload.new_entity_fraction, seed=seeds[3]
    )
    for batch, batch_oracle in generator.generate_scheduled_sequence(
        workload.total_updates, workload.num_batches, workload.update_accuracy, workload.schedule
    ):
        monitor.apply_update(batch, batch_oracle)
    for record in monitor.records:
        outcome.observe_interval(
            record.estimated_accuracy, record.margin_of_error, record.true_accuracy
        )
        _fold(
            hasher,
            replication,
            record.batch_id,
            float(record.estimated_accuracy),
            float(record.margin_of_error),
            float(record.true_accuracy),
            float(record.cumulative_cost_hours),
        )
    annotator = evaluator.annotator
    predicted = cost_model.cost_seconds(
        annotator.entities_identified, annotator.total_triples_annotated
    )
    outcome.check_cost(annotator.total_cost_seconds, predicted, 1.0)
    return outcome


def _run_deletion_rep(
    spec: ScenarioSpec, backend: str, replication: int, rep_seed: int, hasher
) -> _RepOutcome:
    workload = spec.workload
    num_states = workload.num_batches + 1  # the base state plus one per batch
    seeds = _child_seeds(rep_seed, 3 + num_states)
    # State bookkeeping always happens on the memory graph; each evaluated
    # state is converted to the requested backend (order-preserving).
    base_graph, oracle = _build_graph_and_oracle(
        spec.graph, spec.labels, seeds[0], seeds[1], "memory", spec.name
    )
    live: dict = {triple: oracle.label(triple) for triple in base_graph}
    generator = UpdateWorkloadGenerator(
        LabelledKG(base_graph, oracle),
        new_entity_fraction=workload.new_entity_fraction,
        seed=seeds[2],
    )
    outcome = _RepOutcome()

    def evaluate_state(state_index: int) -> None:
        state_graph = KnowledgeGraph(live.keys(), name=f"{spec.name}-state{state_index}")
        state_oracle = LabelOracle(dict(live))
        converted = _to_backend(state_graph, backend)
        try:
            _static_state_eval(
                spec,
                converted,
                state_oracle,
                seeds[3 + state_index],
                outcome,
                hasher,
                f"{replication}/{state_index}",
            )
        finally:
            _close_backend(converted)

    evaluate_state(0)
    sizes = batch_schedule(workload.total_updates, workload.num_batches, workload.schedule)
    for index, size in enumerate(sizes, start=1):
        if size > 0:
            batch, batch_oracle = generator.generate_batch(size, workload.update_accuracy)
            for triple in batch:
                live[triple] = batch_oracle.label(triple)
            deletions = generator.generate_deletion_batch(
                list(live.keys()), int(round(size * workload.deletion_fraction))
            )
            for triple in deletions:
                live.pop(triple, None)
        evaluate_state(index)
    return outcome


def _run_fleet_rep(
    spec: ScenarioSpec, backend: str, replication: int, rep_seed: int, hasher
) -> _RepOutcome:
    import threading

    from repro.serve.client import ServeClient
    from repro.serve.server import EvalServer

    # Fleet scenarios exercise the serve daemon, which owns its storage
    # internally — the requested backend does not (and must not) perturb the
    # trajectory, so the digest is identical across backends by construction.
    workload = spec.workload
    seeds = _child_seeds(rep_seed, 3 + 2 * len(spec.fleet))
    dataset_seed = int(seeds[2] % 10_000)
    outcome = _RepOutcome()
    server = EvalServer(port=0, secret=_FLEET_SECRET, queue_limit=64)
    server.start()
    try:
        session_names = []
        errors: list[BaseException] = []

        def drive(index: int, session_spec, session_name: str) -> None:
            try:
                with ServeClient(
                    server.address, secret=_FLEET_SECRET, connect_retries=1
                ) as client:
                    client.attach(
                        {
                            "dataset": session_spec.dataset,
                            "dataset_seed": dataset_seed,
                            "movie_scale": float(spec.graph.scale),
                            "seed": int(seeds[3 + 2 * index] % 2**31),
                            "evaluator": session_spec.evaluator,
                            "moe": spec.moe_target,
                            "confidence": spec.confidence,
                        },
                        session=session_name,
                    )
                    data = _make_dataset(session_spec.dataset, dataset_seed, spec.graph.scale)
                    base = LabelledKG(data.graph.to_columnar(), data.oracle)
                    generator = UpdateWorkloadGenerator(
                        base,
                        new_entity_fraction=workload.new_entity_fraction,
                        seed=int(seeds[4 + 2 * index]),
                    )
                    for batch, batch_oracle in generator.generate_scheduled_sequence(
                        workload.total_updates,
                        workload.num_batches,
                        workload.update_accuracy,
                        workload.schedule,
                    ):
                        client.submit_batch(session_name, batch, batch_oracle)
            except BaseException as exc:  # noqa: BLE001 - surfaced after join
                errors.append(exc)

        threads = []
        for index, session_spec in enumerate(spec.fleet):
            session_name = f"{session_spec.dataset}-{session_spec.evaluator}-{index}"
            session_names.append(session_name)
            thread = threading.Thread(
                target=drive, args=(index, session_spec, session_name), daemon=True
            )
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

        default_cost = CostModel()
        with ServeClient(server.address, secret=_FLEET_SECRET, connect_retries=1) as client:
            for session_name in session_names:
                entries = client.trajectory(session_name)["entries"]
                total_triples = 0
                total_entities = 0
                measured = 0.0
                for entry in entries:
                    record = entry["record"]
                    report = entry["report"]
                    outcome.observe_interval(
                        record.estimated_accuracy, record.margin_of_error, record.true_accuracy
                    )
                    total_triples += int(report.num_triples_annotated)
                    total_entities += int(report.num_entities_identified)
                    measured = float(entry["cumulative_cost_seconds"])
                    _fold(
                        hasher,
                        replication,
                        session_name,
                        entry["batch_id"],
                        float(record.estimated_accuracy),
                        float(record.margin_of_error),
                        float(record.true_accuracy),
                        float(entry["cumulative_cost_seconds"]),
                    )
                predicted = default_cost.cost_seconds(total_entities, total_triples)
                outcome.check_cost(measured, predicted, 1.0)
    finally:
        server.shutdown(drain=True)
    return outcome


_KIND_RUNNERS = {
    "static": _run_static_rep,
    "evolving": _run_evolving_rep,
    "deletion": _run_deletion_rep,
    "fleet": _run_fleet_rep,
}


# --------------------------------------------------------------------------- #
# Scenario results and gates
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioResult:
    """Aggregated outcome of one scenario's replications, with gate verdicts."""

    name: str
    kind: str
    backend: str
    replications: int
    root_seed: int
    coverage_hits: int
    coverage_trials: int
    empirical_coverage: float
    wilson_lower: float
    wilson_upper: float
    nominal_coverage: float
    coverage_slack: float
    coverage_passed: bool
    mean_moe: float
    max_moe_observed: float
    max_moe_allowed: float
    moe_passed: bool
    mean_cost_ratio: float
    max_cost_ratio: float
    cost_tolerance: float
    cost_passed: bool
    digest: str

    @property
    def passed(self) -> bool:
        """Whether every gate passed."""
        return self.coverage_passed and self.moe_passed and self.cost_passed

    def failures(self) -> list[str]:
        """Human-readable descriptions of the failed gates."""
        failures = []
        if not self.coverage_passed:
            failures.append(
                f"coverage: Wilson upper bound {self.wilson_upper:.4f} "
                f"< nominal {self.nominal_coverage:.4f} - slack {self.coverage_slack:.4f} "
                f"({self.coverage_hits}/{self.coverage_trials} intervals contained the truth)"
            )
        if not self.moe_passed:
            failures.append(
                f"moe: max observed {self.max_moe_observed:.4f} "
                f"> allowed {self.max_moe_allowed:.4f}"
            )
        if not self.cost_passed:
            failures.append(
                f"cost: ratio measured/predicted reached {self.max_cost_ratio:.4f} "
                f"outside tolerance {self.cost_tolerance:.4f}"
            )
        return failures


def run_scenario(
    spec: ScenarioSpec,
    backend: str = "memory",
    replications: int | None = None,
    root_seed: int = 0,
) -> ScenarioResult:
    """Run one scenario's replications on one backend and gate the statistics."""
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    runner = _KIND_RUNNERS[spec.kind]
    count = replications if replications is not None else spec.replications
    if count < 1:
        raise ValueError(f"replications must be positive, got {count}")

    hasher = hashlib.sha256()
    observations: list[tuple[bool, float]] = []
    cost_checks: list[tuple[float, float, float]] = []
    for replication in range(count):
        rep_seed = _replication_seed(spec.name, root_seed, replication)
        outcome = runner(spec, backend, replication, rep_seed, hasher)
        observations.extend(outcome.observations)
        cost_checks.extend(outcome.cost_checks)

    hits = sum(1 for covered, _ in observations if covered)
    trials = len(observations)
    wilson = wilson_interval(hits, trials, spec.gates.gate_confidence)
    nominal = spec.nominal_coverage
    coverage_passed = wilson.upper >= nominal - spec.gates.coverage_slack

    moes = [moe for _, moe in observations]
    mean_moe = float(np.mean(moes))
    max_moe_observed = float(np.max(moes))
    moe_passed = max_moe_observed <= spec.max_moe

    tolerance = spec.gates.cost_tolerance
    ratios = [
        measured / predicted if predicted > 0 else 1.0
        for measured, predicted, _ in cost_checks
    ]
    cost_passed = all(
        predicted / tolerance <= measured <= predicted * allowance * tolerance
        for measured, predicted, allowance in cost_checks
    )
    return ScenarioResult(
        name=spec.name,
        kind=spec.kind,
        backend=backend,
        replications=count,
        root_seed=root_seed,
        coverage_hits=hits,
        coverage_trials=trials,
        empirical_coverage=hits / trials,
        wilson_lower=float(wilson.lower),
        wilson_upper=float(wilson.upper),
        nominal_coverage=float(nominal),
        coverage_slack=float(spec.gates.coverage_slack),
        coverage_passed=bool(coverage_passed),
        mean_moe=mean_moe,
        max_moe_observed=max_moe_observed,
        max_moe_allowed=float(spec.max_moe),
        moe_passed=bool(moe_passed),
        mean_cost_ratio=float(np.mean(ratios)),
        max_cost_ratio=float(np.max(ratios)),
        cost_tolerance=float(tolerance),
        cost_passed=bool(cost_passed),
        digest=hasher.hexdigest(),
    )


def run_pack(
    pack: ScenarioPack,
    backend: str = "memory",
    replications: int | None = None,
    root_seed: int = 0,
    only: str | Sequence[str] | None = None,
    progress=None,
) -> list[ScenarioResult]:
    """Run every scenario of a pack (or a subset, via ``only``) on one backend.

    ``only`` names one scenario or a sequence of scenario names;
    ``replications`` overrides every scenario's own count when given (the
    smoke-in-CI escape hatch); ``progress`` is an optional callable receiving
    each :class:`ScenarioResult` as it lands.
    """
    specs = list(pack)
    if only is not None:
        names = (only,) if isinstance(only, str) else tuple(only)
        specs = [pack.scenario(name) for name in names]
    results = []
    for spec in specs:
        result = run_scenario(spec, backend=backend, replications=replications, root_seed=root_seed)
        results.append(result)
        if progress is not None:
            progress(result)
    return results
