"""Declarative stress-scenario packs with statistical coverage gates.

A scenario pack (ROADMAP direction 4) turns "the estimator seemed fine on
the paper's grid" into a regression suite: each scenario declares a graph
source, an error model, a cost model and the design or evaluator under test;
the runner executes N seeded replications through the real engine on any
storage backend and gates the empirical CI coverage inside a Wilson
tolerance band around nominal, the margins of error, and the measured
annotation cost against the Eq. (4) prediction.  ``repro scenario
run|compare|list`` exposes the registry on the CLI; see ``docs/scenarios.md``
for the pack format.
"""

from repro.scenarios.packs import BUILTIN_PACKS, builtin_pack, load_pack
from repro.scenarios.report import (
    compare_documents,
    format_results_table,
    load_results,
    results_to_document,
    write_results,
)
from repro.scenarios.runner import (
    BACKENDS,
    DriftingAnnotator,
    ScenarioResult,
    run_pack,
    run_scenario,
)
from repro.scenarios.spec import (
    CostSpec,
    FleetSessionSpec,
    GateSpec,
    GraphSpec,
    LabelSpec,
    ScenarioPack,
    ScenarioSpec,
    WorkloadSpec,
    load_pack_file,
    pack_from_dict,
    scenario_from_dict,
)

__all__ = [
    "BACKENDS",
    "BUILTIN_PACKS",
    "CostSpec",
    "DriftingAnnotator",
    "FleetSessionSpec",
    "GateSpec",
    "GraphSpec",
    "LabelSpec",
    "ScenarioPack",
    "ScenarioResult",
    "ScenarioSpec",
    "WorkloadSpec",
    "builtin_pack",
    "compare_documents",
    "format_results_table",
    "load_pack",
    "load_pack_file",
    "load_results",
    "pack_from_dict",
    "results_to_document",
    "run_pack",
    "run_scenario",
    "scenario_from_dict",
    "write_results",
]
