"""The built-in scenario packs.

``builtin-full`` is the statistical regression suite: every scenario runs
enough replications for the Wilson coverage gate to have real power.
``builtin-smoke`` is the same scenario list at CI-friendly replication
counts — same seeds per (scenario, replication), so its digests are a strict
prefix-stable fingerprint suitable for committing as a baseline.

Both packs are expressed in the same declarative dict format user pack files
use (see :mod:`repro.scenarios.spec` and ``docs/scenarios.md``), so they
double as the reference examples for writing new packs.

Coverage slacks below are *documented weakness bands*: a non-zero slack
records how far a scenario's estimator is known to stray from nominal
coverage today (e.g. the adversarial cluster labels, where the normal-CI
cluster designs genuinely under-cover).  The gate then fails only if the
behaviour degrades beyond the recorded band.
"""

from __future__ import annotations

from pathlib import Path

from repro.scenarios.spec import ScenarioPack, load_pack_file, pack_from_dict

__all__ = ["BUILTIN_PACKS", "load_pack", "builtin_pack"]

# One entry per scenario: the full-pack replication count lives in the spec
# itself; the smoke pack overrides it with the paired smoke count.
_SMOKE_REPLICATIONS = {
    "srs-bernoulli-exact": 50,
    "srs-sequential-stopping": 40,
    "heavy-tail-clusters": 20,
    "correlated-in-cluster": 20,
    "adversarial-worst-case": 20,
    "cost-drift": 15,
    "bursty-stream": 4,
    "trickle-stream": 4,
    "deletion-churn": 5,
    "fleet-concurrent": 1,
}

_BUILTIN_SCENARIOS = [
    {
        "name": "srs-bernoulli-exact",
        "kind": "static",
        "description": (
            "The analytically checkable case: SRS over i.i.d. Bernoulli(0.9) labels "
            "at a fixed sample size of 140 triples (min_units == max_units pins n), "
            "where Eq. (1) coverage should match nominal almost exactly."
        ),
        "replications": 200,
        "graph": {
            "num_entities": 400,
            "mean_cluster_size": 2.0,
            "size_skew": 0.6,
            "max_cluster_size": 40,
        },
        "labels": {"model": "random_error", "params": {"accuracy": 0.9}},
        "design": "srs",
        "moe_target": 0.05,
        "min_units": 140,
        "max_units": 140,
        "gates": {"coverage_slack": 0.03},
    },
    {
        "name": "srs-sequential-stopping",
        "kind": "static",
        "description": (
            "The same SRS/Bernoulli(0.9) setup but with the engine's real "
            "stop-at-first-satisfied-MoE loop.  Optional stopping biases coverage "
            "below nominal (~88% observed at nominal 95%); the wide slack pins "
            "today's bias so further degradation fails CI without overclaiming."
        ),
        "replications": 200,
        "graph": {
            "num_entities": 400,
            "mean_cluster_size": 2.0,
            "size_skew": 0.6,
            "max_cluster_size": 40,
        },
        "labels": {"model": "random_error", "params": {"accuracy": 0.9}},
        "design": "srs",
        "moe_target": 0.05,
        "gates": {"coverage_slack": 0.1},
    },
    {
        "name": "heavy-tail-clusters",
        "kind": "static",
        "description": (
            "TWCS on a lognormal cluster-size distribution with a very heavy tail "
            "(skew 2.2, clusters up to 400 triples) and size-correlated labels."
        ),
        "replications": 120,
        "graph": {
            "num_entities": 300,
            "mean_cluster_size": 4.0,
            "size_skew": 2.2,
            "max_cluster_size": 400,
        },
        "labels": {
            "model": "calibrated",
            "params": {"accuracy": 0.85, "size_correlation": 0.2, "noise_sigma": 0.05},
        },
        "design": "twcs",
        "second_stage_size": 5,
        "moe_target": 0.06,
        "gates": {"coverage_slack": 0.05},
    },
    {
        "name": "correlated-in-cluster",
        "kind": "static",
        "description": (
            "Binomial-mixture labels with within-cluster correlation rho=0.8: whole "
            "clusters flip together, inflating the between-cluster variance TWCS "
            "must estimate from few cluster draws."
        ),
        "replications": 120,
        "graph": {
            "num_entities": 300,
            "mean_cluster_size": 5.0,
            "size_skew": 1.0,
            "max_cluster_size": 120,
        },
        "labels": {
            "model": "binomial_mixture",
            "params": {"c": 0.05, "sigma": 0.05, "k": 3, "rho": 0.8},
        },
        "design": "twcs",
        "second_stage_size": 5,
        "moe_target": 0.07,
        "gates": {"coverage_slack": 0.05},
    },
    {
        "name": "adversarial-worst-case",
        "kind": "static",
        "description": (
            "Worst-case cluster labels: the largest clusters carrying 10% of the "
            "triple mass are fully wrong, the rest fully right — a step-function "
            "accuracy profile that maximises between-cluster variance."
        ),
        "replications": 120,
        "graph": {
            "num_entities": 300,
            "mean_cluster_size": 4.0,
            "size_skew": 1.5,
            "max_cluster_size": 200,
        },
        "labels": {"model": "adversarial", "params": {"poisoned_mass": 0.1}},
        "design": "twcs",
        "second_stage_size": 5,
        "moe_target": 0.06,
        "gates": {"coverage_slack": 0.08},
    },
    {
        "name": "cost-drift",
        "kind": "static",
        "description": (
            "Annotator fatigue: every charged component costs (1 + 0.5*n/100)x "
            "after n annotated triples.  Coverage must hold and measured cost must "
            "stay inside the drift-widened Eq. (4) allowance."
        ),
        "replications": 100,
        "graph": {
            "num_entities": 300,
            "mean_cluster_size": 4.0,
            "size_skew": 1.0,
            "max_cluster_size": 120,
        },
        "labels": {"model": "calibrated", "params": {"accuracy": 0.9}},
        "cost": {"drift": 0.5},
        "design": "twcs",
        "second_stage_size": 5,
        "moe_target": 0.06,
        "gates": {"coverage_slack": 0.05, "cost_tolerance": 1.01},
    },
    {
        "name": "bursty-stream",
        "kind": "evolving",
        "description": (
            "Stratified incremental evaluation under a bursty insert stream: every "
            "third batch is an ~8x spike, so strata arrive with wildly uneven sizes."
        ),
        "replications": 20,
        "graph": {
            "num_entities": 250,
            "mean_cluster_size": 3.0,
            "size_skew": 1.0,
            "max_cluster_size": 80,
        },
        "labels": {"model": "calibrated", "params": {"accuracy": 0.88}},
        "evaluator": "ss",
        "moe_target": 0.07,
        "workload": {
            "total_updates": 240,
            "num_batches": 4,
            "schedule": "bursty",
            "update_accuracy": 0.7,
        },
        "gates": {"coverage_slack": 0.06},
    },
    {
        "name": "trickle-stream",
        "kind": "evolving",
        "description": (
            "The same update mass as bursty-stream dripped uniformly over 8 small "
            "batches — many small strata instead of a few spikes."
        ),
        "replications": 20,
        "graph": {
            "num_entities": 250,
            "mean_cluster_size": 3.0,
            "size_skew": 1.0,
            "max_cluster_size": 80,
        },
        "labels": {"model": "calibrated", "params": {"accuracy": 0.88}},
        "evaluator": "ss",
        "moe_target": 0.07,
        "workload": {
            "total_updates": 240,
            "num_batches": 8,
            "schedule": "trickle",
            "update_accuracy": 0.7,
        },
        "gates": {"coverage_slack": 0.06},
    },
    {
        "name": "deletion-churn",
        "kind": "deletion",
        "description": (
            "Deletion-heavy evolution: each insert batch is followed by deleting "
            "60% as many triples from the live graph (never the same triple twice); "
            "every post-churn state is re-evaluated from scratch."
        ),
        "replications": 30,
        "graph": {
            "num_entities": 250,
            "mean_cluster_size": 3.0,
            "size_skew": 1.0,
            "max_cluster_size": 80,
        },
        "labels": {"model": "calibrated", "params": {"accuracy": 0.9}},
        "design": "twcs",
        "second_stage_size": 5,
        "moe_target": 0.06,
        "workload": {
            "total_updates": 360,
            "num_batches": 3,
            "schedule": "uniform",
            "update_accuracy": 0.7,
            "deletion_fraction": 0.6,
        },
        "gates": {"coverage_slack": 0.06},
    },
    {
        "name": "fleet-concurrent",
        "kind": "fleet",
        "description": (
            "Two KGs evaluated concurrently through a live `repro serve` daemon "
            "(NELL-like under ss, MOVIE-SYN under rs), each receiving its own "
            "update stream from a separate client thread."
        ),
        "replications": 3,
        "fleet": [
            {"dataset": "nell", "evaluator": "ss"},
            {"dataset": "movie-syn", "evaluator": "rs"},
        ],
        "moe_target": 0.06,
        "workload": {
            "total_updates": 240,
            "num_batches": 2,
            "schedule": "uniform",
            "update_accuracy": 0.8,
        },
        "gates": {"coverage_slack": 0.08},
    },
]


def builtin_pack(smoke: bool = False) -> ScenarioPack:
    """Build the built-in pack (full replication counts, or the smoke variant)."""
    scenarios = []
    for raw in _BUILTIN_SCENARIOS:
        scenario = dict(raw)
        if smoke:
            scenario["replications"] = _SMOKE_REPLICATIONS[scenario["name"]]
        scenarios.append(scenario)
    name = "builtin-smoke" if smoke else "builtin-full"
    description = (
        "CI smoke variant of builtin-full (reduced replications, same seeds)"
        if smoke
        else "The built-in statistical stress pack"
    )
    return pack_from_dict({"name": name, "description": description, "scenarios": scenarios})


BUILTIN_PACKS = ("builtin-full", "builtin-smoke")


def load_pack(name_or_path: str) -> ScenarioPack:
    """Resolve a pack by built-in name or by ``.json``/``.toml`` file path."""
    if name_or_path == "builtin-full":
        return builtin_pack(smoke=False)
    if name_or_path == "builtin-smoke":
        return builtin_pack(smoke=True)
    path = Path(name_or_path)
    if path.suffix in (".json", ".toml"):
        if not path.is_file():
            raise FileNotFoundError(f"pack file not found: {path}")
        return load_pack_file(path)
    raise ValueError(
        f"unknown pack {name_or_path!r}: expected one of {BUILTIN_PACKS} "
        "or a path to a .json/.toml pack file"
    )
