"""CI-trackable scenario result files and baseline comparison.

``repro scenario run --out SCENARIOS_smoke.json`` writes one JSON document
per run.  The file is fully deterministic for a given (pack, backend, root
seed) — no timestamps, no host information — so a committed baseline diffs
clean until behaviour actually changes.  ``repro scenario compare`` holds a
current file to a baseline: trajectory digests must match bit-for-bit,
coverage counts must match exactly (they are deterministic integers), and
float fields must agree within an explicit tolerance.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.scenarios.runner import ScenarioResult

__all__ = [
    "RESULTS_FORMAT",
    "results_to_document",
    "write_results",
    "load_results",
    "compare_documents",
    "format_results_table",
]

RESULTS_FORMAT = 1

# Fields compared exactly between baseline and current result files; digests
# pin the full trajectory, the counts pin the gate inputs.
_EXACT_FIELDS = (
    "kind",
    "backend",
    "replications",
    "root_seed",
    "digest",
    "coverage_hits",
    "coverage_trials",
    "coverage_passed",
    "moe_passed",
    "cost_passed",
)
_FLOAT_FIELDS = (
    "empirical_coverage",
    "wilson_lower",
    "wilson_upper",
    "nominal_coverage",
    "coverage_slack",
    "mean_moe",
    "max_moe_observed",
    "max_moe_allowed",
    "mean_cost_ratio",
    "max_cost_ratio",
    "cost_tolerance",
)


def results_to_document(
    pack_name: str, backend: str, root_seed: int, results: list[ScenarioResult]
) -> dict:
    """Assemble the result-file document for one pack run."""
    return {
        "format": RESULTS_FORMAT,
        "pack": pack_name,
        "backend": backend,
        "root_seed": root_seed,
        "passed": all(result.passed for result in results),
        "results": [asdict(result) for result in results],
    }


def write_results(path: str | Path, document: dict) -> Path:
    """Write a result document as stable, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_results(path: str | Path) -> dict:
    """Load a result document, validating the format marker."""
    document = json.loads(Path(path).read_text())
    if document.get("format") != RESULTS_FORMAT:
        raise ValueError(
            f"{path}: unsupported results format {document.get('format')!r} "
            f"(expected {RESULTS_FORMAT})"
        )
    return document


def compare_documents(
    baseline: dict, current: dict, float_tolerance: float = 1e-9
) -> list[str]:
    """Diff a current result document against a committed baseline.

    Returns a list of human-readable differences (empty when the run
    reproduces the baseline).  Scenario identity is by name; digests and
    integer gate inputs must match exactly, floats within ``float_tolerance``.
    """
    differences: list[str] = []
    for field in ("pack", "backend", "root_seed"):
        if baseline.get(field) != current.get(field):
            differences.append(
                f"{field}: baseline {baseline.get(field)!r} != current {current.get(field)!r}"
            )
    baseline_results = {entry["name"]: entry for entry in baseline.get("results", [])}
    current_results = {entry["name"]: entry for entry in current.get("results", [])}
    for name in sorted(set(baseline_results) - set(current_results)):
        differences.append(f"{name}: missing from current run")
    for name in sorted(set(current_results) - set(baseline_results)):
        differences.append(f"{name}: not in baseline")
    for name in sorted(set(baseline_results) & set(current_results)):
        base, cur = baseline_results[name], current_results[name]
        for field in _EXACT_FIELDS:
            if base.get(field) != cur.get(field):
                differences.append(
                    f"{name}.{field}: baseline {base.get(field)!r} != current {cur.get(field)!r}"
                )
        for field in _FLOAT_FIELDS:
            base_value, cur_value = base.get(field), cur.get(field)
            if base_value is None or cur_value is None:
                if base_value != cur_value:
                    differences.append(
                        f"{name}.{field}: baseline {base_value!r} != current {cur_value!r}"
                    )
            elif abs(float(base_value) - float(cur_value)) > float_tolerance:
                differences.append(
                    f"{name}.{field}: baseline {base_value} != current {cur_value} "
                    f"(tolerance {float_tolerance})"
                )
    return differences


def format_results_table(results: list[ScenarioResult]) -> str:
    """Render results as the fixed-width table ``repro scenario run`` prints."""
    header = (
        f"{'scenario':<24} {'kind':<9} {'cover':>11} {'wilson':>15} "
        f"{'mean_moe':>8} {'cost':>6} {'gates':>6}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        coverage = f"{result.coverage_hits}/{result.coverage_trials}"
        wilson = f"[{result.wilson_lower:.3f},{result.wilson_upper:.3f}]"
        lines.append(
            f"{result.name:<24} {result.kind:<9} {coverage:>11} {wilson:>15} "
            f"{result.mean_moe:>8.4f} {result.mean_cost_ratio:>6.3f} "
            f"{'PASS' if result.passed else 'FAIL':>6}"
        )
        for failure in result.failures():
            lines.append(f"    !! {failure}")
    return "\n".join(lines)
