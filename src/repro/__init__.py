"""kgeval-repro: efficient knowledge-graph accuracy evaluation.

A from-scratch reproduction of *"Efficient Knowledge Graph Accuracy
Evaluation"* (Gao, Li, Xu, Sisman, Dong, Yang — VLDB 2019): sampling-based,
cost-aware estimation of the accuracy of large (and evolving) knowledge
graphs, with human annotation replaced by a simulated annotator driven by the
paper's own cost model.

Quickstart
----------
>>> from repro import (
...     make_nell_like, TwoStageWeightedClusterDesign, SimulatedAnnotator, evaluate_accuracy,
... )
>>> data = make_nell_like(seed=0)
>>> design = TwoStageWeightedClusterDesign(data.graph, second_stage_size=5, seed=0)
>>> report = evaluate_accuracy(design, SimulatedAnnotator(data.oracle), moe_target=0.05)
>>> 0.0 <= report.accuracy <= 1.0 and report.margin_of_error <= 0.05
True

The public API re-exports the most commonly used classes; the full machinery
lives in the subpackages (``repro.kg``, ``repro.labels``, ``repro.cost``,
``repro.sampling``, ``repro.core``, ``repro.evolving``, ``repro.baselines``,
``repro.generators``, ``repro.experiments``).
"""

from repro.baselines import KGEvalBaseline
from repro.core import (
    EvaluationConfig,
    EvaluationReport,
    GranularEvaluator,
    StaticEvaluator,
    evaluate_accuracy,
    evaluate_by_predicate,
)
from repro.cost import AnnotationTaskPool, CostModel, NoisyAnnotator, SimulatedAnnotator
from repro.evolving import (
    BaselineEvolvingEvaluator,
    EvolvingAccuracyMonitor,
    ReservoirIncrementalEvaluator,
    StratifiedIncrementalEvaluator,
)
from repro.generators import (
    LabelledKG,
    UpdateWorkloadGenerator,
    make_movie_full_like,
    make_movie_like,
    make_movie_syn,
    make_nell_like,
    make_yago_like,
)
from repro.kg import EvolvingKnowledgeGraph, KnowledgeGraph, Triple, UpdateBatch
from repro.labels import BinomialMixtureModel, LabelOracle, RandomErrorModel
from repro.storage import (
    ColumnarStore,
    DeltaStore,
    InMemoryStore,
    SnapshotStore,
    StorageBackend,
    ingest_nt,
    ingest_tsv,
)
from repro.sampling import (
    RandomClusterDesign,
    SimpleRandomDesign,
    StratifiedTWCSDesign,
    TwoStageRandomClusterDesign,
    TwoStageWeightedClusterDesign,
    WeightedClusterDesign,
    optimal_second_stage_size,
    recommend_design,
    run_pilot,
    stratify_by_oracle_accuracy,
    stratify_by_size,
)

__version__ = "0.2.0"

__all__ = [
    "__version__",
    # KG data model
    "Triple",
    "KnowledgeGraph",
    "UpdateBatch",
    "EvolvingKnowledgeGraph",
    # Storage backends
    "StorageBackend",
    "InMemoryStore",
    "ColumnarStore",
    "DeltaStore",
    "SnapshotStore",
    "ingest_tsv",
    "ingest_nt",
    # Labels
    "LabelOracle",
    "RandomErrorModel",
    "BinomialMixtureModel",
    # Cost / annotation
    "CostModel",
    "SimulatedAnnotator",
    "NoisyAnnotator",
    "AnnotationTaskPool",
    # Sampling designs
    "SimpleRandomDesign",
    "RandomClusterDesign",
    "WeightedClusterDesign",
    "TwoStageWeightedClusterDesign",
    "TwoStageRandomClusterDesign",
    "StratifiedTWCSDesign",
    "stratify_by_size",
    "stratify_by_oracle_accuracy",
    "optimal_second_stage_size",
    "run_pilot",
    "recommend_design",
    # Evaluation framework
    "EvaluationConfig",
    "EvaluationReport",
    "StaticEvaluator",
    "evaluate_accuracy",
    "GranularEvaluator",
    "evaluate_by_predicate",
    # Evolving KG evaluation
    "BaselineEvolvingEvaluator",
    "ReservoirIncrementalEvaluator",
    "StratifiedIncrementalEvaluator",
    "EvolvingAccuracyMonitor",
    # Baseline
    "KGEvalBaseline",
    # Datasets
    "LabelledKG",
    "make_nell_like",
    "make_yago_like",
    "make_movie_like",
    "make_movie_syn",
    "make_movie_full_like",
    "UpdateWorkloadGenerator",
]
