"""Baselines the paper compares against.

Besides simple random sampling (available as a first-class design in
:mod:`repro.sampling`), the paper's main competitor is **KGEval**
(Ojha & Talukdar, EMNLP 2017), which exploits coupling constraints between
triples to propagate a few manually obtained labels across the graph.  The
reimplementation here (:mod:`repro.baselines.kgeval`) follows the same
select → annotate → propagate loop over a coupling-constraint graph and
exposes the quantities Table 6 compares: machine time spent selecting triples,
number of triples annotated, annotation cost, and the resulting (biased)
accuracy estimate.
"""

from repro.baselines.coupling import CouplingGraphBuilder
from repro.baselines.kgeval import KGEvalBaseline, KGEvalResult

__all__ = ["CouplingGraphBuilder", "KGEvalBaseline", "KGEvalResult"]
