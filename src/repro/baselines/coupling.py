"""Coupling constraints between triples, in the spirit of KGEval.

KGEval's inference mechanism (Ojha & Talukdar 2017) rests on *coupling
constraints*: relationships between triples such that knowing the correctness
of one triple is evidence about another.  The original system derives them
from type consistency and Horn-clause couplings mined by NELL; this
reimplementation derives structural couplings that are available in any KG:

* **subject–predicate coupling** — triples sharing subject and predicate
  (e.g. two birth places for one person) tend to agree in correctness for
  functional predicates;
* **predicate–object coupling** — triples sharing predicate and object
  (e.g. many people born in the same city) are weak positive evidence for one
  another;
* **entity coupling** — triples of the same subject entity are weakly coupled
  (the Figure 3 observation that entity accuracy is cluster-coherent);
* **predicate (type-consistency) coupling** — triples of the same predicate are
  sparsely coupled to one another, standing in for the type-consistency
  constraints KGEval mines from NELL's ontology.

The resulting undirected, weighted graph over triples (a ``networkx.Graph``)
is what the KGEval baseline selects from and propagates over.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple

__all__ = ["CouplingGraphBuilder"]


class CouplingGraphBuilder:
    """Builds the coupling-constraint graph over the triples of a KG.

    Parameters
    ----------
    subject_predicate_weight:
        Edge weight for triples sharing (subject, predicate).
    predicate_object_weight:
        Edge weight for triples sharing (predicate, object).
    entity_weight:
        Edge weight for triples sharing only the subject entity.
    predicate_weight:
        Edge weight for the sparse type-consistency coupling among triples of
        the same predicate.
    max_group_size:
        Groups larger than this are connected sparsely (each member to a few
        random peers) instead of as a clique, keeping the edge count linear
        for very common predicates/objects.
    sparse_degree:
        Number of random peers each member of a large group is connected to.
    seed:
        Seed for the sparse-connection randomness.
    """

    def __init__(
        self,
        subject_predicate_weight: float = 1.0,
        predicate_object_weight: float = 0.5,
        entity_weight: float = 0.3,
        predicate_weight: float = 0.2,
        max_group_size: int = 30,
        sparse_degree: int = 3,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if max_group_size < 2:
            raise ValueError("max_group_size must be at least 2")
        if sparse_degree < 1:
            raise ValueError("sparse_degree must be at least 1")
        self.subject_predicate_weight = subject_predicate_weight
        self.predicate_object_weight = predicate_object_weight
        self.entity_weight = entity_weight
        self.predicate_weight = predicate_weight
        self.max_group_size = max_group_size
        self.sparse_degree = sparse_degree
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _connect_group(self, graph: nx.Graph, members: list[Triple], weight: float) -> None:
        """Connect a coupled group (clique for small groups, sparse for large)."""
        if len(members) < 2 or weight <= 0:
            return
        if len(members) <= self.max_group_size:
            for i, first in enumerate(members):
                for second in members[i + 1 :]:
                    self._add_edge(graph, first, second, weight)
        else:
            for index, member in enumerate(members):
                peers = self._rng.choice(
                    len(members), size=min(self.sparse_degree, len(members) - 1), replace=False
                )
                for peer_index in peers:
                    if int(peer_index) == index:
                        continue
                    self._add_edge(graph, member, members[int(peer_index)], weight)

    @staticmethod
    def _add_edge(graph: nx.Graph, first: Triple, second: Triple, weight: float) -> None:
        if graph.has_edge(first, second):
            graph[first][second]["weight"] += weight
        else:
            graph.add_edge(first, second, weight=weight)

    def build(self, kg: KnowledgeGraph) -> nx.Graph:
        """Build the coupling graph for every triple of ``kg``.

        Every triple becomes a node even if it ends up isolated (no coupling
        evidence), so the baseline can still fall back to direct annotation
        for isolated triples.
        """
        graph: nx.Graph = nx.Graph()
        graph.add_nodes_from(kg.triples)

        by_subject_predicate: dict[tuple[str, str], list[Triple]] = {}
        by_predicate_object: dict[tuple[str, str], list[Triple]] = {}
        by_predicate: dict[str, list[Triple]] = {}
        for triple in kg:
            by_subject_predicate.setdefault((triple.subject, triple.predicate), []).append(triple)
            by_predicate_object.setdefault((triple.predicate, triple.obj), []).append(triple)
            by_predicate.setdefault(triple.predicate, []).append(triple)

        for members in by_subject_predicate.values():
            self._connect_group(graph, members, self.subject_predicate_weight)
        for members in by_predicate_object.values():
            self._connect_group(graph, members, self.predicate_object_weight)
        for cluster in kg.clusters():
            self._connect_group(graph, list(cluster.triples), self.entity_weight)
        for members in by_predicate.values():
            self._connect_group(graph, members, self.predicate_weight)
        return graph
