"""A reimplementation of the KGEval baseline (Ojha & Talukdar, EMNLP 2017).

KGEval estimates KG accuracy by annotating a small set of carefully chosen
triples and *inferring* labels for the rest through coupling constraints.  The
original system runs Probabilistic Soft Logic over mined constraints; this
reimplementation keeps the same control loop on a structural coupling graph
(:mod:`repro.baselines.coupling`):

1. **Select** the unlabelled triple whose annotation would propagate to the
   largest amount of still-unlabelled coupling weight (recomputed after every
   annotation — this per-selection machine cost is exactly the scalability
   problem Table 6 exposes).
2. **Annotate** the selected triple (paying the usual c1/c2 cost).
3. **Propagate**: coupled neighbours accumulate signed evidence; once a
   triple's absolute evidence crosses a threshold it receives an inferred
   label, which is itself propagated onward with decayed confidence.
4. Stop when the labelled (annotated + inferred) fraction of the KG reaches a
   coverage target or the annotation budget is exhausted; the accuracy
   estimate is the mean label over all labelled triples.

Unlike the sampling designs, the resulting estimate carries no unbiasedness or
confidence-interval guarantee — propagation mistakes translate directly into
estimation bias — which is the qualitative comparison point of Table 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import networkx as nx

from repro.baselines.coupling import CouplingGraphBuilder
from repro.cost.annotator import SimulatedAnnotator
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple

__all__ = ["KGEvalResult", "KGEvalBaseline"]


@dataclass(frozen=True)
class KGEvalResult:
    """Outcome of a KGEval run (the quantities compared in Table 6)."""

    estimated_accuracy: float
    num_annotated: int
    num_inferred: int
    coverage: float
    machine_time_seconds: float
    annotation_cost_seconds: float

    @property
    def annotation_cost_hours(self) -> float:
        """Annotation cost in hours."""
        return self.annotation_cost_seconds / 3600.0


class KGEvalBaseline:
    """Coupling-constraint label propagation for KG accuracy estimation.

    Parameters
    ----------
    graph:
        The knowledge graph to evaluate.
    annotator:
        Annotator used for the manually labelled seed triples.
    builder:
        Coupling-graph builder; a default structural builder is used when
        omitted.
    inference_threshold:
        Minimum absolute accumulated evidence before an unlabelled triple
        receives an inferred label.
    propagation_decay:
        Confidence multiplier applied when an *inferred* (rather than
        annotated) label propagates onward.
    coverage_target:
        Fraction of the KG that must be labelled (annotated or inferred)
        before the loop stops.
    max_annotations:
        Hard budget on manual annotations (``None`` = unbounded).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        annotator: SimulatedAnnotator,
        builder: CouplingGraphBuilder | None = None,
        inference_threshold: float = 0.45,
        propagation_decay: float = 0.5,
        coverage_target: float = 0.9,
        max_annotations: int | None = None,
    ) -> None:
        if not 0.0 < coverage_target <= 1.0:
            raise ValueError("coverage_target must be in (0, 1]")
        if inference_threshold <= 0:
            raise ValueError("inference_threshold must be positive")
        if not 0.0 < propagation_decay <= 1.0:
            raise ValueError("propagation_decay must be in (0, 1]")
        self.graph = graph
        self.annotator = annotator
        self.builder = builder if builder is not None else CouplingGraphBuilder(seed=0)
        self.inference_threshold = inference_threshold
        self.propagation_decay = propagation_decay
        self.coverage_target = coverage_target
        self.max_annotations = max_annotations
        self._coupling: nx.Graph | None = None

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _coupling_graph(self) -> nx.Graph:
        if self._coupling is None:
            self._coupling = self.builder.build(self.graph)
        return self._coupling

    def _select_next(self, coupling: nx.Graph, labelled: dict[Triple, bool]) -> Triple | None:
        """Pick the unlabelled triple with the most unlabelled coupling weight.

        This full scan per selection mirrors KGEval's expensive inference-driven
        selection step; it is intentionally not incrementalised.
        """
        best_triple: Triple | None = None
        best_benefit = -1.0
        for triple in self.graph:
            if triple in labelled:
                continue
            benefit = 0.0
            for neighbour, data in coupling[triple].items():
                if neighbour not in labelled:
                    benefit += float(data.get("weight", 1.0))
            if benefit > best_benefit:
                best_benefit = benefit
                best_triple = triple
        return best_triple

    def _propagate(
        self,
        coupling: nx.Graph,
        source: Triple,
        label: bool,
        confidence: float,
        labelled: dict[Triple, bool],
        evidence: dict[Triple, float],
    ) -> None:
        """Push signed evidence from ``source`` and cascade newly inferred labels."""
        frontier = [(source, label, confidence)]
        while frontier:
            triple, triple_label, triple_confidence = frontier.pop()
            sign = 1.0 if triple_label else -1.0
            for neighbour, data in coupling[triple].items():
                if neighbour in labelled:
                    continue
                weight = float(data.get("weight", 1.0))
                contribution = sign * weight * triple_confidence
                evidence[neighbour] = evidence.get(neighbour, 0.0) + contribution
                if abs(evidence[neighbour]) >= self.inference_threshold:
                    inferred_label = evidence[neighbour] > 0
                    labelled[neighbour] = inferred_label
                    frontier.append(
                        (neighbour, inferred_label, triple_confidence * self.propagation_decay)
                    )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> KGEvalResult:
        """Execute the select → annotate → propagate loop and estimate accuracy."""
        machine_time = 0.0
        start = time.perf_counter()
        coupling = self._coupling_graph()
        machine_time += time.perf_counter() - start

        labelled: dict[Triple, bool] = {}
        annotated: set[Triple] = set()
        evidence: dict[Triple, float] = {}
        total = self.graph.num_triples
        cost_before = self.annotator.total_cost_seconds

        while True:
            coverage = len(labelled) / total if total else 1.0
            if coverage >= self.coverage_target:
                break
            if self.max_annotations is not None and len(annotated) >= self.max_annotations:
                break

            start = time.perf_counter()
            selected = self._select_next(coupling, labelled)
            machine_time += time.perf_counter() - start
            if selected is None:
                break

            result = self.annotator.annotate_triples([selected])
            label = result.labels[selected]
            labelled[selected] = label
            annotated.add(selected)

            start = time.perf_counter()
            self._propagate(coupling, selected, label, 1.0, labelled, evidence)
            machine_time += time.perf_counter() - start

        if labelled:
            estimated_accuracy = sum(1 for value in labelled.values() if value) / len(labelled)
        else:
            estimated_accuracy = 0.0
        return KGEvalResult(
            estimated_accuracy=estimated_accuracy,
            num_annotated=len(annotated),
            num_inferred=len(labelled) - len(annotated),
            coverage=len(labelled) / total if total else 1.0,
            machine_time_seconds=machine_time,
            annotation_cost_seconds=self.annotator.total_cost_seconds - cost_before,
        )
