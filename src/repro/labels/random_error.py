"""The Random Error Model (REM) for synthetic labels.

Section 7.1.2: "The probability that a triple in the KG is correct is a fixed
error rate r_e in [0, 1]."  (The paper phrases the parameter as an error rate;
we expose both the error rate and the resulting accuracy to avoid off-by-one
confusion in experiment code.)
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.labels.oracle import LabelOracle

__all__ = ["RandomErrorModel"]


class RandomErrorModel:
    """Label every triple correct independently with probability ``1 - error_rate``.

    Parameters
    ----------
    error_rate:
        Probability that a triple is *incorrect* (``r_e`` in the paper).
    seed:
        Seed or generator for reproducible label draws.

    Examples
    --------
    >>> model = RandomErrorModel(error_rate=0.1, seed=7)
    >>> model.accuracy
    0.9
    """

    def __init__(self, error_rate: float, seed: int | np.random.Generator | None = None) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
        self.error_rate = error_rate
        self._rng = np.random.default_rng(seed)

    @property
    def accuracy(self) -> float:
        """Expected overall accuracy ``1 - error_rate``."""
        return 1.0 - self.error_rate

    def generate(self, graph: KnowledgeGraph) -> LabelOracle:
        """Draw a label for every triple in ``graph`` and return an oracle."""
        draws = self._rng.random(graph.num_triples)
        labels = {triple: bool(draw >= self.error_rate) for triple, draw in zip(graph, draws)}
        return LabelOracle(labels)

    @classmethod
    def with_accuracy(
        cls, accuracy: float, seed: int | np.random.Generator | None = None
    ) -> "RandomErrorModel":
        """Construct a model from a target accuracy instead of an error rate.

        Raises
        ------
        ValueError
            If ``accuracy`` is outside [0, 1] (or NaN).  Validating here keeps
            the message phrased in the caller's terms instead of surfacing a
            confusing complaint about the derived ``error_rate``.
        """
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        return cls(error_rate=1.0 - accuracy, seed=seed)
