"""The Binomial Mixture Model (BMM) for synthetic labels.

Section 7.1.2 of the paper: the number of correct triples in the ``i``-th
entity cluster follows ``Binomial(M_i, p_i)`` where the per-cluster success
probability ``p_i`` is a sigmoid-like function of the cluster size (Eq. 15):

    p_i = 0.5 + eps                      if M_i < k
    p_i = 1 / (1 + exp(-c (M_i - k))) + eps   if M_i >= k

with ``eps ~ Normal(0, sigma)`` a small per-cluster noise term and ``c >= 0``
scaling how strongly cluster size drives accuracy.  Larger ``sigma`` and
smaller ``c`` weaken the size/accuracy correlation.  Paper defaults:
``k = 3``, ``c = 0.01``, ``sigma = 0.1``.
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.labels.oracle import LabelOracle

__all__ = ["BinomialMixtureModel"]


class BinomialMixtureModel:
    """Generate labels whose per-cluster accuracy follows Eq. (15).

    Parameters
    ----------
    c:
        Sigmoid steepness; larger values make cluster size a stronger predictor
        of entity accuracy.  Paper default 0.01.
    sigma:
        Standard deviation of the per-cluster noise term ``eps``.  Paper
        default 0.1.
    k:
        Size threshold below which the base success probability is 0.5.
        Paper default 3.
    rho:
        Within-cluster label correlation in [0, 1].  With probability ``rho``
        a triple copies a single cluster-wide Bernoulli(``p_i``) outcome and
        with probability ``1 - rho`` it is labelled independently, which makes
        ``rho`` the correlation between any two labels of the same cluster
        while keeping every marginal at ``p_i``.  ``rho = 0`` (the default)
        reproduces the original independent-label model byte-for-byte on the
        same seed.
    seed:
        Seed or generator for reproducible draws.
    """

    def __init__(
        self,
        c: float = 0.01,
        sigma: float = 0.1,
        k: int = 3,
        rho: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if c < 0:
            raise ValueError(f"c must be non-negative, got {c}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if not 0.0 <= rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {rho}")
        self.c = c
        self.sigma = sigma
        self.k = k
        self.rho = rho
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Eq. (15)
    # ------------------------------------------------------------------ #
    def cluster_probability(self, cluster_size: int, noise: float = 0.0) -> float:
        """Return ``p_i`` for a cluster of the given size, clipped to [0, 1]."""
        if cluster_size < self.k:
            base = 0.5
        else:
            base = 1.0 / (1.0 + np.exp(-self.c * (cluster_size - self.k)))
        return float(np.clip(base + noise, 0.0, 1.0))

    # ------------------------------------------------------------------ #
    # Label generation
    # ------------------------------------------------------------------ #
    def generate(self, graph: KnowledgeGraph) -> LabelOracle:
        """Draw per-cluster accuracies and per-triple labels for ``graph``.

        For each cluster we draw ``eps``, compute ``p_i`` via Eq. (15) and then
        label each triple of the cluster correct independently with probability
        ``p_i`` (which makes the number of correct triples Binomial(M_i, p_i)).

        With ``rho > 0`` each cluster additionally draws one shared
        Bernoulli(``p_i``) outcome; every triple copies it with probability
        ``rho`` and keeps its independent draw otherwise, producing
        equi-correlated labels with correlation ``rho`` and unchanged
        marginals.
        """
        labels: dict = {}
        for cluster in graph.clusters():
            noise = float(self._rng.normal(0.0, self.sigma)) if self.sigma > 0 else 0.0
            probability = self.cluster_probability(cluster.size, noise)
            if self.rho == 0.0:
                # Exactly the original stream: one uniform block per cluster.
                draws = self._rng.random(cluster.size)
                for triple, draw in zip(cluster, draws):
                    labels[triple] = bool(draw < probability)
            else:
                shared = bool(self._rng.random() < probability)
                mixture = self._rng.random(cluster.size)
                draws = self._rng.random(cluster.size)
                for triple, mix, draw in zip(cluster, mixture, draws):
                    if mix < self.rho:
                        labels[triple] = shared
                    else:
                        labels[triple] = bool(draw < probability)
        return LabelOracle(labels)

    def expected_cluster_accuracy(self, cluster_size: int) -> float:
        """Expected ``p_i`` (noise-free) for a given cluster size."""
        return self.cluster_probability(cluster_size, noise=0.0)
