"""Adversarial worst-case cluster labels.

Cluster-sampling designs lean on the assumption that per-cluster accuracies
vary smoothly with size (Figure 3 of the paper).  The adversary below breaks
that assumption as hard as possible: it concentrates all the error mass in
the *largest* clusters — the clusters that size-weighted designs visit most
often and that dominate the Hansen–Hurwitz estimator — while labelling the
rest of the graph (nearly) perfect.  The resulting per-cluster accuracy
profile is a step function, which maximises the between-cluster variance
component of Eq. (10) for a fixed overall accuracy and makes this the
stress-test label model of the scenario registry.
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.labels.oracle import LabelOracle

__all__ = ["AdversarialClusterModel"]


class AdversarialClusterModel:
    """Poison the largest clusters, keep the rest (nearly) perfect.

    Parameters
    ----------
    poisoned_mass:
        Fraction of the graph's triples (by mass, not by cluster count) that
        falls into poisoned clusters.  Clusters are taken largest-first until
        the cumulative size reaches this fraction.
    poisoned_accuracy:
        Per-triple accuracy inside poisoned clusters (default 0: every triple
        wrong).
    base_accuracy:
        Per-triple accuracy everywhere else (default 1: every triple right).
    seed:
        Seed or generator for the Bernoulli draws.  A uniform draw is consumed
        for every triple regardless of whether its cluster is poisoned, so the
        labelling stream does not depend on the threshold parameters.
    """

    def __init__(
        self,
        poisoned_mass: float = 0.1,
        poisoned_accuracy: float = 0.0,
        base_accuracy: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= poisoned_mass <= 1.0:
            raise ValueError(f"poisoned_mass must be in [0, 1], got {poisoned_mass}")
        if not 0.0 <= poisoned_accuracy <= 1.0:
            raise ValueError(f"poisoned_accuracy must be in [0, 1], got {poisoned_accuracy}")
        if not 0.0 <= base_accuracy <= 1.0:
            raise ValueError(f"base_accuracy must be in [0, 1], got {base_accuracy}")
        self.poisoned_mass = poisoned_mass
        self.poisoned_accuracy = poisoned_accuracy
        self.base_accuracy = base_accuracy
        self._rng = np.random.default_rng(seed)

    def poisoned_rows(self, graph: KnowledgeGraph) -> set[int]:
        """Cluster rows (indices into ``entity_ids``) chosen for poisoning.

        Largest clusters first (ties broken by row order) until the poisoned
        triple mass reaches ``poisoned_mass`` of the graph.
        """
        sizes = graph.cluster_size_array()
        budget = self.poisoned_mass * float(sizes.sum())
        rows: set[int] = set()
        covered = 0
        for row in np.argsort(-sizes, kind="stable"):
            if covered >= budget:
                break
            rows.add(int(row))
            covered += int(sizes[row])
        return rows

    def generate(self, graph: KnowledgeGraph) -> LabelOracle:
        """Draw labels for every triple of ``graph`` and return an oracle."""
        poisoned = self.poisoned_rows(graph)
        labels: dict = {}
        for row, cluster in enumerate(graph.clusters()):
            accuracy = self.poisoned_accuracy if row in poisoned else self.base_accuracy
            draws = self._rng.random(cluster.size)
            for triple, draw in zip(cluster, draws):
                labels[triple] = bool(draw < accuracy)
        return LabelOracle(labels)

    def expected_accuracy(self, graph: KnowledgeGraph) -> float:
        """Expected overall accuracy of the labels this model draws for ``graph``."""
        sizes = graph.cluster_size_array()
        poisoned = self.poisoned_rows(graph)
        mask = np.zeros(len(sizes), dtype=bool)
        if poisoned:
            mask[np.fromiter(poisoned, dtype=np.int64, count=len(poisoned))] = True
        total = float(sizes.sum())
        if total == 0:
            return 0.0
        poisoned_triples = float(sizes[mask].sum())
        return (
            poisoned_triples * self.poisoned_accuracy
            + (total - poisoned_triples) * self.base_accuracy
        ) / total
