"""The ground-truth label store consulted by the simulated annotator.

In the paper the correctness of a triple is a value function
``f : t -> {0, 1}`` obtained by manual annotation.  In this reproduction human
annotators are replaced by a :class:`LabelOracle` holding the ground truth
(either loaded from an annotated file or generated synthetically); the
annotation *cost* is charged separately by :mod:`repro.cost`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple

__all__ = ["LabelOracle"]


class LabelOracle:
    """Maps each triple to its true correctness label.

    Parameters
    ----------
    labels:
        Mapping of triple to boolean correctness.
    strict:
        When ``True`` (default), asking for an unknown triple raises
        ``KeyError``.  When ``False``, unknown triples are reported as correct,
        which is occasionally convenient for ad-hoc exploration but never used
        by the experiment harness.
    """

    def __init__(self, labels: Mapping[Triple, bool], strict: bool = True) -> None:
        self._labels = dict(labels)
        self._strict = strict

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def label(self, triple: Triple) -> bool:
        """Return the correctness label of ``triple``."""
        if triple in self._labels:
            return self._labels[triple]
        if self._strict:
            raise KeyError(f"no ground-truth label for {triple}")
        return True

    def labels_for(self, triples: Iterable[Triple]) -> list[bool]:
        """Return labels for a sequence of triples, preserving order."""
        return [self.label(triple) for triple in triples]

    @property
    def mapping(self) -> Mapping[Triple, bool]:
        """Read-only view of the underlying triple -> label mapping."""
        return self._labels

    def as_position_array(self, graph: KnowledgeGraph):
        """Labels as a boolean array aligned with ``graph`` triple positions.

        One O(M) conversion; afterwards the samplers' position surface
        (``draw_positions`` / ``update_all_positions``) resolves labels with
        pure array indexing, no Triple hashing.  Unknown triples follow the
        oracle's ``strict`` setting: ``KeyError`` when strict, ``True``
        otherwise.
        """
        if not self._strict:
            return graph.position_label_array(self._labels, default=True)
        import numpy as np

        # self.label raises the oracle's KeyError on the first missing triple,
        # so strictness costs no extra pass over the graph.
        return np.fromiter(
            (self.label(triple) for triple in graph), dtype=bool, count=graph.num_triples
        )

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    # ------------------------------------------------------------------ #
    # Population-level quantities (used by tests and oracle stratification)
    # ------------------------------------------------------------------ #
    def true_accuracy(self, graph: KnowledgeGraph) -> float:
        """The exact population accuracy ``µ(G)`` under this oracle."""
        if graph.num_triples == 0:
            return 0.0
        correct = sum(1 for triple in graph if self.label(triple))
        return correct / graph.num_triples

    def cluster_accuracy(self, graph: KnowledgeGraph, entity_id: str) -> float:
        """The exact accuracy ``µ_i`` of one entity cluster."""
        cluster = graph.cluster(entity_id)
        correct = sum(1 for triple in cluster if self.label(triple))
        return correct / cluster.size

    def cluster_accuracies(self, graph: KnowledgeGraph) -> dict[str, float]:
        """Exact per-cluster accuracies for every entity in ``graph``."""
        return {
            cluster.entity_id: sum(1 for t in cluster if self.label(t)) / cluster.size
            for cluster in graph.clusters()
        }

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #
    def extend(self, other: "LabelOracle | Mapping[Triple, bool]") -> None:
        """Add labels from ``other`` in place (new labels win on conflict).

        Evolving-KG evaluation extends the oracle as each update batch arrives
        with its own ground-truth labels.
        """
        if isinstance(other, LabelOracle):
            self._labels.update(other._labels)
        else:
            self._labels.update(other)

    def merged_with(self, other: "LabelOracle") -> "LabelOracle":
        """Return a new oracle containing this oracle's labels plus ``other``'s.

        Labels from ``other`` win on conflict; used when an evolving KG's
        update batches carry their own synthetic labels.
        """
        combined = dict(self._labels)
        combined.update(other._labels)
        return LabelOracle(combined, strict=self._strict)

    def as_dict(self) -> dict[Triple, bool]:
        """Return a copy of the underlying triple-to-label mapping."""
        return dict(self._labels)
