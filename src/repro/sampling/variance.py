"""Theoretical variances used in the paper's cost analyses.

* :func:`srs_variance` — the binomial population variance ``µ(1-µ)`` behind the
  SRS sample-size formula of Section 5.1;
* :func:`twcs_theoretical_variance` — Eq. (10), the variance of the TWCS
  estimator ``µ̂_{w,m}`` for a given second-stage size ``m``:

    Var(µ̂_{w,m}) = (1/(nM)) [ Σ_i M_i (µ_i - µ)^2
                               + (1/m) Σ_{i: M_i > m} ((M_i - m)/(M_i - 1)) M_i µ_i (1-µ_i) ]

  The first term is the between-cluster component; the second is the
  within-cluster component, damped by the finite-population correction
  ``(M_i - m)/(M_i - 1)`` because the second stage samples without
  replacement.  ``V(m)`` (the bracketed part divided by ``M``) is what the
  optimal-m objective Eq. (12) minimises.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["srs_variance", "twcs_v_of_m", "twcs_theoretical_variance"]


def srs_variance(accuracy: float) -> float:
    """Population variance ``µ (1 - µ)`` of a single Bernoulli triple label."""
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError("accuracy must be in [0, 1]")
    return accuracy * (1.0 - accuracy)


def _validate_clusters(
    cluster_sizes: Sequence[int], cluster_accuracies: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    sizes = np.asarray(cluster_sizes, dtype=float)
    accuracies = np.asarray(cluster_accuracies, dtype=float)
    if sizes.shape != accuracies.shape:
        raise ValueError("cluster_sizes and cluster_accuracies must have the same length")
    if sizes.size == 0:
        raise ValueError("at least one cluster is required")
    if np.any(sizes < 1):
        raise ValueError("cluster sizes must be at least 1")
    if np.any((accuracies < 0) | (accuracies > 1)):
        raise ValueError("cluster accuracies must be in [0, 1]")
    return sizes, accuracies


def twcs_v_of_m(
    cluster_sizes: Sequence[int],
    cluster_accuracies: Sequence[float],
    second_stage_size: int,
) -> float:
    """The per-cluster-draw variance ``V(m)`` from Section 5.2.3.

    ``Var(µ̂_{w,m}) = V(m) / n`` for ``n`` first-stage cluster draws, so the
    sample-size requirement becomes ``n >= V(m) z^2 / ε^2``.
    """
    if second_stage_size < 1:
        raise ValueError("second_stage_size must be at least 1")
    sizes, accuracies = _validate_clusters(cluster_sizes, cluster_accuracies)
    total_triples = sizes.sum()
    overall_accuracy = float(np.dot(sizes, accuracies) / total_triples)

    between = float(np.dot(sizes, (accuracies - overall_accuracy) ** 2))

    larger = sizes > second_stage_size
    if np.any(larger):
        sizes_large = sizes[larger]
        accuracies_large = accuracies[larger]
        fpc = (sizes_large - second_stage_size) / (sizes_large - 1.0)
        within = float(
            np.sum(fpc * sizes_large * accuracies_large * (1.0 - accuracies_large))
        ) / second_stage_size
    else:
        within = 0.0

    return (between + within) / total_triples


def twcs_theoretical_variance(
    cluster_sizes: Sequence[int],
    cluster_accuracies: Sequence[float],
    second_stage_size: int,
    num_cluster_draws: int,
) -> float:
    """Eq. (10): the variance of ``µ̂_{w,m}`` for ``n`` first-stage draws."""
    if num_cluster_draws < 1:
        raise ValueError("num_cluster_draws must be at least 1")
    return twcs_v_of_m(cluster_sizes, cluster_accuracies, second_stage_size) / num_cluster_draws
