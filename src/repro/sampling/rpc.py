"""Socket RPC shard transport: multi-node execution of shard tasks.

The wire protocol is deliberately small: every message is one pickled
Python object behind an 8-byte big-endian length prefix
(:func:`send_message` / :func:`recv_message`, with :func:`encode_message` /
:func:`decode_message` as the pure byte codec).  A worker node
(``repro worker --listen HOST:PORT``) accepts one master connection at a
time and speaks five operations:

``hello``
    Handshake: protocol version check, worker advertises its cached
    snapshot digests.
``attach {digest}``
    Bind the connection to a CSR index by content address.  The worker
    replies ``ok`` when its :class:`~repro.storage.distribute.SnapshotCache`
    already holds the digest (memory-mapping the columns), or
    ``need_snapshot`` — the master then streams one ``put_snapshot`` with
    the packaged ``.npy`` columns and re-attaches.  An unchanged graph is
    therefore shipped to each node **once**, across runs and reconnects.
``put_snapshot {digest, arrays}``
    Store a packaged snapshot in the worker's content-addressed cache.
``task {task}``
    Execute one self-contained :class:`~repro.sampling.parallel.ShardTask`
    against the attached index and return its
    :class:`~repro.sampling.parallel.ShardResult`.
``shutdown``
    Close the connection (the worker keeps listening for the next master).

:class:`SocketRPCTransport` implements the master side of the
:class:`~repro.sampling.parallel.ShardTransport` contract: tasks are
streamed to live nodes (one draining thread per node), results are slotted
back **in task order**, and a dropped node's unacknowledged tasks are
reassigned to the surviving nodes.  Because every task carries its own
random-generator state, re-executing it elsewhere reproduces the identical
result — node failures never perturb a trajectory, they only change which
machine computed it.  Labels never cross the wire; workers only ever hold
the CSR index.

Trust model: messages are pickled, so the transport is for clusters you
control end-to-end (the same trust level as the fork pool), not for
untrusted networks.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from collections import deque
from pathlib import Path

import numpy as np

from repro.sampling.parallel import ShardResult, ShardTask, ShardTransport, _run_task
from repro.storage.distribute import SnapshotCache, csr_digest, pack_csr

__all__ = [
    "PROTOCOL_VERSION",
    "RPCError",
    "RPCTaskError",
    "encode_message",
    "decode_message",
    "send_message",
    "recv_message",
    "parse_node_address",
    "serve_worker",
    "SocketRPCTransport",
]

PROTOCOL_VERSION = 1
_LENGTH = struct.Struct(">Q")
#: Upper bound on one frame (a packaged CSR column dominates; 16 GiB is far
#: beyond any graph this engine targets and catches corrupted prefixes).
MAX_MESSAGE_BYTES = 16 * 2**30


class RPCError(RuntimeError):
    """Transport-level failure (connection, protocol, no surviving nodes)."""


class RPCTaskError(RPCError):
    """A shard task raised on the worker; re-raised on the master.

    Unlike a connection drop this is *not* retried on another node — the
    task itself is at fault and would fail identically everywhere.
    """


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def encode_message(obj) -> bytes:
    """Serialise one message (length prefix + pickle payload)."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _LENGTH.pack(len(payload)) + payload


def decode_message(data: bytes):
    """Inverse of :func:`encode_message` for one complete frame."""
    if len(data) < _LENGTH.size:
        raise RPCError(f"truncated frame: {len(data)} bytes")
    (length,) = _LENGTH.unpack(data[: _LENGTH.size])
    payload = data[_LENGTH.size :]
    if len(payload) != length:
        raise RPCError(f"frame length mismatch: header {length}, payload {len(payload)}")
    return pickle.loads(payload)


def send_message(sock: socket.socket, obj) -> None:
    """Write one framed message to a socket."""
    sock.sendall(encode_message(obj))


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count and not chunks:
                return None  # clean EOF at a frame boundary
            raise RPCError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket):
    """Read one framed message; returns ``None`` on clean end-of-stream."""
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise RPCError(f"frame of {length} bytes exceeds limit {MAX_MESSAGE_BYTES}")
    payload = _recv_exactly(sock, length) if length else b""
    if payload is None:
        raise RPCError("connection closed mid-frame")
    return pickle.loads(payload)


def parse_node_address(spec: str | tuple[str, int]) -> tuple[str, int]:
    """Parse ``"host:port"`` (or pass through a ``(host, port)`` pair)."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, separator, port = spec.rpartition(":")
    if not separator or not host:
        raise ValueError(f"node address {spec!r} is not of the form host:port")
    return host, int(port)


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
def _reply_for(
    op,
    message: dict,
    cache: SnapshotCache,
    attached: tuple[np.ndarray, np.ndarray] | None,
) -> dict:
    """Compute the worker's reply to one request (side effects already done)."""
    if op == "hello":
        return {
            "op": "hello",
            "version": PROTOCOL_VERSION,
            "digests": cache.digests(),
        }
    if op == "attach":
        if attached is not None:
            return {"op": "ok"}
        return {"op": "need_snapshot", "digest": message["digest"]}
    if op == "put_snapshot":
        cache.store(message["digest"], message["arrays"])
        return {"op": "ok"}
    if op == "task":
        try:
            result = _run_task(message["task"], attached)
        except Exception as exc:  # propagate to the master, don't kill the worker
            return {"op": "error", "message": f"{type(exc).__name__}: {exc}"}
        return {"op": "result", "result": result}
    return {"op": "error", "message": f"unknown op {op!r}"}


def _serve_connection(conn: socket.socket, cache: SnapshotCache) -> None:
    attached: tuple[np.ndarray, np.ndarray] | None = None
    with conn:
        while True:
            # Any per-message failure — master vanished mid-frame, RST while
            # we reply to an in-flight task, garbage that does not unpickle,
            # a non-dict or keyless message from a stray client — drops
            # *this* connection only; the worker keeps listening for the
            # next master.  (Task execution errors are replied, not raised.)
            try:
                message = recv_message(conn)
                if message is None:
                    return
                op = message.get("op")
                if op == "shutdown":
                    return
                if op == "attach":
                    # A failed attach clears any previous attachment: the
                    # master wants *this* digest, and stale arrays must
                    # never answer it.
                    digest = message["digest"]
                    attached = cache.load_csr(digest) if cache.has(digest) else None
                send_message(conn, _reply_for(op, message, cache, attached))
            except Exception:
                return


def serve_worker(
    host: str,
    port: int,
    cache_dir: str | Path,
    *,
    on_ready=None,
    max_connections: int | None = None,
    idle_timeout: float | None = 3600.0,
) -> None:
    """Run a worker node: accept master connections and execute shard tasks.

    Binds ``host:port`` (``port=0`` picks an ephemeral port), then serves
    one connection at a time until ``max_connections`` is exhausted (or
    forever).  ``on_ready(host, port)`` fires once with the actual bound
    address — the CLI prints it so callers using port 0 learn the port.
    Snapshot shards received from masters persist in ``cache_dir`` across
    connections, so a restarted evaluation re-ships nothing.

    ``idle_timeout`` bounds how long one connection may sit silent: a master
    that half-opens and vanishes without an RST (partition, SIGSTOP) cannot
    wedge the single-connection worker forever — the stale connection is
    dropped and the node returns to accepting.  A master that idles longer
    than this between rounds observes the node as dropped on its next round
    (and reassigns accordingly), so keep the default generous.
    """
    cache = SnapshotCache(cache_dir)
    with socket.create_server((host, port)) as server:
        bound_host, bound_port = server.getsockname()[:2]
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        served = 0
        while max_connections is None or served < max_connections:
            conn, _ = server.accept()
            conn.settimeout(idle_timeout)
            served += 1
            _serve_connection(conn, cache)


# --------------------------------------------------------------------------- #
# Master side
# --------------------------------------------------------------------------- #
class _Node:
    """One master→worker connection with lazy attach and failure latching."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float,
        io_timeout: float | None,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.sock: socket.socket | None = None
        self.dead = False
        self.last_error: str | None = None
        self.attached_digest: str | None = None
        self.snapshots_shipped = 0
        self.tasks_executed = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def mark_dead(self, error: Exception | str) -> None:
        self.dead = True
        self.last_error = str(error)
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - close failures are moot
                pass
            self.sock = None

    def _request(self, message: dict) -> dict:
        assert self.sock is not None
        send_message(self.sock, message)
        reply = recv_message(self.sock)
        if reply is None:
            raise RPCError(f"node {self.address} closed the connection")
        return reply

    def ensure_ready(self, digest: str, package_bytes) -> None:
        """Connect, handshake and attach the node to ``digest`` (idempotent)."""
        if self.dead:
            raise RPCError(f"node {self.address} is dead: {self.last_error}")
        if self.sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
            # A finite per-operation deadline: a silently partitioned or
            # wedged node (no FIN/RST ever arrives) times out, which latches
            # it dead and reassigns its tasks — instead of hanging forever.
            sock.settimeout(self.io_timeout)
            self.sock = sock
            self.attached_digest = None
            hello = self._request({"op": "hello", "version": PROTOCOL_VERSION})
            if hello.get("op") != "hello" or hello.get("version") != PROTOCOL_VERSION:
                raise RPCError(
                    f"node {self.address} spoke {hello!r}, "
                    f"expected hello v{PROTOCOL_VERSION}"
                )
        if self.attached_digest == digest:
            return
        reply = self._request({"op": "attach", "digest": digest})
        if reply.get("op") == "need_snapshot":
            self._request({"op": "put_snapshot", "digest": digest, "arrays": package_bytes()})
            self.snapshots_shipped += 1
            reply = self._request({"op": "attach", "digest": digest})
        if reply.get("op") != "ok":
            raise RPCError(f"node {self.address} failed to attach {digest}: {reply!r}")
        self.attached_digest = digest

    def run_task(self, task: ShardTask) -> ShardResult:
        reply = self._request({"op": "task", "task": task})
        op = reply.get("op")
        if op == "error":
            raise RPCTaskError(f"node {self.address}: {reply.get('message')}")
        if op != "result":
            raise RPCError(f"node {self.address} returned {op!r} for a task")
        self.tasks_executed += 1
        return reply["result"]

    def close(self) -> None:
        if self.sock is not None:
            try:
                send_message(self.sock, {"op": "shutdown"})
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:  # pragma: no cover
                pass
            self.sock = None
        self.attached_digest = None


class SocketRPCTransport(ShardTransport):
    """Execute shard tasks on remote worker nodes over loopback/LAN TCP.

    Parameters
    ----------
    nodes:
        Worker addresses — ``"host:port"`` strings or ``(host, port)``
        pairs, each one a running ``repro worker --listen`` process.
    connect_timeout:
        Seconds to wait for a node's TCP connect before declaring it dead.
    io_timeout:
        Per-operation socket deadline (seconds).  A node that stops
        responding without closing the connection — pulled cable, firewall
        drop, wedged process — trips this, is latched dead and has its
        tasks reassigned.  Generous by default (it bounds one snapshot
        transfer or one shard round, not the whole run); ``None`` disables
        the deadline.

    Failure handling: a node that drops mid-round (connection reset, kill
    -9, network partition) is latched dead and its in-flight plus queued
    tasks are drained by the surviving nodes.  Tasks are pure functions of
    ``(task, CSR index)`` — each carries the exact per-shard generator
    state it must resume from — so the reassigned execution is bit-identical
    and the run's determinism contract survives any drop pattern.  Only
    when *no* node survives does :meth:`execute` raise :class:`RPCError`.
    """

    def __init__(
        self,
        nodes,
        *,
        connect_timeout: float = 10.0,
        io_timeout: float | None = 600.0,
    ) -> None:
        addresses = [parse_node_address(node) for node in nodes]
        if not addresses:
            raise ValueError("SocketRPCTransport requires at least one node address")
        self._nodes = [
            _Node(host, port, connect_timeout, io_timeout) for host, port in addresses
        ]
        self._digest: str | None = None
        self._package: dict[str, bytes] | None = None
        self._lock = threading.Lock()

    @property
    def default_shards(self) -> int | None:
        return len(self._nodes)

    # ------------------------------------------------------------------ #
    # Binding and snapshot packaging
    # ------------------------------------------------------------------ #
    def bind(self, offsets, positions, *, snapshot=None) -> None:
        super().bind(offsets, positions, snapshot=snapshot)
        self._digest = None
        self._package = None

    @property
    def digest(self) -> str:
        """Content address of the bound CSR index (computed lazily, once)."""
        if self._digest is None:
            self._digest = csr_digest(self._offsets, self._positions)
        return self._digest

    def _package_bytes(self) -> dict[str, bytes]:
        # Packed once per bind, and only if some node actually lacks the
        # digest; nodes that already hold it never trigger the packing cost.
        if self._package is None:
            self._package = pack_csr(self._offsets, self._positions)
        return self._package

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _ready_nodes(self) -> list[_Node]:
        ready = []
        for node in self._nodes:
            if node.dead:
                continue
            try:
                node.ensure_ready(self.digest, self._package_bytes)
            except (OSError, RPCError) as exc:
                node.mark_dead(exc)
                continue
            ready.append(node)
        # Every surviving node now holds the digest (dead nodes never come
        # back), so the packed payload is dead weight — release it rather
        # than doubling the master's resident CSR footprint for the run.
        self._package = None
        return ready

    def execute(self, tasks: list[ShardTask]) -> list[ShardResult]:
        results: list[ShardResult | None] = [None] * len(tasks)
        pending: deque[tuple[int, ShardTask]] = deque(enumerate(tasks))
        task_error: list[RPCTaskError] = []

        def drain(node: _Node) -> None:
            while not task_error:
                with self._lock:
                    if not pending:
                        return
                    slot, task = pending.popleft()
                try:
                    result = node.run_task(task)
                except RPCTaskError as exc:
                    task_error.append(exc)
                    with self._lock:
                        pending.appendleft((slot, task))
                    return
                except Exception as exc:
                    # Connection drop, deadline, malformed/undecodable reply:
                    # all count as a failed *node* — latch it dead, requeue
                    # the task for the survivors, stop draining.  Nothing may
                    # leak a task (a None result would corrupt the merge).
                    node.mark_dead(exc)
                    with self._lock:
                        pending.appendleft((slot, task))
                    return
                results[slot] = result

        while pending and not task_error:
            nodes = self._ready_nodes()
            if not nodes:
                errors = "; ".join(
                    f"{node.address}: {node.last_error}" for node in self._nodes
                )
                raise RPCError(f"no live worker nodes remain ({errors})")
            threads = [
                threading.Thread(target=drain, args=(node,), daemon=True)
                for node in nodes
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if task_error:
            raise task_error[0]
        if any(result is None for result in results):  # pragma: no cover - guard
            raise RPCError("transport lost a task without raising; refusing to merge")
        return results  # type: ignore[return-value]

    def close(self) -> None:
        for node in self._nodes:
            node.close()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Per-transport counters (shipping, execution, node health)."""
        return {
            "nodes": [
                {
                    "address": node.address,
                    "dead": node.dead,
                    "snapshots_shipped": node.snapshots_shipped,
                    "tasks_executed": node.tasks_executed,
                }
                for node in self._nodes
            ],
            "snapshots_shipped": sum(n.snapshots_shipped for n in self._nodes),
            "live_nodes": sum(not n.dead for n in self._nodes),
        }
