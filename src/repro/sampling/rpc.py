"""Socket RPC shard transport: multi-node execution of shard tasks.

Protocol v2 — hardened for real clusters.  Every message is one value under
the schema'd binary codec of :mod:`repro.sampling.wire` (tagged fields,
explicit dtype/shape encoding for ndarrays and RNG states, CRC-checked
frames, **no pickle and no arbitrary object deserialization anywhere on the
wire path**).  A worker node (``repro worker --listen HOST:PORT``) accepts
one master connection at a time:

``challenge`` → ``hello``
    Handshake: the worker opens with a protocol-version banner and a random
    nonce; the master answers with an HMAC-SHA256 tag over that nonce under
    the shared secret (``--secret-file``) plus its own nonce, which the
    worker's ``hello`` reply tags in turn.  Either side failing the check is
    rejected (``auth_error``) **before any attach/snapshot/task bytes are
    exchanged**.  Running without a secret file means both sides tag with
    the empty secret — fine on loopback, pointless on a shared network.
``attach {digest}`` / ``put_snapshot {digest, arrays}``
    Bind the connection to a CSR index by content address; a worker that
    lacks the digest receives the packaged ``.npy`` columns exactly once
    (across runs and reconnects) and verifies the package against its
    claimed digest before storing it.
``task {id, task}``
    Execute one self-contained :class:`~repro.sampling.parallel.ShardTask`
    and reply ``result {id, result}``.  Tasks are *pipelined*: the master
    keeps up to ``window`` tasks in flight per node and matches replies by
    id, so a round is no longer one synchronous round-trip per task.
``shutdown``
    Close the connection (the worker keeps listening for the next master).

Membership is elastic: a late-starting ``repro worker --join HOST:PORT``
dials a running master's registration listener (``join``/``welcome``
handshake, mutually authenticated like the normal one), catches up on the
CSR index through the same content-addressed shipping, and receives work
from the next round on — over the very connection it dialed in with, so
joiners behind NAT need no listening port.

:class:`SocketRPCTransport` implements the master side of the
:class:`~repro.sampling.parallel.ShardTransport` contract: tasks are
streamed to live nodes with a per-node in-flight window (one draining
thread per node), results are slotted back **in task order**, a dropped
node's unacknowledged tasks are reassigned to the survivors, and an idle
node *steals* tasks stuck in a slow node's window — re-executing them is
safe because every task carries its own random-generator state, so whoever
finishes first produces the identical bytes.  Node failures and slowness
never perturb a trajectory; they only change which machine computed it.
Labels never cross the wire; workers only ever hold the CSR index.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import socket
import threading
import time
from collections import deque
from pathlib import Path

from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.sampling import wire
from repro.sampling.parallel import ShardResult, ShardTask, ShardTransport, _run_task
from repro.storage.distribute import SnapshotCache, csr_digest, pack_csr

__all__ = [
    "PROTOCOL_VERSION",
    "RPCError",
    "RPCAuthError",
    "RPCTaskError",
    "encode_message",
    "decode_message",
    "send_message",
    "recv_message",
    "parse_node_address",
    "load_secret_file",
    "serve_worker",
    "join_master",
    "SocketRPCTransport",
]

PROTOCOL_VERSION = 2
#: Upper bound on one frame (a packaged CSR column dominates; 16 GiB is far
#: beyond any graph this engine targets and catches corrupted prefixes).
MAX_MESSAGE_BYTES = 16 * 2**30
#: Upper bound on *handshake* frames — challenge/hello/join/welcome are a
#: few hundred bytes, and nothing larger may be buffered from a peer that
#: has not yet authenticated (an unauthenticated client must not be able to
#: make this side allocate gigabytes).
MAX_HANDSHAKE_BYTES = 1 << 16
#: Socket deadline on *pre-authentication* handshake reads (server side): a
#: silent TCP client must hold a worker's single accept slot for seconds,
#: not for the generous post-auth ``idle_timeout``.
HANDSHAKE_TIMEOUT = 10.0
_NONCE_BYTES = 16

_master_log = get_logger("rpc.master")
_worker_log = get_logger("rpc.worker")


class RPCError(RuntimeError):
    """Transport-level failure (connection, protocol, no surviving nodes)."""


class RPCAuthError(RPCError):
    """The shared-secret handshake failed on connect.

    Raised before any attach/snapshot/task bytes are exchanged: a
    misconfigured secret can never leak work (or the CSR index) to a peer
    that does not hold it.
    """


class RPCTaskError(RPCError):
    """A shard task raised on the worker; re-raised on the master.

    Unlike a connection drop this is *not* retried on another node — the
    task itself is at fault and would fail identically everywhere.
    """


# --------------------------------------------------------------------------- #
# Framing (delegates to the schema'd wire codec)
# --------------------------------------------------------------------------- #
def encode_message(obj) -> bytes:
    """Serialise one message as a complete wire frame."""
    return wire.encode_frame(obj)


def decode_message(data: bytes):
    """Inverse of :func:`encode_message` for one complete frame.

    Malformed frames raise :class:`RPCError` (wrapping the codec's
    :class:`~repro.sampling.wire.WireError`), matching the exception
    contract this function has always had.
    """
    try:
        return wire.decode_frame(data)
    except wire.WireError as exc:
        raise RPCError(f"protocol error: {exc}") from exc


def send_message(sock: socket.socket, obj, meter=None) -> None:
    """Write one framed message to a socket.

    ``meter(byte_count)``, when given, observes the frame size after a
    successful write — the hook the frame/byte counters hang off.
    """
    data = encode_message(obj)
    sock.sendall(data)
    if meter is not None:
        meter(len(data))


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count and not chunks:
                return None  # clean EOF at a frame boundary
            raise RPCError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _finish_frame(sock: socket.socket, header: bytes, limit: int, meter=None):
    try:
        length, crc = wire.parse_header(header)
    except wire.WireError as exc:
        raise RPCError(f"protocol error: {exc}") from exc
    if length > limit:
        raise RPCError(f"frame of {length} bytes exceeds limit {limit}")
    payload = _recv_exactly(sock, length) if length else b""
    if payload is None:
        raise RPCError("connection closed mid-frame")
    if meter is not None:
        meter(wire.HEADER_SIZE + len(payload))
    try:
        return wire.check_payload(payload, crc)
    except wire.WireError as exc:
        raise RPCError(f"protocol error: {exc}") from exc


def recv_message(sock: socket.socket, *, limit: int = MAX_MESSAGE_BYTES, meter=None):
    """Read one framed message; returns ``None`` on clean end-of-stream.

    All decode failures surface as :class:`RPCError` (wrapping the codec's
    :class:`~repro.sampling.wire.WireError`), so callers latching a peer
    dead on ``(OSError, RPCError)`` catch every protocol malformation.
    ``limit`` caps the accepted payload size — handshake reads pass the
    small pre-authentication bound.
    """
    header = _recv_exactly(sock, wire.HEADER_SIZE)
    if header is None:
        return None
    return _finish_frame(sock, header, limit, meter)


#: Sentinel returned by :func:`_recv_message_bail` when the caller's bail
#: predicate fired before any byte of the next frame arrived.
_BAILED = object()


def _recv_message_bail(
    sock: socket.socket, bail, io_timeout: float | None, poll: float = 0.05, meter=None
):
    """Like :func:`recv_message`, but interruptible *between* frames.

    While no byte of the next frame has arrived, the socket is polled in
    short slices and ``bail()`` is consulted; once it returns true the
    function returns :data:`_BAILED` without consuming anything, leaving the
    stream at a clean frame boundary.  As soon as the first byte lands, the
    frame is read to completion under the normal ``io_timeout`` deadline —
    bailing mid-frame would corrupt the stream.
    """
    started = time.monotonic()
    first = b""
    sock.settimeout(poll)
    try:
        while not first:
            if bail():
                return _BAILED
            if io_timeout is not None and time.monotonic() - started > io_timeout:
                raise RPCError(f"no reply within the {io_timeout}s io deadline")
            try:
                first = sock.recv(1)
            except TimeoutError:
                continue
            if first == b"":
                return None  # clean EOF at a frame boundary
    finally:
        sock.settimeout(io_timeout)
    rest = _recv_exactly(sock, wire.HEADER_SIZE - 1)
    if rest is None:
        raise RPCError("connection closed mid-frame")
    return _finish_frame(sock, first + rest, MAX_MESSAGE_BYTES, meter)


def parse_node_address(spec: str | tuple[str, int]) -> tuple[str, int]:
    """Parse ``"host:port"`` (or pass through a ``(host, port)`` pair)."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, separator, port = spec.rpartition(":")
    if not separator or not host:
        raise ValueError(f"node address {spec!r} is not of the form host:port")
    return host, int(port)


# --------------------------------------------------------------------------- #
# Shared-secret authentication
# --------------------------------------------------------------------------- #
def _normalise_secret(secret) -> bytes:
    if secret is None:
        return b""
    if isinstance(secret, str):
        return secret.encode("utf-8")
    return bytes(secret)


def load_secret_file(path: str | Path) -> bytes:
    """Read a shared secret from a file (surrounding whitespace stripped)."""
    data = Path(path).read_bytes().strip()
    if not data:
        raise ValueError(f"secret file {path} is empty")
    return data


def _auth_tag(secret: bytes, role: bytes, initiator_nonce: bytes, responder_nonce: bytes) -> bytes:
    """HMAC tag binding the role *and both* handshake nonces.

    The role strings are domain-separated per handshake direction
    (``listen-master``/``listen-worker`` vs ``join-master``/``join-worker``)
    and every tag covers the full nonce pair, so a tag obtained from one
    exchange can never be replayed into another: the join listener cannot be
    used as a signing oracle to impersonate a master toward a listening
    worker (or vice versa), because no two contexts ever verify the same
    ``(role, nonce_pair)`` message.
    """
    material = role + b":" + initiator_nonce + b":" + responder_nonce
    return hmac.new(secret, material, hashlib.sha256).digest()


def _auth_ok(secret: bytes, role: bytes, initiator_nonce, responder_nonce, tag) -> bool:
    if (
        not isinstance(initiator_nonce, bytes)
        or not isinstance(responder_nonce, bytes)
        or not isinstance(tag, bytes)
    ):
        return False
    return hmac.compare_digest(_auth_tag(secret, role, initiator_nonce, responder_nonce), tag)


def _frame_meter(direction: str, node: str | None = None):
    """Counter pair (frames, bytes) for one peer/direction as a meter hook."""
    labels = {"node": node} if node is not None else {}
    frames = obs_metrics.counter(f"rpc_frames_{direction}_total", **labels)
    size = obs_metrics.counter(f"rpc_bytes_{direction}_total", **labels)

    def meter(count: int) -> None:
        frames.inc()
        size.inc(count)

    return meter


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
def _reply_for(
    op,
    message: dict,
    cache: SnapshotCache,
    attached,
    task_delay: float,
) -> dict:
    """Compute the worker's reply to one request (side effects already done)."""
    if op == "attach":
        if attached is not None:
            return {"op": "ok"}
        return {"op": "need_snapshot", "digest": message.get("digest")}
    if op == "put_snapshot":
        try:
            cache.store(message["digest"], message["arrays"], verify=True)
        except Exception as exc:  # corrupt/forged package: reject, stay alive
            return {"op": "error", "message": f"{type(exc).__name__}: {exc}"}
        return {"op": "ok"}
    if op == "task":
        task = message.get("task")
        task_id = message.get("id")
        if not isinstance(task, ShardTask):
            return {"op": "error", "id": task_id, "message": "malformed task payload"}
        if task_delay > 0.0:
            time.sleep(task_delay)
        started = time.perf_counter()
        try:
            result = _run_task(task, attached)
        except Exception as exc:  # propagate to the master, don't kill the worker
            _worker_log.warning(
                "task_failed", task_id=task_id, error=f"{type(exc).__name__}: {exc}"
            )
            return {"op": "error", "id": task_id, "message": f"{type(exc).__name__}: {exc}"}
        obs_metrics.histogram("rpc_task_service_seconds").observe(
            time.perf_counter() - started
        )
        return {"op": "result", "id": task_id, "result": result}
    return {"op": "error", "message": f"unknown op {op!r}"}


def _serve_ops(conn: socket.socket, cache: SnapshotCache, task_delay: float) -> None:
    """Serve attach/snapshot/task requests on an authenticated connection."""
    attached = None
    recv_meter = _frame_meter("received")
    send_meter = _frame_meter("sent")
    while True:
        message = recv_message(conn, meter=recv_meter)
        if message is None or not isinstance(message, dict):
            return
        op = message.get("op")
        if op in ("shutdown", "auth_error"):
            _worker_log.debug("connection_closed", op=op)
            return
        if op == "attach":
            # A failed attach clears any previous attachment: the master
            # wants *this* digest, and stale arrays must never answer it.
            digest = message.get("digest")
            hit = isinstance(digest, str) and cache.has(digest)
            attached = cache.load_csr(digest) if hit else None
            _worker_log.info("attach", digest=digest, cache_hit=bool(hit))
        elif op == "put_snapshot":
            _worker_log.info("snapshot_received", digest=message.get("digest"))
        send_message(conn, _reply_for(op, message, cache, attached, task_delay), send_meter)


def _handshake_server(conn: socket.socket, cache: SnapshotCache, secret: bytes) -> bool:
    """Challenge/response with a connecting master; True once mutually authed."""
    started = time.perf_counter()
    nonce = os.urandom(_NONCE_BYTES)
    send_message(conn, {"op": "challenge", "version": PROTOCOL_VERSION, "nonce": nonce})
    hello = recv_message(conn, limit=MAX_HANDSHAKE_BYTES)
    if not isinstance(hello, dict) or hello.get("op") != "hello":
        _worker_log.warning("handshake_rejected", reason="malformed hello")
        return False
    if hello.get("version") != PROTOCOL_VERSION:
        send_message(
            conn,
            {
                "op": "error",
                "message": f"protocol version mismatch, worker speaks v{PROTOCOL_VERSION}",
            },
        )
        _worker_log.warning("handshake_rejected", reason="protocol version mismatch")
        return False
    master_nonce = hello.get("nonce")
    if not _auth_ok(secret, b"listen-master", nonce, master_nonce, hello.get("auth")):
        send_message(conn, {"op": "auth_error", "message": "shared-secret authentication failed"})
        obs_metrics.counter("rpc_auth_failures_total").inc()
        _worker_log.warning("auth_failed", role="listen-master")
        return False
    send_message(
        conn,
        {
            "op": "hello",
            "version": PROTOCOL_VERSION,
            "digests": cache.digests(),
            "auth": _auth_tag(secret, b"listen-worker", nonce, master_nonce),
        },
    )
    duration = time.perf_counter() - started
    obs_metrics.histogram("rpc_handshake_seconds").observe(duration)
    _worker_log.info("handshake_ok", duration=round(duration, 6))
    return True


def _serve_connection(
    conn: socket.socket,
    cache: SnapshotCache,
    secret: bytes,
    task_delay: float,
    idle_timeout: float | None,
) -> None:
    with conn:
        # An expected per-message failure — master vanished mid-frame, RST
        # while we reply to an in-flight task, garbage that fails the codec's
        # CRC or schema checks, an unauthenticated client — drops *this*
        # connection only; the worker keeps listening for the next master.
        # Every socket failure is an OSError (timeouts included) and every
        # protocol malformation surfaces as RPCError, so the catch is exactly
        # that pair: a genuine worker-side bug propagates instead of
        # vanishing without a trace.  (Task execution errors are replied, not
        # raised.)  The generous idle_timeout applies only *after*
        # authentication; the handshake itself runs under the short pre-auth
        # deadline set by the caller.
        try:
            if not _handshake_server(conn, cache, secret):
                return
            conn.settimeout(idle_timeout)
            _serve_ops(conn, cache, task_delay)
        except (OSError, RPCError) as exc:
            obs_metrics.counter("rpc_conn_errors_total").inc()
            _worker_log.warning(
                "conn_error", error=type(exc).__name__, detail=str(exc)
            )
            return


def serve_worker(
    host: str,
    port: int,
    cache_dir: str | Path,
    *,
    secret: bytes | str | None = None,
    on_ready=None,
    max_connections: int | None = None,
    idle_timeout: float | None = 3600.0,
    task_delay: float = 0.0,
) -> None:
    """Run a worker node: accept master connections and execute shard tasks.

    Binds ``host:port`` (``port=0`` picks an ephemeral port), then serves
    one connection at a time until ``max_connections`` is exhausted (or
    forever).  ``on_ready(host, port)`` fires once with the actual bound
    address — the CLI prints it so callers using port 0 learn the port.
    Snapshot shards received from masters persist in ``cache_dir`` across
    connections, so a restarted evaluation re-ships nothing.

    ``secret`` is the shared authentication secret; every connection must
    complete the mutual HMAC handshake before any other operation.

    ``idle_timeout`` bounds how long one connection may sit silent: a master
    that half-opens and vanishes without an RST (partition, SIGSTOP) cannot
    wedge the single-connection worker forever — the stale connection is
    dropped and the node returns to accepting.  A master that idles longer
    than this between rounds observes the node as dropped on its next round
    (and reassigns accordingly), so keep the default generous.

    ``task_delay`` sleeps that many seconds before executing each task — a
    throttling/fault-injection aid used by the chaos suite to simulate slow
    nodes; leave at 0 in production.
    """
    cache = SnapshotCache(cache_dir)
    secret = _normalise_secret(secret)
    with socket.create_server((host, port)) as server:
        bound_host, bound_port = server.getsockname()[:2]
        _worker_log.info("worker_listening", address=f"{bound_host}:{bound_port}")
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        served = 0
        while max_connections is None or served < max_connections:
            conn, peer = server.accept()
            conn.settimeout(HANDSHAKE_TIMEOUT)
            served += 1
            _worker_log.debug("connection_accepted", peer=f"{peer[0]}:{peer[1]}")
            _serve_connection(conn, cache, secret, task_delay, idle_timeout)


def join_master(
    master: str | tuple[str, int],
    cache_dir: str | Path,
    *,
    secret: bytes | str | None = None,
    task_delay: float = 0.0,
    connect_retries: int = 40,
    retry_interval: float = 0.25,
    idle_timeout: float | None = 3600.0,
    on_joined=None,
) -> None:
    """Register with a running master and serve shard tasks to it.

    The elastic-membership worker mode: instead of listening, the worker
    dials the master's registration listener (``SocketRPCTransport``'s
    ``join_address``), completes the mutual HMAC handshake, and then serves
    the standard attach/snapshot/task protocol over the connection it
    opened — the master ships the CSR index content-addressed exactly as it
    would to a pre-configured node, and work flows from the next round on.
    Returns when the master shuts the connection down (end of run).

    The initial TCP connect is retried ``connect_retries`` times at
    ``retry_interval`` seconds, so a joiner raced against master startup
    converges instead of dying.
    """
    host, port = parse_node_address(master)
    secret = _normalise_secret(secret)
    cache = SnapshotCache(cache_dir)
    sock = None
    for attempt in range(max(1, connect_retries)):
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            break
        except OSError:
            if attempt + 1 >= max(1, connect_retries):
                raise RPCError(f"could not reach master at {host}:{port} to join") from None
            time.sleep(retry_interval)
    assert sock is not None
    with sock:
        sock.settimeout(idle_timeout)
        nonce = os.urandom(_NONCE_BYTES)
        send_message(sock, {"op": "join", "version": PROTOCOL_VERSION, "nonce": nonce})
        welcome = recv_message(sock, limit=MAX_HANDSHAKE_BYTES)
        if not isinstance(welcome, dict) or welcome.get("op") != "welcome":
            raise RPCError(f"master at {host}:{port} rejected the join: {welcome!r}")
        if welcome.get("version") != PROTOCOL_VERSION:
            raise RPCError(
                f"master at {host}:{port} speaks protocol "
                f"v{welcome.get('version')!r}, this worker speaks v{PROTOCOL_VERSION}"
            )
        master_nonce = welcome.get("nonce")
        if not _auth_ok(secret, b"join-master", nonce, master_nonce, welcome.get("auth")):
            raise RPCAuthError(f"master at {host}:{port} failed shared-secret authentication")
        send_message(
            sock,
            {
                "op": "hello",
                "version": PROTOCOL_VERSION,
                "digests": cache.digests(),
                "auth": _auth_tag(secret, b"join-worker", nonce, master_nonce),
            },
        )
        _worker_log.info("joined_master", master=f"{host}:{port}")
        if on_joined is not None:
            on_joined(host, port)
        try:
            _serve_ops(sock, cache, task_delay)
        except Exception as exc:
            # Surface mid-run failures instead of exiting "successfully":
            # a supervisor restarting on non-zero exit must see this.
            raise RPCError(f"connection to master at {host}:{port} failed: {exc}") from exc


# --------------------------------------------------------------------------- #
# Master side
# --------------------------------------------------------------------------- #
class _Node:
    """One master→worker connection with lazy attach and failure latching."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float,
        io_timeout: float | None,
        secret: bytes,
        *,
        sock: socket.socket | None = None,
        joined: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.secret = secret
        self.sock = sock
        self.joined = joined
        self.dead = False
        self.auth_failed = False
        self.last_error: str | None = None
        self.attached_digest: str | None = None
        self.snapshots_shipped = 0
        self.tasks_executed = 0
        self.tasks_stolen = 0
        #: Reply ids sent but no longer awaited (their slot was completed by
        #: another node while this one lagged); discarded on arrival so a
        #: slow-but-alive node re-synchronises instead of desyncing the
        #: stream.
        self.abandoned: set[int] = set()
        self._next_id = 0
        self._send_meter = _frame_meter("sent", self.address)
        self._recv_meter = _frame_meter("received", self.address)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def mark_dead(self, error: Exception | str) -> None:
        was_live = not self.dead
        self.dead = True
        self.last_error = str(error)
        sock, self.sock = self.sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close failures are moot
                pass
        if was_live:
            obs_metrics.counter("rpc_node_drops_total", node=self.address).inc()
            _master_log.warning("node_drop", address=self.address, error=self.last_error)

    def _request(self, message: dict) -> dict:
        assert self.sock is not None
        send_message(self.sock, message, self._send_meter)
        while True:
            reply = recv_message(self.sock, meter=self._recv_meter)
            if reply is None:
                raise RPCError(f"node {self.address} closed the connection")
            if not isinstance(reply, dict):
                raise RPCError(f"node {self.address} sent a non-dict reply")
            reply_id = reply.get("id")
            if reply_id in self.abandoned and reply.get("op") in ("result", "error"):
                # A task reply this side stopped waiting for (its slot was
                # completed elsewhere) arriving ahead of our request's
                # answer — e.g. an attach after a re-bind.  Skip it; the
                # real reply is behind it on the FIFO stream.
                self.abandoned.discard(reply_id)
                continue
            return reply

    def _connect(self) -> None:
        started = time.perf_counter()
        sock = socket.create_connection((self.host, self.port), timeout=self.connect_timeout)
        # The handshake runs under the short connect deadline — a silent or
        # non-protocol listener is latched dead in seconds, not after the
        # generous post-auth io deadline.
        sock.settimeout(self.connect_timeout)
        self.sock = sock
        self.attached_digest = None
        self.abandoned.clear()
        self._next_id = 0
        challenge = recv_message(sock, limit=MAX_HANDSHAKE_BYTES, meter=self._recv_meter)
        if not isinstance(challenge, dict) or challenge.get("op") != "challenge":
            raise RPCError(f"node {self.address} spoke {challenge!r}, expected a challenge")
        if challenge.get("version") != PROTOCOL_VERSION:
            raise RPCError(
                f"node {self.address} speaks protocol v{challenge.get('version')!r}, "
                f"this master speaks v{PROTOCOL_VERSION}"
            )
        nonce = challenge.get("nonce")
        if not isinstance(nonce, bytes):
            raise RPCError(f"node {self.address} sent a malformed challenge")
        my_nonce = os.urandom(_NONCE_BYTES)
        send_message(
            sock,
            {
                "op": "hello",
                "version": PROTOCOL_VERSION,
                "auth": _auth_tag(self.secret, b"listen-master", nonce, my_nonce),
                "nonce": my_nonce,
            },
            self._send_meter,
        )
        hello = recv_message(sock, limit=MAX_HANDSHAKE_BYTES, meter=self._recv_meter)
        if hello is None:
            raise RPCError(f"node {self.address} closed during the handshake")
        if isinstance(hello, dict) and hello.get("op") == "auth_error":
            self.auth_failed = True
            _master_log.warning("auth_failed", address=self.address, direction="ours-rejected")
            raise RPCAuthError(f"node {self.address} rejected our shared secret")
        if not isinstance(hello, dict) or hello.get("op") != "hello":
            raise RPCError(f"node {self.address} spoke {hello!r}, expected hello")
        if not _auth_ok(self.secret, b"listen-worker", nonce, my_nonce, hello.get("auth")):
            self.auth_failed = True
            _master_log.warning("auth_failed", address=self.address, direction="theirs-rejected")
            raise RPCAuthError(f"node {self.address} failed shared-secret authentication")
        # Authenticated: switch to the per-operation io deadline — it bounds
        # one snapshot transfer or one shard round, so a wedged node times
        # out, is latched dead and has its tasks reassigned.
        sock.settimeout(self.io_timeout)
        duration = time.perf_counter() - started
        obs_metrics.histogram("rpc_handshake_seconds", node=self.address).observe(duration)
        _master_log.info("handshake_ok", address=self.address, duration=round(duration, 6))

    def ensure_ready(self, digest: str, package_bytes) -> None:
        """Connect, handshake and attach the node to ``digest`` (idempotent)."""
        if self.dead:
            raise RPCError(f"node {self.address} is dead: {self.last_error}")
        if self.sock is None:
            if self.joined:
                # A joined node dialed us; once its connection is gone there
                # is no address to call back.
                raise RPCError(f"joined node {self.address} disconnected")
            self._connect()
        if self.attached_digest == digest:
            return
        reply = self._request({"op": "attach", "digest": digest})
        if reply.get("op") == "need_snapshot":
            put = self._request({"op": "put_snapshot", "digest": digest, "arrays": package_bytes()})
            if put.get("op") != "ok":
                raise RPCError(f"node {self.address} rejected the snapshot: {put!r}")
            self.snapshots_shipped += 1
            reply = self._request({"op": "attach", "digest": digest})
        if reply.get("op") != "ok":
            raise RPCError(f"node {self.address} failed to attach {digest}: {reply!r}")
        self.attached_digest = digest

    # ------------------------------------------------------------------ #
    # Pipelined task exchange
    # ------------------------------------------------------------------ #
    def send_task(self, task: ShardTask) -> int:
        """Send one task without waiting; returns the reply id to match."""
        assert self.sock is not None
        task_id = self._next_id
        self._next_id += 1
        send_message(self.sock, {"op": "task", "id": task_id, "task": task}, self._send_meter)
        return task_id

    def recv_reply(self, bail):
        """Receive one task reply (or :data:`_BAILED` between frames)."""
        assert self.sock is not None
        reply = _recv_message_bail(self.sock, bail, self.io_timeout, meter=self._recv_meter)
        if reply is _BAILED:
            return _BAILED
        if reply is None:
            raise RPCError(f"node {self.address} closed the connection")
        if not isinstance(reply, dict):
            raise RPCError(f"node {self.address} sent a non-dict reply")
        return reply

    def close(self) -> None:
        """Release the connection.  Idempotent; never raises.

        Tolerates every shutdown race — a node that died right after its
        last result, a peer that resets while the goodbye is in flight, a
        socket already torn down by :meth:`mark_dead`.
        """
        sock, self.sock = self.sock, None
        self.attached_digest = None
        self.abandoned.clear()
        if sock is None:
            return
        try:
            sock.sendall(encode_message({"op": "shutdown"}))
        except Exception:
            pass
        try:
            sock.close()
        except Exception:
            pass


class SocketRPCTransport(ShardTransport):
    """Execute shard tasks on remote worker nodes over loopback/LAN TCP.

    Parameters
    ----------
    nodes:
        Worker addresses — ``"host:port"`` strings or ``(host, port)``
        pairs, each one a running ``repro worker --listen`` process.  May be
        empty when ``join_address`` is given (the run then waits up to
        ``connect_timeout`` for the first joiner).
    secret:
        Shared authentication secret (bytes or str; ``None`` means the
        empty secret).  Must match the workers' ``--secret-file`` contents —
        a mismatch on either side is an :class:`RPCAuthError` before any
        task bytes are exchanged.
    window:
        Maximum tasks in flight per node.  ``1`` reproduces the historical
        synchronous request/response behaviour; larger windows hide the
        network round-trip behind worker compute.  Never part of a run's
        random-stream identity: results are slotted by task index, so every
        window size yields bit-identical trajectories.
    connect_timeout:
        Seconds to wait for a node's TCP connect before declaring it dead
        (also the grace period spent waiting for a first joiner when no
        configured node survives).
    io_timeout:
        Per-operation socket deadline (seconds).  A node that stops
        responding without closing the connection — pulled cable, firewall
        drop, wedged process — trips this, is latched dead and has its
        tasks reassigned.  Generous by default (it bounds one snapshot
        transfer or one shard round, not the whole run); ``None`` disables
        the deadline.
    join_address:
        ``"host:port"`` to accept late-joining ``repro worker --join``
        registrations on (``port 0`` picks one; read it back from
        :attr:`join_address`).  Joins are adopted at round boundaries:
        the joiner is handshaken, attached (receiving the CSR package if it
        lacks the digest) and handed work in the next round.

    Failure handling: a node that drops mid-round (connection reset, kill
    -9, network partition) is latched dead and its in-flight plus queued
    tasks are drained by the surviving nodes; an idle node steals the tasks
    stuck in a slow node's window and whichever execution finishes first is
    used.  Tasks are pure functions of ``(task, CSR index)`` — each carries
    the exact per-shard generator state it must resume from — so any
    reassignment or duplicate execution is bit-identical and the run's
    determinism contract survives every drop/steal pattern.  Only when *no*
    node survives does :meth:`execute` raise :class:`RPCError`
    (:class:`RPCAuthError` when authentication was the cause).
    """

    kind = "rpc"

    def __init__(
        self,
        nodes=(),
        *,
        secret: bytes | str | None = None,
        window: int = 4,
        connect_timeout: float = 10.0,
        io_timeout: float | None = 600.0,
        join_address: str | tuple[str, int] | None = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        addresses = [parse_node_address(node) for node in nodes]
        self._secret = _normalise_secret(secret)
        self.window = int(window)
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._join_server: socket.socket | None = None
        self._bound_join_address: tuple[str, int] | None = None
        if join_address is not None:
            host, port = parse_node_address(join_address)
            server = socket.create_server((host, port))
            server.settimeout(0)  # non-blocking accepts, polled between rounds
            self._join_server = server
            self._bound_join_address = server.getsockname()[:2]
        if not addresses and self._join_server is None:
            raise ValueError(
                "SocketRPCTransport requires at least one node address or a join_address"
            )
        self._nodes = [
            _Node(host, port, connect_timeout, io_timeout, self._secret)
            for host, port in addresses
        ]
        self._digest: str | None = None
        self._package: dict[str, bytes] | None = None
        self._lock = threading.Lock()

    @property
    def default_shards(self) -> int | None:
        """Natural shard count: one shard per configured node."""
        return len(self._nodes) or None

    @property
    def join_address(self) -> str | None:
        """Bound registration listener address (``None`` when not accepting)."""
        if self._bound_join_address is None:
            return None
        host, port = self._bound_join_address
        return f"{host}:{port}"

    # ------------------------------------------------------------------ #
    # Binding and snapshot packaging
    # ------------------------------------------------------------------ #
    def bind(self, offsets, positions, *, snapshot=None) -> None:
        """Attach to a CSR index; nodes catch up lazily by content address."""
        super().bind(offsets, positions, snapshot=snapshot)
        self._digest = None
        self._package = None

    @property
    def digest(self) -> str:
        """Content address of the bound CSR index (computed lazily, once)."""
        if self._digest is None:
            self._digest = csr_digest(self._offsets, self._positions)
        return self._digest

    def _package_bytes(self) -> dict[str, bytes]:
        # Packed lazily and released after every round that readied nodes;
        # a late joiner that lacks the digest simply re-packs once.
        if self._package is None:
            self._package = pack_csr(self._offsets, self._positions)
        return self._package

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def _adopt_joiner(self, conn: socket.socket, peer) -> _Node:
        """Handshake a dialed-in worker and wrap it as a ready node."""
        conn.settimeout(self._connect_timeout)
        join = recv_message(conn, limit=MAX_HANDSHAKE_BYTES)
        if not isinstance(join, dict) or join.get("op") != "join":
            raise RPCError(f"joiner {peer!r} spoke {join!r}, expected a join")
        if join.get("version") != PROTOCOL_VERSION:
            raise RPCError(f"joiner {peer!r} speaks protocol v{join.get('version')!r}")
        nonce = join.get("nonce")
        if not isinstance(nonce, bytes):
            raise RPCError(f"joiner {peer!r} sent a malformed join")
        my_nonce = os.urandom(_NONCE_BYTES)
        send_message(
            conn,
            {
                "op": "welcome",
                "version": PROTOCOL_VERSION,
                "auth": _auth_tag(self._secret, b"join-master", nonce, my_nonce),
                "nonce": my_nonce,
            },
        )
        hello = recv_message(conn, limit=MAX_HANDSHAKE_BYTES)
        if not isinstance(hello, dict) or hello.get("op") != "hello":
            raise RPCError(f"joiner {peer!r} spoke {hello!r}, expected hello")
        if not _auth_ok(self._secret, b"join-worker", nonce, my_nonce, hello.get("auth")):
            try:
                send_message(
                    conn, {"op": "auth_error", "message": "shared-secret authentication failed"}
                )
            except Exception:
                pass
            raise RPCAuthError(f"joiner {peer!r} failed shared-secret authentication")
        conn.settimeout(self._io_timeout)
        host, port = (str(peer[0]), int(peer[1])) if isinstance(peer, tuple) else (str(peer), 0)
        return _Node(
            host,
            port,
            self._connect_timeout,
            self._io_timeout,
            self._secret,
            sock=conn,
            joined=True,
        )

    def _accept_joins(self) -> None:
        """Adopt any workers queued on the registration listener."""
        server = self._join_server
        if server is None:
            return
        while True:
            try:
                conn, peer = server.accept()
            except (BlockingIOError, TimeoutError):
                return
            except OSError:
                return
            try:
                node = self._adopt_joiner(conn, peer)
            except Exception:
                # A bad joiner (wrong secret, garbage, half-open) never
                # poisons the run; drop it and keep accepting.
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            self._nodes.append(node)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _ready_nodes(self) -> list[_Node]:
        self._accept_joins()
        ready = []
        for node in self._nodes:
            if node.dead:
                continue
            try:
                node.ensure_ready(self.digest, self._package_bytes)
            except (OSError, RPCError) as exc:
                node.mark_dead(exc)
                continue
            ready.append(node)
        # Every surviving node now holds the digest, so the packed payload is
        # dead weight — release it rather than doubling the master's resident
        # CSR footprint (a late joiner triggers one lazy re-pack).
        if ready:
            self._package = None
        return ready

    def _raise_no_nodes(self) -> None:
        errors = "; ".join(f"{node.address}: {node.last_error}" for node in self._nodes)
        if any(node.auth_failed for node in self._nodes):
            raise RPCAuthError(f"no worker node accepted our shared secret ({errors})")
        raise RPCError(f"no live worker nodes remain ({errors})")

    def execute(self, tasks: list[ShardTask]) -> list[ShardResult]:
        """Stream one round's tasks across the fleet; results in task order.

        Each live node drains its own in-flight window on a dedicated
        thread; dropped nodes' unacknowledged tasks are requeued for the
        survivors, and idle nodes steal slots stuck in slow nodes'
        windows — always bit-identical, whoever executes.
        """
        results: list[ShardResult | None] = [None] * len(tasks)
        pending: deque[int] = deque(range(len(tasks)))
        queued: set[int] = set(pending)
        #: slot -> nodes currently executing it (in flight), master-side.
        owners: dict[int, set[_Node]] = {}
        task_errors: list[RPCTaskError] = []
        lock = self._lock

        def release(node: _Node, slot: int) -> None:
            holders = owners.get(slot)
            if holders is not None:
                holders.discard(node)
                if not holders:
                    owners.pop(slot, None)

        def requeue(node: _Node, slots) -> None:
            """Hand a node's unfinished slots back to the shared queue (lock held)."""
            for slot in slots:
                release(node, slot)
                if results[slot] is None and slot not in queued:
                    pending.append(slot)
                    queued.add(slot)

        def drain(node: _Node) -> None:
            inflight: dict[int, int] = {}  # reply id -> slot
            to_send: list[int] = []  # slots claimed but not yet on the wire

            def bail() -> bool:
                with lock:
                    if task_errors:
                        return True
                    return all(results[slot] is not None for slot in inflight.values())

            try:
                while True:
                    to_send = []
                    with lock:
                        if task_errors:
                            node.abandoned.update(inflight.keys())
                            requeue(node, inflight.values())
                            inflight.clear()
                            return
                        while len(inflight) + len(to_send) < self.window and pending:
                            slot = pending.popleft()
                            queued.discard(slot)
                            if results[slot] is None:
                                to_send.append(slot)
                        if not inflight and not to_send:
                            # Idle with nothing queued: steal a task stuck in
                            # another node's window.  Re-execution is safe —
                            # results are pure functions of the task — and
                            # whichever copy lands first fills the slot.
                            stolen = next(
                                (
                                    slot
                                    for slot, holders in owners.items()
                                    if results[slot] is None and node not in holders
                                ),
                                None,
                            )
                            if stolen is None:
                                return
                            to_send.append(stolen)
                            node.tasks_stolen += 1
                            obs_metrics.counter("rpc_tasks_stolen_total", node=node.address).inc()
                            _master_log.debug("task_stolen", address=node.address, slot=stolen)
                        for slot in to_send:
                            owners.setdefault(slot, set()).add(node)
                    while to_send:
                        slot = to_send[0]
                        inflight[node.send_task(tasks[slot])] = slot
                        to_send.pop(0)
                    obs_metrics.gauge("rpc_inflight_window", node=node.address).set(len(inflight))
                    if not inflight:
                        continue
                    reply = node.recv_reply(bail)
                    if reply is _BAILED:
                        # Everything this node still owes was completed
                        # elsewhere; stop waiting, discard the replies when
                        # they eventually arrive, and look for new work.
                        with lock:
                            node.abandoned.update(inflight.keys())
                            for slot in inflight.values():
                                release(node, slot)
                        inflight.clear()
                        continue
                    op = reply.get("op")
                    reply_id = reply.get("id")
                    if reply_id in node.abandoned and op in ("result", "error"):
                        node.abandoned.discard(reply_id)
                        continue  # stale reply from an abandoned exchange
                    if op == "result":
                        if reply_id not in inflight:
                            raise RPCError(
                                f"node {node.address} replied for unknown task id {reply_id!r}"
                            )
                        slot = inflight.pop(reply_id)
                        result = reply.get("result")
                        if not isinstance(result, ShardResult):
                            raise RPCError(f"node {node.address} returned a malformed result")
                        node.tasks_executed += 1
                        obs_metrics.histogram(
                            "rpc_task_service_seconds", node=node.address
                        ).observe(result.elapsed)
                        obs_metrics.gauge("rpc_inflight_window", node=node.address).set(
                            len(inflight)
                        )
                        with lock:
                            release(node, slot)
                            if results[slot] is None:
                                results[slot] = result
                    elif op == "error":
                        if reply_id not in inflight:
                            raise RPCError(
                                f"node {node.address} errored for unknown task id {reply_id!r}"
                            )
                        slot = inflight.pop(reply_id)
                        node.abandoned.update(inflight.keys())
                        with lock:
                            release(node, slot)
                            task_errors.append(
                                RPCTaskError(f"node {node.address}: {reply.get('message')}")
                            )
                            requeue(node, inflight.values())
                        inflight.clear()
                        return
                    else:
                        raise RPCError(f"node {node.address} sent {op!r} instead of a task reply")
            except Exception as exc:
                # Connection drop, deadline, malformed/undecodable reply: all
                # count as a failed *node* — latch it dead, requeue its
                # unfinished tasks (in flight *and* claimed-but-unsent) for
                # the survivors, stop draining.  Nothing may leak a task (a
                # None result would corrupt the merge).
                node.mark_dead(exc)
                with lock:
                    requeue(node, list(inflight.values()) + to_send)
                inflight.clear()

        while not task_errors and any(result is None for result in results):
            nodes = self._ready_nodes()
            if not nodes and self._join_server is not None:
                # Elastic grace: with a registration listener open, wait for
                # a first (or replacement) joiner before giving up.
                deadline = time.monotonic() + self._connect_timeout
                while not nodes and time.monotonic() < deadline:
                    time.sleep(0.1)
                    nodes = self._ready_nodes()
            if not nodes:
                self._raise_no_nodes()
            threads = [
                threading.Thread(target=drain, args=(node,), daemon=True) for node in nodes
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if task_errors:
            raise task_errors[0]
        if any(result is None for result in results):  # pragma: no cover - guard
            raise RPCError("transport lost a task without raising; refusing to merge")
        return results  # type: ignore[return-value]

    def close(self) -> None:
        """Release all node connections and the join listener.

        Idempotent and race-tolerant: nodes that died after their last
        result, sockets already reset by the peer, or a second close() are
        all no-ops.  Listen-mode nodes can be re-connected by a later
        :meth:`bind`/:meth:`execute`; the join listener is gone for good.
        """
        for node in self._nodes:
            node.close()
        server, self._join_server = self._join_server, None
        if server is not None:
            try:
                server.close()
            except Exception:
                pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Per-transport counters (shipping, execution, stealing, health)."""
        return {
            "nodes": [
                {
                    "address": node.address,
                    "dead": node.dead,
                    "joined": node.joined,
                    "auth_failed": node.auth_failed,
                    "snapshots_shipped": node.snapshots_shipped,
                    "tasks_executed": node.tasks_executed,
                    "tasks_stolen": node.tasks_stolen,
                }
                for node in self._nodes
            ],
            "snapshots_shipped": sum(n.snapshots_shipped for n in self._nodes),
            "live_nodes": sum(not n.dead for n in self._nodes),
            "tasks_stolen": sum(n.tasks_stolen for n in self._nodes),
            "window": self.window,
            "join_address": self.join_address,
        }
