"""Adaptive transport planner: measured costs pick the execution plan.

``BENCH_parallel.json`` has shown since PR 4 that the fork-pool transport
*loses* to the plain serial loop below ~1M triples — fan-out overhead swamps
the parallel win.  So the right transport is a function of the run, not a
fixed knob, and :class:`AdaptivePlanner` makes that call per run from two
inputs:

* **measured graph shape** — :meth:`repro.storage.backend.StorageBackend.stats`
  (triple/entity counts, cluster-size skew) plus the expected draw volume;
* **a persisted calibration profile** — per-transport cost coefficients
  (startup, per-round overhead, per-draw service time) learned from prior
  runs' metrics snapshots (``shard_stats`` / ``BENCH_parallel.json``) and
  stored as JSON under ``~/.cache/repro/planner.json`` (override with
  ``--profile PATH`` or ``REPRO_PLANNER_PROFILE``).

The planner predicts wall-clock for each viable transport::

    predicted = startup (0 when a warm pool is parked)
              + rounds x round_overhead
              + draws x per_draw / effective_parallelism

and leaves serial unless a parallel transport is predicted at least
``min_speedup`` times faster — the *never slower than serial beyond noise*
invariant, gated for real in ``benchmarks/bench_parallel_sampling.py``.

**Stream identity is machine-independent by construction.**  The shard
count is part of a run's random-stream identity, so :func:`plan_shards`
derives it purely from the graph's stats and the expected draw volume —
hard-coded policy constants, no CPU count, no warm-pool state, no mutable
profile field.  Everything the planner *learns* (the calibration profile)
or *senses* (CPU affinity, parked pools) only picks which transport
executes that fixed plan, and every transport is bit-identical for a
fixed plan.  A caller-pinned ``--shards`` is always honoured, and the
same seeded command therefore produces the same estimates on every host,
cold or warm, first run or hundredth.

Every decision is recorded: an ``planner_decisions_total{transport=...}``
counter, a structured ``planner_decision`` log event carrying the reason
and per-transport predictions, and the decision object itself threaded
into the executor (surfaced by ``SamplingRun.shard_stats``).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.storage.backend import StorageStats

__all__ = [
    "AdaptivePlanner",
    "CalibrationProfile",
    "PlannerDecision",
    "TransportCost",
    "default_profile_path",
    "load_profile",
    "plan_shards",
    "save_profile",
]

_log = get_logger("sampling.planner")

#: Transports the planner may select, in preference order on ties.
PLANNABLE_TRANSPORTS = ("serial", "shm", "pool", "rpc")

#: Draws folded per round by the CLI/benchmark loops; rounds amortise the
#: per-round fan-out overhead, so the predictor needs the same granularity.
DEFAULT_BATCH_SIZE = 5_000

#: Fraction of an extra worker that converts into useful parallelism
#: (master-side folds and allocation stay serial, Amdahl-style).
_PARALLEL_EFFICIENCY = 0.75

#: EWMA weight for new observations folded into the profile.
_OBSERVE_ALPHA = 0.3

# ---- Shard-plan policy: hard constants, never profile fields. ------------- #
# The shard count is part of a run's random-stream identity, so the policy
# below must be a pure function of (graph stats, draw volume).  Keeping the
# knobs out of CalibrationProfile is deliberate: the profile mutates after
# every run, and a mutated profile must never change what a seeded command
# draws — only which transport executes the fixed plan.

#: Planned parallel width when draws are plentiful (identical on every host;
#: a narrower machine simply executes more shards per worker).
PLAN_WIDTH = 8

#: Below this many expected draws per shard the fan-out stops amortising;
#: plans coarsen, all the way down to one shard (= serial) for tiny runs.
MIN_DRAWS_PER_SHARD = 2_000

#: ``stats.skew`` (max/mean cluster size) beyond which plans shard finer so
#: one giant cluster's range splits away from the bulk.
SKEW_THRESHOLD = 20.0

#: Absolute shard-count ceiling.
MAX_PLANNED_SHARDS = 64


def plan_shards(stats: StorageStats, draws_hint: int) -> int:
    """Deterministic shard count for a run over ``stats``-shaped data.

    A pure function of the graph's measured stats and the expected draw
    volume — the machine-independent half of a planning decision.  Starts
    at :data:`PLAN_WIDTH`, doubles for skewed cluster-size distributions,
    coarsens (down to one shard) when per-shard draws would fall below
    :data:`MIN_DRAWS_PER_SHARD`, and never exceeds
    :data:`MAX_PLANNED_SHARDS` or the entity count.
    """
    draws_hint = max(1, min(int(draws_hint), max(stats.num_triples, 1)))
    shards = PLAN_WIDTH
    if stats.skew > SKEW_THRESHOLD:
        shards *= 2
    if draws_hint < shards * MIN_DRAWS_PER_SHARD:
        shards = max(1, draws_hint // MIN_DRAWS_PER_SHARD)
    return int(max(1, min(shards, MAX_PLANNED_SHARDS, stats.num_entities or 1)))


@dataclass
class TransportCost:
    """Calibrated cost coefficients for one transport kind.

    ``per_draw_us`` is the worker-side service time per drawn unit,
    ``round_overhead_ms`` the per-round fan-out/fold overhead, and
    ``startup_ms`` the one-off attach cost (fork, segment copy, RPC
    handshake + CSR ship) paid when no warm pool is available.
    """

    per_draw_us: float
    round_overhead_ms: float
    startup_ms: float
    samples: int = 0

    def to_dict(self) -> dict:
        return {
            "per_draw_us": self.per_draw_us,
            "round_overhead_ms": self.round_overhead_ms,
            "startup_ms": self.startup_ms,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TransportCost":
        return cls(
            per_draw_us=float(payload.get("per_draw_us", 1.5)),
            round_overhead_ms=float(payload.get("round_overhead_ms", 1.0)),
            startup_ms=float(payload.get("startup_ms", 100.0)),
            samples=int(payload.get("samples", 0)),
        )


def _default_transport_costs() -> dict[str, TransportCost]:
    # Conservative priors in the absence of any calibration: parallel
    # transports carry enough startup/round cost that small runs stay
    # serial, which is the safe direction for the never-slower invariant.
    return {
        "serial": TransportCost(per_draw_us=1.5, round_overhead_ms=0.2, startup_ms=0.0),
        "pool": TransportCost(per_draw_us=1.5, round_overhead_ms=3.0, startup_ms=250.0),
        "shm": TransportCost(per_draw_us=1.5, round_overhead_ms=1.5, startup_ms=120.0),
        "rpc": TransportCost(per_draw_us=1.5, round_overhead_ms=6.0, startup_ms=800.0),
    }


@dataclass
class CalibrationProfile:
    """Persisted planner state: per-transport costs plus decision thresholds.

    Everything here is data, not code — regenerate it from a benchmark run
    (:meth:`calibrate_from_bench`), refine it continuously from live runs
    (:meth:`observe`), or edit the JSON by hand to force behaviour (see
    ``docs/planner.md``).
    """

    transports: dict[str, TransportCost] = field(default_factory=_default_transport_costs)
    #: Required predicted advantage before leaving serial.
    min_speedup: float = 1.25
    #: Cap on local worker processes the planner will request.  Affects only
    #: execution width, never the shard plan (see :func:`plan_shards`).
    max_workers: int = 8
    #: Observed RPC per-task service time and round-trip, for window sizing.
    rpc_service_ms: float = 2.0
    rpc_rtt_ms: float = 0.5

    VERSION = 1

    def cost(self, kind: str) -> TransportCost:
        """The cost entry for ``kind``, materialising defaults when absent."""
        entry = self.transports.get(kind)
        if entry is None:
            entry = _default_transport_costs()[kind]
            self.transports[kind] = entry
        return entry

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "version": self.VERSION,
            "params": {
                "min_speedup": self.min_speedup,
                "max_workers": self.max_workers,
                "rpc_service_ms": self.rpc_service_ms,
                "rpc_rtt_ms": self.rpc_rtt_ms,
            },
            "transports": {kind: cost.to_dict() for kind, cost in self.transports.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CalibrationProfile":
        params = payload.get("params", {})
        transports = _default_transport_costs()
        for kind, entry in payload.get("transports", {}).items():
            transports[kind] = TransportCost.from_dict(entry)
        return cls(
            transports=transports,
            min_speedup=float(params.get("min_speedup", 1.25)),
            max_workers=int(params.get("max_workers", 8)),
            rpc_service_ms=float(params.get("rpc_service_ms", 2.0)),
            rpc_rtt_ms=float(params.get("rpc_rtt_ms", 0.5)),
        )

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def observe(
        self,
        kind: str,
        *,
        draws: int,
        rounds: int,
        seconds: float,
        workers: int = 1,
        warm: bool = False,
    ) -> None:
        """Fold one finished run's measured wall-clock into the profile.

        The fixed costs (startup unless ``warm``, per-round overhead) are
        subtracted at their current calibrated values and the residual is
        attributed to per-draw service time, EWMA-smoothed so one noisy
        run cannot flip future decisions.
        """
        if draws <= 0 or seconds <= 0:
            return
        entry = self.cost(kind)
        overhead = rounds * entry.round_overhead_ms / 1_000.0
        if not warm:
            overhead += entry.startup_ms / 1_000.0
        residual = max(seconds - overhead, seconds * 0.05)
        effective = _effective_parallelism(kind, workers)
        observed_us = residual * 1e6 * effective / draws
        if entry.samples == 0:
            entry.per_draw_us = observed_us
        else:
            entry.per_draw_us += _OBSERVE_ALPHA * (observed_us - entry.per_draw_us)
        entry.samples += 1

    def calibrate_from_bench(self, payload: dict) -> list[str]:
        """Recalibrate from a ``BENCH_parallel.json`` payload; returns the
        transport kinds that were updated.

        The serial engine leg pins ``serial.per_draw_us`` (and the workers'
        too — every transport runs the same draw core); each parallel leg's
        *excess* over its predicted draw time is split 70/30 between
        startup and per-round overhead.
        """
        draws = int(payload.get("draws", 0))
        if draws <= 0:
            return []
        rounds = max(1, math.ceil(draws / DEFAULT_BATCH_SIZE))
        updated: list[str] = []
        engine_serial = payload.get("engine_serial")
        if engine_serial and engine_serial.get("seconds"):
            serial = self.cost("serial")
            seconds = float(engine_serial["seconds"])
            serial.per_draw_us = seconds * 1e6 / draws
            serial.round_overhead_ms = 0.0
            serial.samples += 1
            for kind in ("pool", "shm", "rpc"):
                self.cost(kind).per_draw_us = serial.per_draw_us
            updated.append("serial")
        for kind, leg_key in (("pool", "engine_pool"), ("shm", "engine_shm")):
            leg = payload.get(leg_key)
            if not leg or not leg.get("seconds"):
                continue
            entry = self.cost(kind)
            workers = max(1, int(leg.get("workers", 1)))
            effective = _effective_parallelism(kind, workers)
            draw_seconds = draws * entry.per_draw_us / 1e6 / effective
            excess = max(0.0, float(leg["seconds"]) - draw_seconds)
            entry.startup_ms = max(1.0, 0.7 * excess * 1_000.0)
            entry.round_overhead_ms = max(0.05, 0.3 * excess * 1_000.0 / rounds)
            entry.samples += 1
            updated.append(kind)
        return updated


def default_profile_path() -> Path:
    """Where the calibration profile lives when ``--profile`` is not given.

    ``REPRO_PLANNER_PROFILE`` wins, then ``$XDG_CACHE_HOME/repro/planner.json``,
    then ``~/.cache/repro/planner.json``.
    """
    env = os.environ.get("REPRO_PLANNER_PROFILE")
    if env:
        return Path(env)
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro" / "planner.json"


def load_profile(path: str | Path | None = None) -> CalibrationProfile:
    """Load the calibration profile, falling back to defaults.

    A missing or unreadable file is not an error — the planner must always
    be able to make a (conservative) decision.
    """
    target = Path(path) if path is not None else default_profile_path()
    try:
        with open(target, encoding="utf-8") as handle:
            return CalibrationProfile.from_dict(json.load(handle))
    except (OSError, ValueError, TypeError):
        return CalibrationProfile()


def save_profile(profile: CalibrationProfile, path: str | Path | None = None) -> Path | None:
    """Persist the profile as JSON; best-effort (read-only homes are fine)."""
    target = Path(path) if path is not None else default_profile_path()
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(profile.to_dict(), handle, indent=2)
            handle.write("\n")
    except OSError:
        return None
    return target


def _effective_parallelism(kind: str, workers: int) -> float:
    """Usable parallel width: serial folds cap the parallel fraction."""
    if kind == "serial" or workers <= 1:
        return 1.0
    return 1.0 + (workers - 1) * _PARALLEL_EFFICIENCY


@dataclass(frozen=True)
class PlannerDecision:
    """One planning outcome: what to run where, and why.

    ``predictions`` maps every considered transport kind to its predicted
    wall-clock seconds; ``reason`` is the human-readable justification that
    also lands in the structured log event.
    """

    transport: str
    workers: int
    shards: int
    rpc_window: int | None
    reason: str
    predicted_seconds: float
    predictions: dict[str, float]
    draws_hint: int
    #: Whether the chosen transport's prediction assumed an adoptable warm
    #: pool (startup waived) — callers feed this back to
    #: :meth:`CalibrationProfile.observe` so warm runs don't bias
    #: ``per_draw_us`` low by subtracting a startup cost they never paid.
    warm: bool = False

    def as_dict(self) -> dict:
        return {
            "transport": self.transport,
            "workers": self.workers,
            "shards": self.shards,
            "rpc_window": self.rpc_window,
            "reason": self.reason,
            "predicted_seconds": self.predicted_seconds,
            "predictions": {k: round(v, 6) for k, v in self.predictions.items()},
            "draws_hint": self.draws_hint,
            "warm": self.warm,
        }


class AdaptivePlanner:
    """Chooses transport, shard count and RPC window for a sampling run.

    Parameters
    ----------
    profile:
        Calibration profile; defaults to :func:`load_profile` (which falls
        back to conservative built-ins when no file exists).
    cpu_count:
        Override the measured CPU availability (tests pin this).  Defaults
        to the scheduler-visible CPU count, not the host count — a
        container limited to 2 of 64 cores must plan for 2.
    """

    def __init__(
        self,
        profile: CalibrationProfile | None = None,
        *,
        cpu_count: int | None = None,
    ) -> None:
        self.profile = profile if profile is not None else load_profile()
        if cpu_count is not None:
            self.cpu_count = int(cpu_count)
        else:
            self.cpu_count = available_cpus()

    # ------------------------------------------------------------------ #
    # Decision inputs
    # ------------------------------------------------------------------ #
    @staticmethod
    def draws_for_target(moe: float, confidence: float = 0.95) -> int:
        """Pessimistic draw-volume hint for a margin-of-error target.

        Worst-case unit variance (0.25) times a design-effect factor of 2
        for cluster sampling; the planner only needs the order of
        magnitude, not the exact stopping point.
        """
        from scipy.stats import norm

        z = float(norm.ppf(0.5 + confidence / 2.0))
        base = (z / (2.0 * max(moe, 1e-6))) ** 2
        return max(100, int(math.ceil(2.0 * base)))

    def _predict(self, kind: str, draws: int, rounds: int, workers: int, warm: bool) -> float:
        entry = self.profile.cost(kind)
        startup = 0.0 if (warm or kind == "serial") else entry.startup_ms / 1_000.0
        overhead = rounds * entry.round_overhead_ms / 1_000.0
        effective = _effective_parallelism(kind, workers)
        return startup + overhead + draws * entry.per_draw_us / 1e6 / effective

    @staticmethod
    def _warm_workers(kind: str, workers: int) -> bool:
        """Whether a parked warm pool would absorb the startup cost."""
        if kind == "shm":
            from repro.sampling import shm

            return workers in shm._WARM_SHM_POOLS
        if kind == "pool":
            from repro.sampling import parallel

            return any(key[1] == workers for key in parallel._WARM_POOLS)
        return False

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(
        self,
        stats: StorageStats,
        *,
        draws: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        workers: int | None = None,
        shards: int | None = None,
        nodes: int = 0,
        rpc_window: int | None = None,
    ) -> PlannerDecision:
        """Choose the execution plan for one run over ``stats``-shaped data.

        ``draws`` is the expected draw volume (defaults to the
        MoE-0.05 hint); ``shards``, ``workers`` and ``rpc_window`` are
        caller pins that the planner always honours.  ``nodes`` > 0 makes
        RPC a candidate.

        The shard count — the stream-identity half of the decision — comes
        first, from the pin or :func:`plan_shards`, and nothing below that
        line (CPU count, warm pools, calibrated costs) can change it; those
        inputs only choose which transport executes the fixed plan.
        """
        draws_hint = draws if draws is not None else self.draws_for_target(0.05)
        draws_hint = max(1, min(draws_hint, max(stats.num_triples, 1)))
        rounds = max(1, math.ceil(draws_hint / max(1, batch_size)))

        if shards is not None:
            chosen_shards = max(1, int(shards))
        else:
            chosen_shards = plan_shards(stats, draws_hint)

        local_workers = workers if workers else min(self.cpu_count, self.profile.max_workers)
        local_workers = max(1, min(local_workers, chosen_shards))

        candidates: dict[str, tuple[int, bool]] = {"serial": (1, False)}
        if local_workers >= 2:
            for kind in ("shm", "pool"):
                candidates[kind] = (local_workers, self._warm_workers(kind, local_workers))
        if nodes > 0 and chosen_shards > 1:
            candidates["rpc"] = (max(1, nodes), False)

        predictions = {
            kind: self._predict(kind, draws_hint, rounds, width, warm)
            for kind, (width, warm) in candidates.items()
        }
        serial_predicted = predictions["serial"]
        chosen = "serial"
        for kind in PLANNABLE_TRANSPORTS:
            if kind == "serial" or kind not in predictions:
                continue
            if predictions[kind] * self.profile.min_speedup <= serial_predicted and (
                predictions[kind] < predictions[chosen] or chosen == "serial"
            ):
                chosen = kind
        chosen_workers, chosen_warm = candidates[chosen]

        window = None
        if chosen == "rpc":
            if rpc_window is not None:
                window = max(1, int(rpc_window))
            else:
                ratio = self.profile.rpc_rtt_ms / max(self.profile.rpc_service_ms, 1e-3)
                window = int(min(16, max(2, math.ceil(ratio) + 2)))

        if chosen == "serial":
            reason = (
                f"predicted serial {serial_predicted:.3f}s beats parallel "
                f"alternatives beyond the {self.profile.min_speedup:.2f}x margin "
                f"at ~{draws_hint} draws over {stats.num_triples} triples"
                f" ({chosen_shards} shard{'s' if chosen_shards != 1 else ''})"
            )
        else:
            reason = (
                f"predicted {chosen} {predictions[chosen]:.3f}s vs serial "
                f"{serial_predicted:.3f}s at ~{draws_hint} draws "
                f"({chosen_shards} shards on {chosen_workers} workers"
                + (", warm pool" if chosen_warm else "")
                + (f", skew {stats.skew:.0f}" if stats.skew > SKEW_THRESHOLD else "")
                + ")"
            )

        decision = PlannerDecision(
            transport=chosen,
            workers=chosen_workers,
            shards=chosen_shards,
            rpc_window=window,
            reason=reason,
            predicted_seconds=predictions[chosen],
            predictions=predictions,
            draws_hint=draws_hint,
            warm=chosen_warm,
        )
        obs_metrics.counter("planner_decisions_total", transport=chosen).inc()
        if _log.enabled_for("info"):
            _log.info("planner_decision", **decision.as_dict())
        return decision

    # ------------------------------------------------------------------ #
    # Decision -> transport
    # ------------------------------------------------------------------ #
    @staticmethod
    def build_transport(
        decision: PlannerDecision,
        *,
        nodes=(),
        secret=None,
        join_address=None,
    ):
        """Materialise the chosen :class:`~repro.sampling.parallel.ShardTransport`.

        Pool and shared-memory transports are created ``keep_alive`` so a
        process that evaluates repeatedly reuses one warm worker pool.
        """
        if decision.transport == "serial":
            from repro.sampling.parallel import SerialTransport

            return SerialTransport()
        if decision.transport == "pool":
            from repro.sampling.parallel import ProcessPoolTransport

            return ProcessPoolTransport(decision.workers, keep_alive=True)
        if decision.transport == "shm":
            from repro.sampling.shm import SharedMemoryTransport

            return SharedMemoryTransport(decision.workers, keep_alive=True)
        if decision.transport == "rpc":
            from repro.sampling.rpc import SocketRPCTransport

            return SocketRPCTransport(
                nodes,
                secret=secret,
                window=decision.rpc_window or 4,
                join_address=join_address,
            )
        raise ValueError(f"unknown planned transport {decision.transport!r}")


def available_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
