"""Weighted reservoir sampling (Efraimidis & Spirakis, Algorithm A-Res).

The reservoir incremental evaluation of Section 6.1 maintains a fixed-size,
size-weighted sample of entity clusters as the KG grows: each cluster ``i``
with weight ``w_i`` (its size) receives a key ``u_i^{1/w_i}`` with
``u_i ~ Uniform(0, 1)``, and the reservoir keeps the ``n`` clusters with the
largest keys.  Offering a new cluster therefore evicts the current minimum-key
cluster whenever the new key is larger — exactly the update step of
Algorithm 1 in the paper.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["ReservoirItem", "WeightedReservoir"]


@dataclass(frozen=True)
class ReservoirItem:
    """One cluster held in the reservoir."""

    item_id: str
    weight: float
    key: float
    payload: Any = None


class WeightedReservoir:
    """A fixed-capacity reservoir holding the items with the largest A-Res keys.

    Parameters
    ----------
    capacity:
        Maximum number of items retained (``|R|`` in the paper).
    seed:
        Seed or generator for the uniform key draws.

    Notes
    -----
    The reservoir is maintained as a min-heap on the keys so each offer costs
    O(log capacity).  Items are compared only through their keys; ties are
    broken arbitrarily (they occur with probability zero for continuous keys).
    """

    def __init__(self, capacity: int, seed: int | np.random.Generator | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        # Heap entries are (key, insertion_counter, ReservoirItem); the counter
        # breaks ties without ever comparing payloads.
        self._heap: list[tuple[float, int, ReservoirItem]] = []
        self._counter = 0
        self._num_replacements = 0
        self._num_offers = 0

    # ------------------------------------------------------------------ #
    # Key generation
    # ------------------------------------------------------------------ #
    def _draw_key(self, weight: float) -> float:
        if weight <= 0:
            raise ValueError("item weight must be positive")
        uniform = float(self._rng.random())
        # Guard against log(0); probability zero but numerically possible.
        uniform = max(uniform, np.finfo(float).tiny)
        return float(uniform ** (1.0 / weight))

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def offer(self, item_id: str, weight: float, payload: Any = None) -> ReservoirItem | None:
        """Offer one item; return the evicted item if a replacement happened.

        Returns ``None`` when the item was accepted without eviction (the
        reservoir was not yet full) or when the item was rejected.
        The newly created :class:`ReservoirItem` can be recovered from
        :attr:`items` when needed.
        """
        self._num_offers += 1
        key = self._draw_key(weight)
        item = ReservoirItem(item_id=item_id, weight=weight, key=key, payload=payload)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, (key, self._counter, item))
            self._counter += 1
            return None
        smallest_key, _, smallest_item = self._heap[0]
        if key > smallest_key:
            heapq.heapreplace(self._heap, (key, self._counter, item))
            self._counter += 1
            self._num_replacements += 1
            return smallest_item
        return None

    def contains(self, item_id: str) -> bool:
        """Whether an item with the given id is currently in the reservoir."""
        return any(entry[2].item_id == item_id for entry in self._heap)

    # ------------------------------------------------------------------ #
    # Read-outs
    # ------------------------------------------------------------------ #
    @property
    def items(self) -> list[ReservoirItem]:
        """The items currently in the reservoir (unordered)."""
        return [entry[2] for entry in self._heap]

    @property
    def size(self) -> int:
        """Number of items currently held."""
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        """Whether the reservoir has reached its capacity."""
        return len(self._heap) >= self.capacity

    @property
    def min_key(self) -> float:
        """The smallest key currently in the reservoir (``inf`` when empty)."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    @property
    def num_replacements(self) -> int:
        """Number of evictions performed since construction."""
        return self._num_replacements

    @property
    def num_offers(self) -> int:
        """Number of items offered since construction."""
        return self._num_offers

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self):
        return iter(self.items)
