"""Building strata over entity clusters (Section 5.3).

Two strategies from the paper:

* **size stratification** — cut cluster sizes into strata with the
  Dalenius–Hodges cumulative-√F rule; practical because cluster size is always
  observable and (per Figure 3) correlates with entity accuracy;
* **oracle stratification** — stratify directly on the true entity accuracy;
  impossible in practice but gives a lower bound on the achievable cost, used
  as such in Table 7.

Both return a list of :class:`Stratum` objects carrying the entity ids and the
stratum weight ``W_h = M_[h] / M``, ready to be consumed by
:class:`~repro.sampling.stratified.StratifiedTWCSDesign`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.stats.allocation import cumulative_sqrt_frequency_boundaries

__all__ = ["Stratum", "stratify_by_size", "stratify_by_oracle_accuracy", "stratify_by_key"]


@dataclass(frozen=True)
class Stratum:
    """One stratum of entity clusters.

    Attributes
    ----------
    label:
        Human-readable description of the stratum (e.g. ``"size<=3"``).
    entity_ids:
        The entity ids assigned to this stratum.
    num_triples:
        Total triples across the stratum's clusters (``M_[h]``).
    weight:
        Stratum weight ``W_h = M_[h] / M``.
    """

    label: str
    entity_ids: tuple[str, ...]
    num_triples: int
    weight: float

    @property
    def num_entities(self) -> int:
        """Number of entity clusters in this stratum."""
        return len(self.entity_ids)


def _build_strata(
    graph: KnowledgeGraph, assignment: Mapping[str, int], labels: Mapping[int, str]
) -> list[Stratum]:
    """Assemble :class:`Stratum` objects from an entity→stratum-index mapping."""
    totals: dict[int, int] = {}
    members: dict[int, list[str]] = {}
    for entity_id, stratum_index in assignment.items():
        members.setdefault(stratum_index, []).append(entity_id)
        totals[stratum_index] = totals.get(stratum_index, 0) + graph.cluster_size(entity_id)
    total_triples = graph.num_triples
    strata = []
    for stratum_index in sorted(members):
        strata.append(
            Stratum(
                label=labels.get(stratum_index, f"stratum-{stratum_index}"),
                entity_ids=tuple(members[stratum_index]),
                num_triples=totals[stratum_index],
                weight=totals[stratum_index] / total_triples,
            )
        )
    return strata


def stratify_by_key(
    graph: KnowledgeGraph,
    key: Callable[[str], float],
    boundaries: Sequence[float],
    label_prefix: str = "stratum",
) -> list[Stratum]:
    """Stratify clusters by an arbitrary numeric key and fixed boundaries.

    A cluster with key ``v`` is assigned to stratum ``h`` where ``h`` is the
    number of boundaries strictly below ``v`` (i.e. boundaries are upper
    bounds, inclusive).
    """
    sorted_boundaries = list(boundaries)
    assignment: dict[str, int] = {}
    for entity_id in graph.entity_ids:
        value = key(entity_id)
        index = int(np.searchsorted(sorted_boundaries, value, side="left"))
        assignment[entity_id] = index
    labels = {}
    for index in range(len(sorted_boundaries) + 1):
        lower = sorted_boundaries[index - 1] if index > 0 else None
        upper = sorted_boundaries[index] if index < len(sorted_boundaries) else None
        if lower is None and upper is not None:
            labels[index] = f"{label_prefix}<= {upper:g}"
        elif upper is None and lower is not None:
            labels[index] = f"{label_prefix}> {lower:g}"
        elif lower is not None and upper is not None:
            labels[index] = f"{label_prefix}({lower:g}, {upper:g}]"
        else:
            labels[index] = f"{label_prefix}-all"
    return _build_strata(graph, assignment, labels)


def stratify_by_size(graph: KnowledgeGraph, num_strata: int = 4) -> list[Stratum]:
    """Size stratification with the cumulative-√F rule (Table 7's setting).

    The paper uses two strata for NELL and four for MOVIE / MOVIE-SYN; the
    number of strata is a parameter here.
    """
    if num_strata < 1:
        raise ValueError("num_strata must be at least 1")
    sizes = graph.cluster_size_array()
    boundaries = cumulative_sqrt_frequency_boundaries(sizes, num_strata)
    return stratify_by_key(graph, graph.cluster_size, boundaries, label_prefix="size")


def stratify_by_oracle_accuracy(
    graph: KnowledgeGraph,
    cluster_accuracies: Mapping[str, float],
    num_strata: int = 4,
) -> list[Stratum]:
    """Oracle stratification: group clusters by their *true* accuracy.

    Only possible when ground-truth labels exist for the full KG; serves as
    the lower bound on annotation cost in Table 7.
    """
    if num_strata < 1:
        raise ValueError("num_strata must be at least 1")
    boundaries = np.linspace(0.0, 1.0, num_strata + 1)[1:-1]
    return stratify_by_key(
        graph,
        lambda entity_id: cluster_accuracies[entity_id],
        [float(b) for b in boundaries],
        label_prefix="accuracy",
    )
