"""Pilot studies: turning a small annotated sample into design decisions.

The optimal-m objective (Eq. 12) and the stratified designs need information
that is unknown before any annotation happens: the distribution of cluster
accuracies and how spread out they are.  Section 7.2.2 of the paper gives the
practical guideline ("keep m small, roughly 3–5"); this module codifies the
fuller workflow a practitioner would use:

1. :func:`run_pilot` — spend a small, fixed annotation budget on a TWCS sample
   to observe per-cluster accuracies;
2. :func:`recommend_design` — plug the pilot observations into Eq. (12) to
   pick the second-stage size ``m`` and predict the cluster draws / cost the
   full evaluation will need.

The pilot's own annotations are not wasted: its labels live in the annotator's
session, so the subsequent full evaluation re-uses them for free when it
happens to sample the same triples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cost.annotator import SimulatedAnnotator
from repro.cost.model import CostModel
from repro.kg.graph import KnowledgeGraph
from repro.sampling.optimal import OptimalSecondStage, optimal_second_stage_size
from repro.sampling.twcs import TwoStageWeightedClusterDesign

__all__ = ["PilotResult", "run_pilot", "recommend_design"]


@dataclass(frozen=True)
class PilotResult:
    """Observations collected by a pilot annotation round.

    Attributes
    ----------
    cluster_sizes:
        Size ``M_i`` of each pilot-sampled cluster (with multiplicity — the
        first stage samples with replacement).
    cluster_accuracies:
        Observed within-cluster sample accuracy of each pilot-sampled cluster.
    accuracy_estimate:
        The pilot's own (coarse) estimate of overall KG accuracy.
    num_triples_annotated:
        Triples labelled during the pilot.
    cost_hours:
        Annotation cost of the pilot in hours.
    """

    cluster_sizes: tuple[int, ...]
    cluster_accuracies: tuple[float, ...]
    accuracy_estimate: float
    num_triples_annotated: int
    cost_hours: float

    @property
    def num_clusters(self) -> int:
        """Number of pilot cluster draws."""
        return len(self.cluster_sizes)

    @property
    def between_cluster_std(self) -> float:
        """Standard deviation of the observed cluster accuracies."""
        if len(self.cluster_accuracies) < 2:
            return 0.0
        return float(np.std(self.cluster_accuracies, ddof=1))


def run_pilot(
    graph: KnowledgeGraph,
    annotator: SimulatedAnnotator,
    num_clusters: int = 30,
    second_stage_size: int = 3,
    seed: int | np.random.Generator | None = None,
) -> PilotResult:
    """Annotate a small TWCS sample and summarise what it reveals.

    Parameters
    ----------
    graph:
        The knowledge graph under evaluation.
    annotator:
        The annotator to charge (its session keeps the pilot labels so the
        main evaluation can reuse them).
    num_clusters:
        Pilot budget in first-stage cluster draws.
    second_stage_size:
        Pilot cap on triples per cluster; small values keep the pilot cheap.
    seed:
        Seed or generator for the pilot draws.
    """
    if num_clusters < 2:
        raise ValueError("a pilot needs at least 2 cluster draws")
    design = TwoStageWeightedClusterDesign(graph, second_stage_size, seed=seed)
    cost_before = annotator.total_cost_seconds
    triples_before = annotator.total_triples_annotated
    sizes: list[int] = []
    accuracies: list[float] = []
    for unit in design.draw(num_clusters):
        result = annotator.annotate_triples(unit.triples)
        design.update(unit, result.labels)
        sizes.append(unit.cluster_size)
        accuracies.append(sum(1 for t in unit.triples if result.labels[t]) / unit.num_triples)
    estimate = design.estimate()
    return PilotResult(
        cluster_sizes=tuple(sizes),
        cluster_accuracies=tuple(accuracies),
        accuracy_estimate=estimate.value,
        num_triples_annotated=annotator.total_triples_annotated - triples_before,
        cost_hours=(annotator.total_cost_seconds - cost_before) / 3600.0,
    )


def recommend_design(
    pilot: PilotResult,
    cost_model: CostModel | None = None,
    moe_target: float = 0.05,
    confidence_level: float = 0.95,
    max_second_stage_size: int = 20,
) -> OptimalSecondStage:
    """Pick the second-stage size ``m`` for the full evaluation from pilot data.

    The pilot's observed (size, accuracy) pairs stand in for the population in
    the Eq. (12) search.  Because pilots are small, the recommendation is
    clamped towards the paper's practical guideline: the search space is
    limited to ``max_second_stage_size`` and degenerates gracefully to ``m=1``
    when every pilot cluster was a singleton.
    """
    if pilot.num_clusters < 2:
        raise ValueError("cannot recommend a design from fewer than 2 pilot clusters")
    return optimal_second_stage_size(
        pilot.cluster_sizes,
        pilot.cluster_accuracies,
        cost_model if cost_model is not None else CostModel(),
        moe_target=moe_target,
        confidence_level=confidence_level,
        max_second_stage_size=max_second_stage_size,
    )
