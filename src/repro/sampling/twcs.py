"""Two-stage weighted cluster sampling — TWCS (Section 5.2.3).

The paper's best design:

1. **First stage** — draw entity clusters with replacement, with probability
   proportional to cluster size (as in WCS).
2. **Second stage** — within each sampled cluster, draw ``min(M_i, m)``
   triples by simple random sampling *without* replacement and annotate only
   those.

The estimator is the mean of the within-cluster sample accuracies,

    µ̂_{w,m} = (1/n) Σ_k µ̂_{I_k}                              (Eq. 9)

which is unbiased for any ``m`` (Proposition 1) and reduces to SRS when
``m = 1`` (Proposition 2).  The second stage caps the annotation cost per
sampled cluster at ``c1 + m·c2``, which is where the overall cost saving over
SRS comes from.
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.sampling.base import (
    Estimate,
    PositionUnit,
    SampleUnit,
    SamplingDesign,
    segment_label_sums,
)
from repro.stats.running import RunningMean

__all__ = ["TwoStageWeightedClusterDesign"]


class TwoStageWeightedClusterDesign(SamplingDesign):
    """TWCS: size-weighted first stage, capped SRS second stage.

    Parameters
    ----------
    graph:
        The knowledge graph to evaluate.
    second_stage_size:
        The cap ``m`` on triples annotated per sampled cluster.  Values around
        3–5 are near-optimal on all KGs studied in the paper (Section 7.2.2);
        use :func:`repro.sampling.optimal.optimal_second_stage_size` to pick it
        from pilot information.
    seed:
        Seed or generator for reproducible draws.
    """

    unit_name = "cluster"

    def __init__(
        self,
        graph: KnowledgeGraph,
        second_stage_size: int = 5,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if second_stage_size < 1:
            raise ValueError("second_stage_size must be at least 1")
        if graph.num_triples == 0:
            raise ValueError("cannot sample from an empty knowledge graph")
        self.graph = graph
        self.second_stage_size = second_stage_size
        self._rng = np.random.default_rng(seed)
        self._sizes = graph.cluster_size_array()
        sizes = self._sizes.astype(float)
        self._weights = sizes / sizes.sum()
        #: entity-id strings are only needed by the object draw surface;
        #: materialised lazily so position-only runs never pay for them.
        self._entity_ids_cache: list[str] | None = None
        self._cluster_means = RunningMean()
        self._num_triples = 0

    @property
    def _entity_ids(self) -> list[str]:
        if self._entity_ids_cache is None:
            self._entity_ids_cache = list(self.graph.entity_ids)
        return self._entity_ids_cache

    def reset(self) -> None:
        """Clear the accumulated within-cluster sample accuracies."""
        self._cluster_means = RunningMean()
        self._num_triples = 0

    def draw(self, count: int) -> list[SampleUnit]:
        """Draw ``count`` cluster units, each carrying at most ``m`` triples."""
        if count < 0:
            raise ValueError("count must be non-negative")
        entity_ids = self._entity_ids
        indices = self._rng.choice(len(entity_ids), size=count, replace=True, p=self._weights)
        graph = self.graph
        units = []
        for index in indices:
            entity_id = entity_ids[int(index)]
            positions = graph.sample_cluster_positions(entity_id, self.second_stage_size, self._rng)
            units.append(
                SampleUnit(
                    triples=tuple(graph.triples_at(positions)),
                    entity_id=entity_id,
                    cluster_size=int(self._sizes[index]),
                    positions=positions,
                )
            )
        return units

    def draw_positions(self, count: int) -> list[PositionUnit]:
        """Draw ``count`` cluster units as position-only views (no Triples)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        rows = self._rng.choice(self._sizes.shape[0], size=count, replace=True, p=self._weights)
        batches = self.graph.sample_cluster_positions_batch(rows, self.second_stage_size, self._rng)
        sizes = self._sizes
        return [
            PositionUnit(positions=positions, entity_row=int(row), cluster_size=int(sizes[row]))
            for row, positions in zip(rows, batches)
        ]

    def update(self, unit: SampleUnit, labels: dict[Triple, bool]) -> None:
        """Add one cluster's within-sample accuracy ``µ̂_{I_k}`` to the mean."""
        num_correct = sum(1 for triple in unit.triples if labels[triple])
        self._cluster_means.add(num_correct / unit.num_triples)
        self._num_triples += unit.num_triples

    def update_positions(self, unit: PositionUnit, labels: np.ndarray) -> None:
        """Position-surface twin of :meth:`update` (labels as a boolean array)."""
        self._cluster_means.add(float(labels.mean()))
        self._num_triples += int(labels.shape[0])

    def update_all_positions(self, units: list[PositionUnit], label_array: np.ndarray) -> None:
        """Vectorised batch update: one gather + ``reduceat`` for the whole batch."""
        if not units:
            return
        counts, sums = segment_label_sums(units, label_array)
        self.absorb_position_stats(counts, sums)

    def absorb_position_stats(self, counts: np.ndarray, sums: np.ndarray) -> None:
        """Fold externally drawn per-cluster ``(counts, sums)`` into the estimator.

        Lets the parallel shard engine feed this design's Eq. (9) accumulator
        with draws it performed itself (one
        :class:`~repro.sampling.parallel.ShardDraw` per call, in shard order),
        keeping :meth:`estimate` the single source of truth either way.
        """
        if counts.shape[0] == 0:
            return
        self._cluster_means.add_many(sums / counts)
        self._num_triples += int(counts.sum())

    def estimate(self) -> Estimate:
        """Eq. (9): mean of within-cluster accuracies with its standard error."""
        return Estimate(
            value=self._cluster_means.mean,
            std_error=self._cluster_means.std_error,
            num_units=self._cluster_means.count,
            num_triples=self._num_triples,
        )
