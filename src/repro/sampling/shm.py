"""Shared-memory shard transport: zero-serialization CSR views on one host.

:class:`SharedMemoryTransport` is the planner's single-host latency attack.
On :meth:`~repro.sampling.parallel.ShardTransport.bind` it copies the frozen
CSR index once into named ``multiprocessing.shared_memory`` segments; worker
processes then map those segments directly and build zero-copy
``numpy.ndarray`` views over them — no per-task array pickling, no
copy-on-write page faults, and (unlike the fork-pool registry) no coupling
between the pool's lifetime and any particular graph:

* the *attachment descriptor* (segment names, dtypes, shapes) travels with
  every task, so one warm pool serves successive binds to different graphs;
* workers keep a small bounded cache of attached segments keyed by segment
  name, so successive rounds over the same graph attach exactly once;
* with ``keep_alive=True`` (the default — this transport exists to be
  reused) :meth:`close` parks the worker pool in a module registry and the
  next transport for the same worker count adopts it, skipping process
  startup entirely.

The segments hold only the public CSR index (offsets + positions) — labels
never enter shared memory, mirroring the other transports' trust model.

Determinism: workers run the same pure
:func:`~repro.sampling.parallel._run_task` draw core over the mapped views,
so trajectories are bit-identical to every other transport for a fixed
shard count (enforced by the parity suites).
"""

from __future__ import annotations

import atexit
import multiprocessing
import uuid
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.sampling.parallel import (
    ShardResult,
    ShardTask,
    ShardTransport,
    _run_task,
)

__all__ = ["SharedMemoryTransport", "shutdown_warm_pools"]

_log = get_logger("sampling.shm")


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without registering it for cleanup.

    The master owns segment lifetime (it unlinks on close).  Worker-side
    resource tracking would try to unlink the same name again at worker
    exit and emit spurious "leaked shared_memory" warnings on 3.11/3.12,
    so attachments opt out of tracking where the API allows it and
    unregister manually otherwise.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        segment = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        return segment


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
#: Worker-side cache of attached CSR views keyed by the descriptor key; a
#: warm pool re-attaches only when it meets a graph it has not seen lately.
_ATTACH_CACHE: "OrderedDict[str, tuple[list, tuple[np.ndarray, np.ndarray]]]" = OrderedDict()
_ATTACH_CACHE_LIMIT = 4


def _evict_attachment(key: str) -> None:
    segments, _arrays = _ATTACH_CACHE.pop(key)
    del _arrays  # drop the ndarray views before closing their buffers
    for segment in segments:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a view escaped; leak, don't crash
            pass


def _attach(descriptor: dict) -> tuple[np.ndarray, np.ndarray]:
    """Resolve a task's attachment descriptor to CSR ``(offsets, positions)``."""
    key = descriptor["key"]
    cached = _ATTACH_CACHE.get(key)
    if cached is not None:
        _ATTACH_CACHE.move_to_end(key)
        return cached[1]
    while len(_ATTACH_CACHE) >= _ATTACH_CACHE_LIMIT:
        _evict_attachment(next(iter(_ATTACH_CACHE)))
    segments: list = []
    arrays: list[np.ndarray] = []
    for field in ("offsets", "positions"):
        name, dtype, shape = descriptor[field]
        segment = _attach_segment(name)
        segments.append(segment)
        arrays.append(np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf))
    _ATTACH_CACHE[key] = (segments, (arrays[0], arrays[1]))
    return _ATTACH_CACHE[key][1]


def _execute_shm_task(descriptor: dict, task: ShardTask) -> ShardResult:
    """Pool entry point: map the shared segments and run the pure draw core."""
    return _run_task(task, _attach(descriptor))


# --------------------------------------------------------------------------- #
# Warm pool registry (pools are graph-agnostic: attachment travels per task)
# --------------------------------------------------------------------------- #
_WARM_SHM_POOLS: dict[int, ProcessPoolExecutor] = {}


def _make_pool(workers: int) -> ProcessPoolExecutor:
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context("spawn")
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


def shutdown_warm_pools() -> None:
    """Shut down every parked shared-memory worker pool (also runs at exit).

    Idempotent (explicit calls and the ``atexit`` hook compose), and a pool
    whose processes already died cannot abort the sweep: it is popped first,
    and a raising ``shutdown`` never stops the remaining pools from being
    released.
    """
    while _WARM_SHM_POOLS:
        _, pool = _WARM_SHM_POOLS.popitem()
        try:
            pool.shutdown(wait=True)
        except Exception:
            pass


atexit.register(shutdown_warm_pools)


class SharedMemoryTransport(ShardTransport):
    """Warm process pool drawing from shared-memory CSR segments.

    Parameters
    ----------
    workers:
        Worker process count (also the transport's natural shard count).
    keep_alive:
        When true (default), :meth:`close` parks the pool for adoption by
        the next ``SharedMemoryTransport`` with the same worker count
        instead of shutting it down.  Because the attachment descriptor
        rides on every task, an adopted pool serves *any* graph — the
        per-graph state lives in the named segments, not the processes.
    """

    kind = "shm"

    def __init__(self, workers: int, *, keep_alive: bool = True) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self.workers = int(workers)
        self.keep_alive = bool(keep_alive)
        self._pool: ProcessPoolExecutor | None = None
        self._segments: list[shared_memory.SharedMemory] = []
        self._descriptor: dict | None = None

    @property
    def default_shards(self) -> int | None:
        return self.workers

    def bind(self, offsets, positions, *, snapshot=None) -> None:
        self._release_segments()
        super().bind(offsets, positions, snapshot=snapshot)
        key = uuid.uuid4().hex[:12]
        descriptor: dict = {"key": key}
        for index, (field, source) in enumerate((("offsets", offsets), ("positions", positions))):
            array = np.ascontiguousarray(np.asarray(source, dtype=np.int64))
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes), name=f"repro-{key}-{index}"
            )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[:] = array
            del view  # release the buffer export so close() can succeed later
            self._segments.append(segment)
            descriptor[field] = (segment.name, array.dtype.str, array.shape)
        self._descriptor = descriptor
        if _log.enabled_for("debug"):
            _log.debug(
                "shm_bind",
                key=key,
                segments=[segment.name for segment in self._segments],
                bytes=int(sum(max(1, segment.size) for segment in self._segments)),
            )

    def _release_segments(self) -> None:
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - defensive
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments = []
        self._descriptor = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            parked = _WARM_SHM_POOLS.pop(self.workers, None) if self.keep_alive else None
            if parked is not None:
                obs_metrics.counter("sampling_warm_pool_reuse_total", kind=self.kind).inc()
                self._pool = parked
            else:
                self._pool = _make_pool(self.workers)
        return self._pool

    def execute(self, tasks: list[ShardTask]) -> list[ShardResult]:
        if self._descriptor is None:
            raise RuntimeError("SharedMemoryTransport.execute before bind()")
        pool = self._ensure_pool()
        descriptor = self._descriptor
        futures = [pool.submit(_execute_shm_task, descriptor, task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._release_segments()
        if self._pool is not None:
            if self.keep_alive and self.workers not in _WARM_SHM_POOLS:
                _WARM_SHM_POOLS[self.workers] = self._pool
            else:
                self._pool.shutdown(wait=True)
            self._pool = None
