"""Sampling designs and estimators (Section 5 of the paper).

Every design follows the same life cycle used by the iterative evaluation
framework (Section 4):

1. :meth:`~repro.sampling.base.SamplingDesign.draw` a batch of *sample units*
   (individual triples for SRS, cluster draws for the cluster designs);
2. hand the units' triples to an annotator for labels;
3. :meth:`~repro.sampling.base.SamplingDesign.update` the design's internal
   estimator with those labels;
4. read the current :meth:`~repro.sampling.base.SamplingDesign.estimate` and
   its margin of error.

Available designs:

* :class:`~repro.sampling.srs.SimpleRandomDesign` — triple-level simple random
  sampling (Section 5.1);
* :class:`~repro.sampling.rcs.RandomClusterDesign` — uniform cluster sampling
  (Section 5.2.1);
* :class:`~repro.sampling.wcs.WeightedClusterDesign` — size-weighted cluster
  sampling with the Hansen–Hurwitz estimator (Section 5.2.2);
* :class:`~repro.sampling.twcs.TwoStageWeightedClusterDesign` — the paper's
  best design, TWCS (Section 5.2.3);
* :class:`~repro.sampling.stratified.StratifiedTWCSDesign` — TWCS inside
  size/oracle strata (Section 5.3).

Supporting modules: theoretical variance Eq. (10)
(:mod:`repro.sampling.variance`), optimal second-stage size Eq. (12)
(:mod:`repro.sampling.optimal`), stratum construction
(:mod:`repro.sampling.stratification`) and weighted reservoir sampling
(:mod:`repro.sampling.reservoir`).
"""

from repro.sampling.base import Estimate, PositionUnit, SampleUnit, SamplingDesign
from repro.sampling.optimal import (
    expected_srs_cost_seconds,
    expected_twcs_cost_seconds,
    optimal_second_stage_size,
)
from repro.sampling.parallel import (
    PARALLEL_DESIGNS,
    CostSummary,
    ParallelSamplingExecutor,
    ProcessPoolTransport,
    SamplingRun,
    SerialTransport,
    ShardDraw,
    ShardResult,
    ShardTask,
    ShardTransport,
)
from repro.sampling.pilot import PilotResult, recommend_design, run_pilot
from repro.sampling.rcs import RandomClusterDesign
from repro.sampling.reservoir import ReservoirItem, WeightedReservoir
from repro.sampling.segment import PositionSegment, SegmentTWCSDesign
from repro.sampling.srs import SimpleRandomDesign
from repro.sampling.stratification import (
    Stratum,
    stratify_by_oracle_accuracy,
    stratify_by_size,
)
from repro.sampling.stratified import StratifiedTWCSDesign
from repro.sampling.tsrcs import TwoStageRandomClusterDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.sampling.variance import srs_variance, twcs_theoretical_variance
from repro.sampling.wcs import WeightedClusterDesign

__all__ = [
    "Estimate",
    "SampleUnit",
    "PositionUnit",
    "SamplingDesign",
    "SimpleRandomDesign",
    "RandomClusterDesign",
    "WeightedClusterDesign",
    "TwoStageWeightedClusterDesign",
    "TwoStageRandomClusterDesign",
    "StratifiedTWCSDesign",
    "PositionSegment",
    "SegmentTWCSDesign",
    "ParallelSamplingExecutor",
    "SamplingRun",
    "ShardDraw",
    "CostSummary",
    "PARALLEL_DESIGNS",
    "ShardTask",
    "ShardResult",
    "ShardTransport",
    "SerialTransport",
    "ProcessPoolTransport",
    "PilotResult",
    "run_pilot",
    "recommend_design",
    "Stratum",
    "stratify_by_size",
    "stratify_by_oracle_accuracy",
    "WeightedReservoir",
    "ReservoirItem",
    "srs_variance",
    "twcs_theoretical_variance",
    "optimal_second_stage_size",
    "expected_srs_cost_seconds",
    "expected_twcs_cost_seconds",
]
