"""Random cluster sampling (Section 5.2.1).

Entity clusters are drawn uniformly at random (without replacement) and every
triple of a sampled cluster is annotated.  The unbiased estimator is

    µ̂_r = (N / (M n)) * Σ_k τ_{I_k}                         (Eq. 7)

i.e. the mean of the per-cluster values ``(N / M) * τ_{I_k}`` where ``τ`` is
the number of correct triples in the cluster.  Because those values scale with
cluster size, the estimator's variance is large whenever cluster sizes are
widely spread — which is exactly what Table 5 shows (RCS is by far the worst
design on MOVIE and YAGO).
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.sampling.base import Estimate, SampleUnit, SamplingDesign
from repro.stats.running import RunningMean

__all__ = ["RandomClusterDesign"]


class RandomClusterDesign(SamplingDesign):
    """Uniform cluster sampling with the expansion estimator of Eq. (7).

    Parameters
    ----------
    graph:
        The knowledge graph to evaluate.
    seed:
        Seed or generator for reproducible draws.
    """

    unit_name = "cluster"

    def __init__(
        self, graph: KnowledgeGraph, seed: int | np.random.Generator | None = None
    ) -> None:
        self.graph = graph
        self._rng = np.random.default_rng(seed)
        self._entity_ids = list(graph.entity_ids)
        self._permutation: np.ndarray | None = None
        self._cursor = 0
        self._values = RunningMean()
        self._num_triples = 0

    def reset(self) -> None:
        """Forget the draw order and all accumulated labels."""
        self._permutation = None
        self._cursor = 0
        self._values = RunningMean()
        self._num_triples = 0

    def _ensure_permutation(self) -> None:
        if self._permutation is None:
            self._permutation = self._rng.permutation(len(self._entity_ids))
            self._cursor = 0

    @property
    def exhausted(self) -> bool:
        """Whether every cluster has already been drawn."""
        self._ensure_permutation()
        assert self._permutation is not None
        return self._cursor >= self._permutation.size

    def draw(self, count: int) -> list[SampleUnit]:
        """Draw up to ``count`` previously undrawn clusters uniformly."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._ensure_permutation()
        assert self._permutation is not None
        end = min(self._cursor + count, self._permutation.size)
        indices = self._permutation[self._cursor : end]
        self._cursor = end
        units = []
        for index in indices:
            cluster = self.graph.cluster(self._entity_ids[int(index)])
            units.append(
                SampleUnit(
                    triples=cluster.triples,
                    entity_id=cluster.entity_id,
                    cluster_size=cluster.size,
                )
            )
        return units

    def update(self, unit: SampleUnit, labels: dict[Triple, bool]) -> None:
        """Add the expansion value ``(N / M) * τ`` of one sampled cluster."""
        num_correct = sum(1 for triple in unit.triples if labels[triple])
        scale = self.graph.num_entities / self.graph.num_triples
        self._values.add(scale * num_correct)
        self._num_triples += unit.num_triples

    def estimate(self) -> Estimate:
        """Mean of the per-cluster expansion values with its standard error."""
        return Estimate(
            value=self._values.mean,
            std_error=self._values.std_error,
            num_units=self._values.count,
            num_triples=self._num_triples,
        )
