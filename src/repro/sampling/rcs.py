"""Random cluster sampling (Section 5.2.1).

Entity clusters are drawn uniformly at random (without replacement) and every
triple of a sampled cluster is annotated.  The unbiased estimator is

    µ̂_r = (N / (M n)) * Σ_k τ_{I_k}                         (Eq. 7)

i.e. the mean of the per-cluster values ``(N / M) * τ_{I_k}`` where ``τ`` is
the number of correct triples in the cluster.  Because those values scale with
cluster size, the estimator's variance is large whenever cluster sizes are
widely spread — which is exactly what Table 5 shows (RCS is by far the worst
design on MOVIE and YAGO).
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.sampling.base import (
    Estimate,
    PositionUnit,
    SampleUnit,
    SamplingDesign,
    segment_label_sums,
)
from repro.stats.running import RunningMean

__all__ = ["RandomClusterDesign"]


class RandomClusterDesign(SamplingDesign):
    """Uniform cluster sampling with the expansion estimator of Eq. (7).

    Parameters
    ----------
    graph:
        The knowledge graph to evaluate.
    seed:
        Seed or generator for reproducible draws.
    """

    unit_name = "cluster"

    def __init__(
        self, graph: KnowledgeGraph, seed: int | np.random.Generator | None = None
    ) -> None:
        self.graph = graph
        self._rng = np.random.default_rng(seed)
        self._num_entities = graph.num_entities
        self._entity_ids_cache: list[str] | None = None
        self._permutation: np.ndarray | None = None
        self._cursor = 0
        self._values = RunningMean()
        self._num_triples = 0

    @property
    def _entity_ids(self) -> list[str]:
        if self._entity_ids_cache is None:
            self._entity_ids_cache = list(self.graph.entity_ids)
        return self._entity_ids_cache

    def reset(self) -> None:
        """Forget the draw order and all accumulated labels."""
        self._permutation = None
        self._cursor = 0
        self._values = RunningMean()
        self._num_triples = 0

    def _ensure_permutation(self) -> None:
        if self._permutation is None:
            self._permutation = self._rng.permutation(self._num_entities)
            self._cursor = 0

    @property
    def exhausted(self) -> bool:
        """Whether every cluster has already been drawn."""
        self._ensure_permutation()
        assert self._permutation is not None
        return self._cursor >= self._permutation.size

    def _next_rows(self, count: int) -> np.ndarray:
        self._ensure_permutation()
        assert self._permutation is not None
        end = min(self._cursor + count, self._permutation.size)
        rows = self._permutation[self._cursor : end]
        self._cursor = end
        return rows

    def draw(self, count: int) -> list[SampleUnit]:
        """Draw up to ``count`` previously undrawn clusters uniformly."""
        if count < 0:
            raise ValueError("count must be non-negative")
        graph = self.graph
        entity_ids = self._entity_ids
        units = []
        for row in self._next_rows(count):
            entity_id = entity_ids[int(row)]
            positions = graph.cluster_positions(entity_id)
            units.append(
                SampleUnit(
                    triples=tuple(graph.triples_at(positions)),
                    entity_id=entity_id,
                    cluster_size=int(positions.shape[0]),
                    positions=positions,
                )
            )
        return units

    def draw_positions(self, count: int) -> list[PositionUnit]:
        """Draw up to ``count`` undrawn clusters as zero-copy position views."""
        if count < 0:
            raise ValueError("count must be non-negative")
        graph = self.graph
        units = []
        for row in self._next_rows(count):
            positions = graph.cluster_positions_by_row(int(row))
            units.append(
                PositionUnit(
                    positions=positions,
                    entity_row=int(row),
                    cluster_size=int(positions.shape[0]),
                )
            )
        return units

    def update(self, unit: SampleUnit, labels: dict[Triple, bool]) -> None:
        """Add the expansion value ``(N / M) * τ`` of one sampled cluster."""
        num_correct = sum(1 for triple in unit.triples if labels[triple])
        scale = self.graph.num_entities / self.graph.num_triples
        self._values.add(scale * num_correct)
        self._num_triples += unit.num_triples

    def update_positions(self, unit: PositionUnit, labels: np.ndarray) -> None:
        """Position-surface twin of :meth:`update`."""
        scale = self.graph.num_entities / self.graph.num_triples
        self._values.add(scale * int(labels.sum()))
        self._num_triples += int(labels.shape[0])

    def update_all_positions(self, units: list[PositionUnit], label_array: np.ndarray) -> None:
        """Vectorised batch update: one gather + ``reduceat`` for the whole batch."""
        if not units:
            return
        counts, sums = segment_label_sums(units, label_array)
        scale = self.graph.num_entities / self.graph.num_triples
        self._values.add_many(scale * sums)
        self._num_triples += int(counts.sum())

    def estimate(self) -> Estimate:
        """Mean of the per-cluster expansion values with its standard error."""
        return Estimate(
            value=self._values.mean,
            std_error=self._values.std_error,
            num_units=self._values.count,
            num_triples=self._num_triples,
        )
