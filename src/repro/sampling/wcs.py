"""Weighted cluster sampling (Section 5.2.2).

Clusters are drawn *with replacement* with probability proportional to their
size, ``π_i = M_i / M``; all triples of a sampled cluster are annotated.  The
Hansen–Hurwitz estimator is the plain mean of the sampled cluster accuracies:

    µ̂_w = (1/n) Σ_k µ_{I_k}                                  (Eq. 8)

Because it averages *accuracies* rather than correct-triple *counts*, its
variance does not blow up with the spread of cluster sizes, fixing the main
weakness of random cluster sampling.
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.sampling.base import (
    Estimate,
    PositionUnit,
    SampleUnit,
    SamplingDesign,
    segment_label_sums,
)
from repro.stats.running import RunningMean

__all__ = ["WeightedClusterDesign"]


class WeightedClusterDesign(SamplingDesign):
    """Size-weighted cluster sampling with the Hansen–Hurwitz estimator.

    Parameters
    ----------
    graph:
        The knowledge graph to evaluate.
    seed:
        Seed or generator for reproducible draws.
    """

    unit_name = "cluster"

    def __init__(
        self, graph: KnowledgeGraph, seed: int | np.random.Generator | None = None
    ) -> None:
        if graph.num_triples == 0:
            raise ValueError("cannot sample from an empty knowledge graph")
        self.graph = graph
        self._rng = np.random.default_rng(seed)
        self._sizes = graph.cluster_size_array()
        sizes = self._sizes.astype(float)
        self._weights = sizes / sizes.sum()
        self._entity_ids_cache: list[str] | None = None
        self._values = RunningMean()
        self._num_triples = 0

    @property
    def _entity_ids(self) -> list[str]:
        if self._entity_ids_cache is None:
            self._entity_ids_cache = list(self.graph.entity_ids)
        return self._entity_ids_cache

    def reset(self) -> None:
        """Clear the accumulated cluster accuracies."""
        self._values = RunningMean()
        self._num_triples = 0

    def _draw_cluster_indices(self, count: int) -> np.ndarray:
        return self._rng.choice(self._sizes.shape[0], size=count, replace=True, p=self._weights)

    def draw(self, count: int) -> list[SampleUnit]:
        """Draw ``count`` clusters with probability proportional to size."""
        if count < 0:
            raise ValueError("count must be non-negative")
        graph = self.graph
        entity_ids = self._entity_ids
        units = []
        for index in self._draw_cluster_indices(count):
            entity_id = entity_ids[int(index)]
            positions = graph.cluster_positions(entity_id)
            units.append(
                SampleUnit(
                    triples=tuple(graph.triples_at(positions)),
                    entity_id=entity_id,
                    cluster_size=int(self._sizes[index]),
                    positions=positions,
                )
            )
        return units

    def draw_positions(self, count: int) -> list[PositionUnit]:
        """Draw ``count`` whole clusters as zero-copy position views."""
        if count < 0:
            raise ValueError("count must be non-negative")
        graph = self.graph
        sizes = self._sizes
        return [
            PositionUnit(
                positions=graph.cluster_positions_by_row(int(row)),
                entity_row=int(row),
                cluster_size=int(sizes[row]),
            )
            for row in self._draw_cluster_indices(count)
        ]

    def update(self, unit: SampleUnit, labels: dict[Triple, bool]) -> None:
        """Add one sampled cluster's accuracy to the Hansen–Hurwitz mean."""
        num_correct = sum(1 for triple in unit.triples if labels[triple])
        self._values.add(num_correct / unit.num_triples)
        self._num_triples += unit.num_triples

    def update_positions(self, unit: PositionUnit, labels: np.ndarray) -> None:
        """Position-surface twin of :meth:`update`."""
        self._values.add(float(labels.mean()))
        self._num_triples += int(labels.shape[0])

    def update_all_positions(self, units: list[PositionUnit], label_array: np.ndarray) -> None:
        """Vectorised batch update: one gather + ``reduceat`` for the whole batch."""
        if not units:
            return
        counts, sums = segment_label_sums(units, label_array)
        self._values.add_many(sums / counts)
        self._num_triples += int(counts.sum())

    def estimate(self) -> Estimate:
        """Mean of sampled cluster accuracies with its standard error."""
        return Estimate(
            value=self._values.mean,
            std_error=self._values.std_error,
            num_units=self._values.count,
            num_triples=self._num_triples,
        )
