"""Parallel shard-per-CSR-range draw engine for the position surface.

Every cluster design's draw loop decomposes over a
:class:`~repro.storage.shard.ShardPlan`: shard ``k`` owns a contiguous row
range of the CSR index, draws first-stage clusters inside that range with its
own random stream, and runs the second stage on its own zero-copy slice.
:class:`ParallelSamplingExecutor` fans those per-shard loops across a process
pool and merges the per-shard accumulators deterministically.

Determinism contract
--------------------
A :class:`SamplingRun` is a pure function of ``(graph CSR, label array,
design, plan, seed)``:

* the root :class:`numpy.random.SeedSequence` is spawned once per shard task
  (``root.spawn(num_tasks)``); shard streams continue across rounds (workers
  return the generator state, the master threads it into the next round's
  task), so no draw depends on which process executed an earlier round;
* the number of draws each shard receives per round is allocated
  deterministically (largest-remainder, proportional to shard triple/entity
  mass) — no randomness crosses shard boundaries;
* label sums, estimator updates and Eq. (4) cost accounting happen on the
  master, folding per-shard results in shard order.

Consequently a run executed on a process pool is **bit-identical** — same
estimates, same cost accounting — to the same run executed serially
in-process (``workers=None``), on every storage backend, regardless of
worker count or OS scheduling.  The random stream *does* depend on the shard
count ``K``: a plan is part of a run's identity.

Transports
----------
*Planning* (which shard draws what, in which stream) is separated from
*execution transport* (where a :class:`ShardTask` actually runs).  A
:class:`ShardTransport` executes self-contained tasks and returns their
:class:`ShardResult`\\ s in task order; because a result is a pure function
of ``(task, bound CSR index)``, swapping the transport can never change a
trajectory.  Three implementations exist:

* :class:`SerialTransport` — runs every task in-process; the reference.
* :class:`ProcessPoolTransport` — fans tasks across a local fork/spawn
  process pool (the historical ``workers=`` behaviour).
* :class:`~repro.sampling.rpc.SocketRPCTransport` — streams tasks to remote
  worker nodes over a schema'd, CRC-framed binary protocol
  (:mod:`repro.sampling.wire` — no pickle on the wire), with mutual
  HMAC shared-secret authentication on connect, a per-node in-flight task
  window (pipelining + work stealing from slow nodes), and elastic
  membership (``repro worker --join`` registers with a running master);
  the CSR index ships content-addressed exactly once per node
  (``repro worker --listen``).

Because a result is a pure function of ``(task, bound CSR index)``, a
transport may execute a task *more than once* (drop reassignment, work
stealing) — every copy yields the identical bytes, so exactly-once
execution is not part of the contract; exactly-once *merging* is.

Workers attach to the CSR index without copying: on ``fork`` platforms the
arrays are inherited copy-on-write through a module registry; with a
``snapshot`` directory (or over RPC) they re-open the columns
memory-mapped; the ``spawn`` fallback ships the arrays once per worker.
Labels never leave the master.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
import time
import uuid
from abc import ABC, abstractmethod
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cost.model import CostModel
from repro.kg.graph import _floyd_sample_batch
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger
from repro.obs.trace import TraceContext
from repro.sampling.base import Estimate
from repro.stats.allocation import (
    largest_remainder,
    neyman_allocation,
    proportional_allocation,
)
from repro.stats.running import RunningMean
from repro.storage.shard import ShardPlan, ShardView

__all__ = [
    "ParallelSamplingExecutor",
    "SamplingRun",
    "ShardDraw",
    "CostSummary",
    "PARALLEL_DESIGNS",
    "ShardSource",
    "ShardTask",
    "ShardResult",
    "ShardTransport",
    "SerialTransport",
    "ProcessPoolTransport",
    "shutdown_warm_pools",
]

#: Designs the engine can fan out (plus ``"twcs-strat"`` via ``strata=``).
PARALLEL_DESIGNS = ("srs", "rcs", "wcs", "twcs", "tsrcs")

_WOR_DESIGNS = ("srs", "rcs")

_log = get_logger("sampling.engine")
_task_log = get_logger("sampling.task")


# --------------------------------------------------------------------------- #
# Worker-side attachment
# --------------------------------------------------------------------------- #
#: Parent-side registry of CSR arrays, inherited copy-on-write by forked
#: workers; keyed per executor so several executors can coexist.
_ATTACH_REGISTRY: dict[str, tuple[np.ndarray, np.ndarray]] = {}
#: Worker-side attachment installed by the pool initializer.
_WORKER_ATTACH: tuple[np.ndarray, np.ndarray] | None = None


def _load_snapshot_csr(path: str) -> tuple[np.ndarray, np.ndarray]:
    base = Path(path)
    return (
        np.load(base / "cluster_offsets.npy", mmap_mode="r"),
        np.load(base / "cluster_positions.npy", mmap_mode="r"),
    )


def _init_worker(mode: str, payload) -> None:
    global _WORKER_ATTACH
    if mode == "registry":
        _WORKER_ATTACH = _ATTACH_REGISTRY[payload]
    elif mode == "snapshot":
        _WORKER_ATTACH = _load_snapshot_csr(payload)
    else:  # "arrays" — spawn fallback, shipped once per worker
        _WORKER_ATTACH = payload


# --------------------------------------------------------------------------- #
# Tasks and results
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardSource:
    """Where a task's clusters live.

    ``kind``:
      * ``"range"`` — global rows ``[lo, hi)`` of the attached CSR index;
      * ``"rows"`` — an explicit array of global rows of the attached index
        (stratified sampling, fixed-row fan-out);
      * ``"csr"`` — a self-contained local CSR pair carried by the task
        itself (update segments), whose position values stay global.
    """

    kind: str
    lo: int = 0
    hi: int = 0
    rows: np.ndarray | None = None
    offsets: np.ndarray | None = None
    positions: np.ndarray | None = None


@dataclass(frozen=True)
class ShardTask:
    """One round of draws for one shard — self-contained and picklable.

    ``trace`` is observability-only context (the master's round span); it
    never feeds the draw and defaults to None, in which case the wire
    encoding is byte-identical to the pre-trace protocol.
    """

    index: int
    design: str
    source: ShardSource
    count: int
    cap: int
    rng_state: dict | None
    perm_seed: np.random.SeedSequence | None
    cursor: int
    trace: TraceContext | None = None


@dataclass(frozen=True)
class ShardResult:
    index: int
    rows: np.ndarray
    counts: np.ndarray
    sizes: np.ndarray
    positions: np.ndarray
    rng_state: dict | None
    cursor: int
    elapsed: float
    trace: TraceContext | None = None


@dataclass(frozen=True)
class ShardDraw:
    """The units one shard contributed to a :meth:`SamplingRun.step` round.

    Attributes
    ----------
    shard:
        Task index within the run (shard order).
    rows:
        Per-unit cluster keys: global entity rows for graph-backed runs,
        segment-local cluster indices for segment runs, ``-1`` for SRS.
    counts:
        Per-unit number of selected positions.
    positions:
        The selected global triple positions, unit by unit (flat; split by
        ``counts``).
    sums:
        Per-unit correct-label sums under the run's label array.
    """

    shard: int
    rows: np.ndarray
    counts: np.ndarray
    positions: np.ndarray
    sums: np.ndarray

    @property
    def num_units(self) -> int:
        return int(self.counts.shape[0])

    def unit_positions(self) -> list[np.ndarray]:
        """Split :attr:`positions` back into per-unit arrays."""
        return np.split(self.positions, np.cumsum(self.counts)[:-1])


@dataclass(frozen=True)
class CostSummary:
    """Eq. (4) annotation cost of everything a run has drawn so far."""

    entities_identified: int
    triples_annotated: int
    cost_seconds: float

    @property
    def cost_hours(self) -> float:
        return self.cost_seconds / 3600.0


# --------------------------------------------------------------------------- #
# Worker draw core (pure functions of task + attachment)
# --------------------------------------------------------------------------- #
def _second_stage(
    starts: np.ndarray, sizes: np.ndarray, cap: int | None, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cluster second stage: distinct indices into the positions array.

    ``cap=None`` keeps whole clusters (WCS/RCS); otherwise clusters larger
    than ``cap`` are Floyd-subsampled exactly like the serial batch sampler.
    Returns ``(counts, flat_index)``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if starts.shape[0] == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    if cap is None:
        counts = sizes.copy()
        parts = [starts[i] + np.arange(sizes[i], dtype=np.int64) for i in range(starts.shape[0])]
        return counts, np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
    counts = np.minimum(sizes, cap)
    parts: list[np.ndarray | None] = [None] * starts.shape[0]
    large = sizes > cap
    for i in np.flatnonzero(~large):
        parts[i] = starts[i] + np.arange(sizes[i], dtype=np.int64)
    large_indices = np.flatnonzero(large)
    if large_indices.size:
        picks = _floyd_sample_batch(sizes[large_indices], cap, rng)
        chosen = starts[large_indices][:, None] + picks
        for j, i in enumerate(large_indices):
            parts[i] = chosen[j]
    return counts, np.concatenate(parts)


#: Worker-side cache of WOR permutations, keyed per (stream, span): SRS/RCS
#: tasks reuse one fixed permutation across rounds instead of regenerating an
#: O(shard population) array per step.
_PERM_CACHE: dict[tuple, np.ndarray] = {}
_PERM_CACHE_LIMIT = 32


def _wor_permutation(perm_seed: np.random.SeedSequence, span: int) -> np.ndarray:
    key = (perm_seed.entropy, perm_seed.spawn_key, span)
    permutation = _PERM_CACHE.get(key)
    if permutation is None:
        if len(_PERM_CACHE) >= _PERM_CACHE_LIMIT:
            _PERM_CACHE.clear()
        permutation = np.random.default_rng(perm_seed).permutation(span)
        _PERM_CACHE[key] = permutation
    return permutation


def _run_task(task: ShardTask, attached: tuple[np.ndarray, np.ndarray] | None) -> ShardResult:
    started = time.perf_counter()
    # Child span context for this task: observability-only, derived from
    # os.urandom — the numpy streams below never see it.
    task_trace = obs_trace.child_context(task.trace) if task.trace is not None else None
    source = task.source
    view: ShardView | None = None
    rows_explicit = None
    if source.kind == "csr":
        view = ShardView(offsets=source.offsets, positions=source.positions, row_start=0)
    else:
        assert attached is not None, "graph-backed task executed without a CSR attachment"
        offsets_g, positions_g = attached
        if source.kind == "range":
            view = ShardView.from_csr(offsets_g, positions_g, source.lo, source.hi)
        else:  # "rows" — non-contiguous, sampled off the attached index directly
            rows_explicit = np.asarray(source.rows, dtype=np.int64)
    if view is not None:
        starts_all = view.local_offsets()[:-1]
        sizes_all = view.sizes()
        positions = view.positions
        row_base = view.row_start
    else:
        offsets_64 = np.asarray(offsets_g)
        starts_all = offsets_64[rows_explicit].astype(np.int64)
        sizes_all = offsets_64[rows_explicit + 1].astype(np.int64) - starts_all
        positions = positions_g
        row_base = 0

    rng = np.random.default_rng()
    if task.rng_state is not None:
        rng.bit_generator.state = task.rng_state

    design = task.design
    cursor = task.cursor
    num_rows = int(starts_all.shape[0])
    sizes = None
    if design == "fixed":
        local = np.arange(num_rows, dtype=np.int64)
        counts, flat = _second_stage(starts_all, sizes_all, task.cap, rng)
    elif design == "srs":
        assert view is not None
        perm = _wor_permutation(task.perm_seed, view.num_triples)
        chosen = perm[cursor : cursor + task.count]
        cursor += int(chosen.shape[0])
        flat = chosen.astype(np.int64)
        counts = np.ones(chosen.shape[0], dtype=np.int64)
        local = np.full(chosen.shape[0], -1, dtype=np.int64)
        sizes = counts
    elif design == "rcs":
        perm = _wor_permutation(task.perm_seed, num_rows)
        local = perm[cursor : cursor + task.count].astype(np.int64)
        cursor += int(local.shape[0])
        counts, flat = _second_stage(starts_all[local], sizes_all[local], None, rng)
    elif design in ("wcs", "twcs"):
        weights = sizes_all.astype(np.float64)
        weights /= weights.sum()
        local = rng.choice(num_rows, size=task.count, replace=True, p=weights)
        cap = None if design == "wcs" else task.cap
        counts, flat = _second_stage(starts_all[local], sizes_all[local], cap, rng)
    elif design == "tsrcs":
        local = rng.integers(0, num_rows, size=task.count)
        counts, flat = _second_stage(starts_all[local], sizes_all[local], task.cap, rng)
    else:  # pragma: no cover - guarded by SamplingRun
        raise ValueError(f"unknown shard design {design!r}")

    if design == "srs":
        rows = local
    elif rows_explicit is not None:
        rows = rows_explicit[local]
    else:
        rows = row_base + local
    if sizes is None:
        sizes = sizes_all[local] if design != "fixed" else sizes_all
    elapsed = time.perf_counter() - started
    if _task_log.enabled_for("debug"):
        _task_log.debug(
            "shard_task",
            shard=task.index,
            design=design,
            count=int(task.count),
            elapsed=round(elapsed, 6),
            trace_id=task_trace.trace_id if task_trace else None,
            span_id=task_trace.span_id if task_trace else None,
            parent_id=task.trace.span_id if task.trace else None,
        )
    return ShardResult(
        index=task.index,
        rows=np.asarray(rows, dtype=np.int64),
        counts=np.asarray(counts, dtype=np.int64),
        sizes=np.asarray(sizes, dtype=np.int64),
        positions=np.asarray(positions)[flat].astype(np.int64),
        rng_state=rng.bit_generator.state,
        cursor=cursor,
        elapsed=elapsed,
        trace=task_trace,
    )


def _execute_task(task: ShardTask) -> ShardResult:
    """Pool entry point: resolve the worker attachment and run the task."""
    return _run_task(task, _WORKER_ATTACH)


def _unit_label_sums(counts: np.ndarray, positions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-unit correct-label sums via one gather + prefix-sum differences."""
    if counts.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    correct = labels[positions].astype(np.float64)
    prefix = np.concatenate(([0.0], np.cumsum(correct)))
    ends = np.cumsum(counts)
    return prefix[ends] - prefix[ends - counts]


# --------------------------------------------------------------------------- #
# Transports: where shard tasks execute
# --------------------------------------------------------------------------- #
class ShardTransport(ABC):
    """Executes :class:`ShardTask`\\ s somewhere and returns their results.

    Lifecycle: :meth:`bind` is called once with the master's CSR index (and
    optional snapshot directory) before any task runs; :meth:`execute` is
    called once per round with a list of self-contained tasks and must
    return the matching :class:`ShardResult`\\ s **in task order**;
    :meth:`close` releases whatever the transport holds (pools, sockets).

    Contract: a result is a pure function of ``(task, bound CSR index)`` —
    every transport must produce bit-identical results for the same bound
    index and task list, so serial == pool == RPC trajectories hold by
    construction and are enforced by the parity suites.
    """

    #: Stable short name for planner decisions, shard stats and metrics
    #: labels (``"serial"``, ``"pool"``, ``"shm"``, ``"rpc"``).
    kind = "unknown"

    def bind(
        self,
        offsets: np.ndarray,
        positions: np.ndarray,
        *,
        snapshot: str | None = None,
    ) -> None:
        """Attach the transport to the run population's CSR index.

        Each call advances :attr:`bind_generation`; executors record the
        generation they bound and refuse to execute after another executor
        re-binds the transport, so two live executors can never silently
        run tasks against each other's index.
        """
        self._offsets = offsets
        self._positions = positions
        self._snapshot = snapshot
        self.bind_generation = getattr(self, "bind_generation", 0) + 1

    @property
    def default_shards(self) -> int | None:
        """Natural shard count for this transport (worker/node count).

        ``None`` when the transport has no parallelism to size against
        (serial); callers fall back to their own default.  Only a *default*
        — the shard count is part of a run's random-stream identity, so
        callers comparing trajectories must fix it explicitly.
        """
        return None

    @abstractmethod
    def execute(self, tasks: list[ShardTask]) -> list[ShardResult]:
        """Run every task and return results aligned with the input order."""

    def close(self) -> None:
        """Release transport resources; the transport may be re-bound later."""


class SerialTransport(ShardTransport):
    """In-process execution of the sharded plan — the parity reference.

    Identical draws to every other transport, no processes, no sockets; the
    default when an executor is created without ``workers`` or
    ``transport``.
    """

    kind = "serial"

    def execute(self, tasks: list[ShardTask]) -> list[ShardResult]:
        attached = (self._offsets, self._positions)
        return [_run_task(task, attached) for task in tasks]


#: Parked keep-alive pools awaiting adoption, LRU-ordered and keyed by
#: ``ProcessPoolTransport._warm_key()``.  Each entry holds the pool, its
#: ``_ATTACH_REGISTRY`` key, and **strong references to the bound CSR
#: arrays**: pinning the arrays in the entry itself (not only through the
#: fork-mode registry) keeps their ``id()``s unambiguous under every start
#: method — under ``spawn`` there is no registry entry, and without the pin
#: a freed array's id could be reused by a different graph, letting its
#: bind adopt a pool whose workers still hold the old CSR.
_WARM_POOLS: "OrderedDict[tuple, tuple[ProcessPoolExecutor, str | None, tuple]]" = OrderedDict()

#: At most this many pools stay parked; the least-recently-parked is shut
#: down (and its registry attachment dropped) on overflow, so a long-lived
#: process walking many graphs cannot accumulate OS processes and pinned
#: arrays without bound.
_WARM_POOL_LIMIT = 2


def _discard_warm_pool(key: tuple) -> None:
    pool, attach_key, _pinned = _WARM_POOLS.pop(key)
    try:
        pool.shutdown(wait=True)
    except Exception:
        # A parked pool whose worker processes already died (SIGKILL'd
        # children, a broken fork context at interpreter exit) may raise from
        # shutdown; the entry is already unregistered, and one corpse must
        # not stop the remaining pools — or the atexit hook — from cleaning
        # up.
        pass
    if attach_key is not None:
        _ATTACH_REGISTRY.pop(attach_key, None)


def _park_warm_pool(
    key: tuple, pool: ProcessPoolExecutor, attach_key: str | None, pinned: tuple
) -> None:
    _WARM_POOLS[key] = (pool, attach_key, pinned)
    _WARM_POOLS.move_to_end(key)
    while len(_WARM_POOLS) > _WARM_POOL_LIMIT:
        _discard_warm_pool(next(iter(_WARM_POOLS)))


def shutdown_warm_pools() -> None:
    """Shut down every parked keep-alive worker pool (also runs at exit).

    Idempotent: an explicit call (a draining ``repro serve`` daemon, a test's
    teardown) empties the registry, and the ``atexit`` hook re-running over
    the already-empty registry is a no-op.  Pools that fail to shut down are
    discarded anyway — see :func:`_discard_warm_pool`.
    """
    while _WARM_POOLS:
        _discard_warm_pool(next(iter(_WARM_POOLS)))


atexit.register(shutdown_warm_pools)


class ProcessPoolTransport(ShardTransport):
    """Local fork/spawn process-pool execution (the historical ``workers=``).

    Workers attach to the bound CSR index copy-on-write through the module
    registry on ``fork`` platforms, via ``mmap`` when the transport is bound
    with a snapshot directory, or by receiving the arrays once per worker
    under ``spawn``.  The pool is created lazily on the first round and can
    be re-created after :meth:`close`.

    With ``keep_alive=True`` (what the adaptive planner requests),
    :meth:`close` *parks* the live pool in a module registry instead of
    shutting it down, and a later :meth:`bind` to the **same** CSR index
    (same array objects or the same snapshot directory, same worker count)
    adopts it back — so repeated runs over one resident graph pay the fork
    startup exactly once per process.  Binding to a different index always
    tears the pool down first; correctness never depends on adoption.
    """

    kind = "pool"

    def __init__(self, workers: int, *, keep_alive: bool = False) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self.workers = int(workers)
        self.keep_alive = bool(keep_alive)
        self._pool: ProcessPoolExecutor | None = None
        self._attach_key: str | None = None

    @property
    def default_shards(self) -> int | None:
        return self.workers

    def _warm_key(self) -> tuple:
        """Identity of (worker count, attached CSR index) for pool reuse.

        Array ``id()`` is unambiguous here because a parked pool's
        ``_WARM_POOLS`` entry holds strong references to the arrays (in
        every start method) for as long as the key can be looked up.
        """
        if self._snapshot is not None:
            return ("pool", self.workers, "snapshot", self._snapshot)
        return ("pool", self.workers, id(self._offsets), id(self._positions))

    def bind(self, offsets, positions, *, snapshot=None) -> None:
        # A live pool's workers attached to the previously bound index; tear
        # it down (or park it, when keep-alive) so re-binding can never
        # execute tasks against stale arrays.
        self.close()
        super().bind(offsets, positions, snapshot=snapshot)
        if self.keep_alive:
            parked = _WARM_POOLS.pop(self._warm_key(), None)
            if parked is not None:
                self._pool, self._attach_key, _pinned = parked
                obs_metrics.counter("sampling_warm_pool_reuse_total", kind=self.kind).inc()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context("spawn")
            if self._snapshot is not None:
                init_args = ("snapshot", self._snapshot)
            elif context.get_start_method() == "fork":
                self._attach_key = uuid.uuid4().hex
                _ATTACH_REGISTRY[self._attach_key] = (self._offsets, self._positions)
                init_args = ("registry", self._attach_key)
            else:  # pragma: no cover - spawn fallback ships the arrays once
                init_args = (
                    "arrays",
                    (np.asarray(self._offsets), np.asarray(self._positions)),
                )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=init_args,
            )
        return self._pool

    def execute(self, tasks: list[ShardTask]) -> list[ShardResult]:
        pool = self._ensure_pool()
        futures = [pool.submit(_execute_task, task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        bound = getattr(self, "_offsets", None) is not None
        if self._pool is not None and self.keep_alive and bound:
            key = self._warm_key()
            if key not in _WARM_POOLS:
                # Park the pool for the next transport bound to the same
                # index, pinning the bound arrays so the id-based key stays
                # unambiguous for the entry's lifetime.
                _park_warm_pool(
                    key, self._pool, self._attach_key, (self._offsets, self._positions)
                )
                self._pool = None
                self._attach_key = None
                return
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._attach_key is not None:
            _ATTACH_REGISTRY.pop(self._attach_key, None)
            self._attach_key = None


# --------------------------------------------------------------------------- #
# The run: per-shard streams + deterministic master-side merge
# --------------------------------------------------------------------------- #
class SamplingRun:
    """One sharded draw/estimate session over a fixed population.

    Create through :meth:`ParallelSamplingExecutor.run`.  Each
    :meth:`step` fans one round of first/second-stage draws across the
    shards and folds the results — estimator state, Eq. (4) cost masks —
    in shard order on the master, so the outcome is independent of worker
    scheduling (see the module docstring for the full contract).
    """

    def __init__(
        self,
        executor: "ParallelSamplingExecutor",
        design: str,
        label_array: np.ndarray,
        plan: ShardPlan,
        seed,
        second_stage_size: int = 5,
        cost_model: CostModel | None = None,
        segment=None,
        strata: list[np.ndarray] | None = None,
        allocation: str = "proportional",
    ) -> None:
        if design == "twcs-strat" and strata is None:
            raise ValueError("design 'twcs-strat' requires strata row arrays")
        if strata is not None:
            design = "twcs-strat"
        elif design not in PARALLEL_DESIGNS:
            raise ValueError(f"unknown design {design!r}; choose from {PARALLEL_DESIGNS}")
        if second_stage_size < 1:
            raise ValueError("second_stage_size must be at least 1")
        if allocation not in ("proportional", "neyman"):
            raise ValueError(
                f"allocation must be 'proportional' or 'neyman', got {allocation!r}"
            )
        if allocation == "neyman" and design != "twcs-strat":
            raise ValueError("allocation='neyman' requires a stratified run (strata=)")
        self.design = design
        self.allocation = allocation
        self.second_stage_size = second_stage_size
        self.plan = plan
        self._executor = executor
        self._labels = np.asarray(label_array, dtype=bool)
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._segment = segment

        # Build the task sources (one per shard; strata multiply them).
        self._sources: list[ShardSource] = []
        self._task_strata: list[int] = []
        self._stratum_weights: list[float] = []
        self._source_entities = 0
        self._source_triples = 0
        if segment is not None:
            seg_offsets = np.asarray(segment.offsets, dtype=np.int64)
            seg_positions = np.asarray(segment.positions, dtype=np.int64)
            seg_plan = ShardPlan.from_offsets(seg_offsets, plan.num_shards or 1)
            self._row_offsets: list[int] = []
            for shard in range(seg_plan.num_shards):
                lo, hi = seg_plan.row_range(shard)
                base = int(seg_offsets[lo])
                self._sources.append(
                    ShardSource(
                        kind="csr",
                        offsets=seg_offsets[lo : hi + 1] - base,
                        positions=seg_positions[base : int(seg_offsets[hi])],
                    )
                )
                self._row_offsets.append(lo)
                self._task_strata.append(0)
            self._source_entities = seg_plan.num_entities
            self._source_triples = seg_plan.num_triples
        elif strata is not None:
            offsets = executor.offsets
            for stratum_index, stratum_rows in enumerate(strata):
                stratum_rows = np.asarray(stratum_rows, dtype=np.int64)
                stratum_triples = int(
                    (offsets[stratum_rows + 1] - offsets[stratum_rows]).sum()
                )
                self._stratum_weights.append(float(stratum_triples))
                for _, indices in plan.partition_rows(stratum_rows):
                    self._sources.append(
                        ShardSource(kind="rows", rows=stratum_rows[indices])
                    )
                    self._task_strata.append(stratum_index)
                self._source_entities += int(stratum_rows.shape[0])
                self._source_triples += stratum_triples
            total_weight = sum(self._stratum_weights)
            if total_weight > 0:
                self._stratum_weights = [w / total_weight for w in self._stratum_weights]
        else:
            for shard in range(plan.num_shards):
                lo, hi = plan.row_range(shard)
                self._sources.append(ShardSource(kind="range", lo=lo, hi=hi))
                self._task_strata.append(0)
            self._source_entities = plan.num_entities
            self._source_triples = plan.num_triples

        num_tasks = len(self._sources)
        # Per-task static draw weights and without-replacement limits.
        self._weights = np.zeros(num_tasks, dtype=np.float64)
        self._limits = np.zeros(num_tasks, dtype=np.int64)
        offsets = executor.offsets
        for index, source in enumerate(self._sources):
            if source.kind == "range":
                entities = source.hi - source.lo
                triples = int(offsets[source.hi]) - int(offsets[source.lo])
            elif source.kind == "rows":
                entities = int(source.rows.shape[0])
                triples = int((offsets[source.rows + 1] - offsets[source.rows]).sum())
            else:
                entities = int(source.offsets.shape[0]) - 1
                triples = int(source.positions.shape[0])
            self._weights[index] = entities if design in ("rcs", "tsrcs") else triples
            self._limits[index] = triples if design == "srs" else entities

        # Per-shard-task random streams: root.spawn once, one stream (plus a
        # fixed permutation seed for the WOR designs) per task; the stream
        # state is threaded through the task rounds by the master.
        root = np.random.SeedSequence(seed)
        children = root.spawn(num_tasks) if num_tasks else []
        self._rng_states: list[dict | None] = []
        self._perm_seeds: list[np.random.SeedSequence | None] = []
        for child in children:
            stream_seq, perm_seq = child.spawn(2)
            self._rng_states.append(np.random.default_rng(stream_seq).bit_generator.state)
            self._perm_seeds.append(perm_seq if design in _WOR_DESIGNS else None)
        self._cursors = np.zeros(num_tasks, dtype=np.int64)

        # Master-side estimator + cost state, folded in shard order.
        self._accumulators = [RunningMean() for _ in range(num_tasks)]
        self._task_triples = np.zeros(num_tasks, dtype=np.int64)
        self._num_correct = 0
        self._num_annotated = 0
        # Cost-mask coordinate spaces: segment runs key entities by segment
        # cluster index, graph-backed runs by *global* entity row (strata may
        # cover an arbitrary row subset, so the mask spans the whole graph).
        if segment is not None:
            self._row_mask = np.zeros(self._source_entities, dtype=bool)
        else:
            self._row_mask = np.zeros(int(executor.offsets.shape[0]) - 1, dtype=bool)
        self._position_mask = np.zeros(self._labels.shape[0], dtype=bool)
        self._rows_of_position: np.ndarray | None = None
        self._total_units = 0
        self._shard_units = np.zeros(num_tasks, dtype=np.int64)
        self._shard_seconds = np.zeros(num_tasks, dtype=np.float64)
        self._shard_tasks = np.zeros(num_tasks, dtype=np.int64)
        self._rounds = 0

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def _allocate(self, count: int) -> np.ndarray:
        num_tasks = len(self._sources)
        if num_tasks == 0 or count <= 0:
            return np.zeros(num_tasks, dtype=np.int64)
        if self.design in _WOR_DESIGNS:
            remaining = (self._limits - self._cursors).astype(np.float64)
            return np.minimum(
                largest_remainder(remaining, count), (self._limits - self._cursors)
            )
        if self.design == "twcs-strat":
            per_stratum = self._stratum_allocation(count)
            allocation = np.zeros(num_tasks, dtype=np.int64)
            for stratum_index, stratum_count in enumerate(per_stratum):
                task_ids = [
                    i for i, s in enumerate(self._task_strata) if s == stratum_index
                ]
                inner = largest_remainder(self._weights[task_ids], stratum_count)
                for task_id, task_count in zip(task_ids, inner):
                    allocation[task_id] = task_count
            return allocation
        return largest_remainder(self._weights, count)

    def _stratum_allocation(self, count: int) -> list[int]:
        """Per-stratum draw counts under the run's allocation rule.

        Mirrors :meth:`StratifiedTWCSDesign._allocate` exactly, but computes
        each stratum's observed cluster-accuracy spread by merging that
        stratum's *shard* accumulators — so the Neyman decision is identical
        on every transport and worker count.  Falls back to proportional
        allocation until every stratum has at least two annotated draws.
        """
        if self.allocation == "neyman":
            stds: list[float] = []
            for stratum_index in range(len(self._stratum_weights)):
                merged = RunningMean()
                for task_id, task_stratum in enumerate(self._task_strata):
                    if task_stratum == stratum_index:
                        merged.merge(self._accumulators[task_id])
                if merged.count >= 2 and not math.isinf(merged.std_error):
                    stds.append(merged.std_error * math.sqrt(merged.count))
                else:
                    break
            else:
                return neyman_allocation(self._stratum_weights, stds, count)
        return proportional_allocation(self._stratum_weights, count)

    @property
    def exhausted(self) -> bool:
        """Whether no further units can be drawn (WOR designs only)."""
        if not self._sources:
            return True
        if self.design in _WOR_DESIGNS:
            return bool(np.all(self._cursors >= self._limits))
        return self._source_triples == 0

    # ------------------------------------------------------------------ #
    # Drawing
    # ------------------------------------------------------------------ #
    def step(self, count: int) -> list[ShardDraw]:
        """Draw one round of ``count`` units across the shards and fold them in."""
        if count < 0:
            raise ValueError("count must be non-negative")
        with obs_trace.span(
            "sampling.round", design=self.design, round=self._rounds, requested=count
        ) as round_span:
            allocation = self._allocate(count)
            if _log.enabled_for("debug"):
                _log.debug(
                    "allocation",
                    design=self.design,
                    round=self._rounds,
                    requested=count,
                    allocation=[int(value) for value in allocation],
                )
            tasks = []
            for index in np.flatnonzero(allocation):
                tasks.append(
                    ShardTask(
                        index=int(index),
                        design="twcs" if self.design == "twcs-strat" else self.design,
                        source=self._sources[index],
                        count=int(allocation[index]),
                        cap=self.second_stage_size,
                        rng_state=self._rng_states[index],
                        perm_seed=self._perm_seeds[index],
                        cursor=int(self._cursors[index]),
                        trace=round_span.context,
                    )
                )
            results = self._executor._map(tasks)
            draws: list[ShardDraw] = []
            round_units = 0
            for result in results:
                index = result.index
                self._rng_states[index] = result.rng_state
                self._cursors[index] = result.cursor
                self._shard_seconds[index] += result.elapsed
                self._shard_tasks[index] += 1
                obs_metrics.histogram(
                    "sampling_shard_draw_seconds", shard=index
                ).observe(result.elapsed)
                sums = _unit_label_sums(result.counts, result.positions, self._labels)
                rows = result.rows
                if self._segment is not None:
                    # Shard-local cluster indices -> segment cluster indices.
                    rows = rows + self._row_offsets[index]
                self._fold(index, result, sums, rows)
                round_units += int(result.counts.shape[0])
                draws.append(
                    ShardDraw(
                        shard=index,
                        rows=rows,
                        counts=result.counts,
                        positions=result.positions,
                        sums=sums,
                    )
                )
            self._rounds += 1
            obs_metrics.counter("sampling_rounds_total").inc()
            obs_metrics.counter("sampling_units_total").inc(round_units)
        return draws

    def _fold(
        self, index: int, result: ShardResult, sums: np.ndarray, rows: np.ndarray
    ) -> None:
        counts = result.counts
        num_units = int(counts.shape[0])
        if num_units == 0:
            return
        design = self.design
        if design == "srs":
            self._num_correct += int(sums.sum())
            self._num_annotated += int(counts.sum())
        else:
            if design in ("wcs", "twcs", "twcs-strat"):
                values = sums / counts
            elif design == "rcs":
                values = (self._source_entities / self._source_triples) * sums
            else:  # tsrcs
                scale = self._source_entities / self._source_triples
                values = scale * result.sizes * (sums / counts)
            self._accumulators[index].add_many(values)
        self._task_triples[index] += int(counts.sum())
        self._total_units += num_units
        self._shard_units[index] += num_units
        # Eq. (4) cost masks: shards own disjoint clusters and positions, so
        # boolean masks make the distinct-entity/-triple counts exact.
        self._position_mask[result.positions] = True
        if design == "srs":
            self._row_mask[self._resolve_srs_rows(result.positions)] = True
        else:
            self._row_mask[rows] = True

    def _resolve_srs_rows(self, positions: np.ndarray) -> np.ndarray:
        """Subject rows of SRS-drawn triples (annotators group by subject)."""
        if self._rows_of_position is None:
            offsets = self._executor.offsets
            rows_of = np.empty(int(offsets[-1]), dtype=np.int64)
            rows_of[np.asarray(self._executor.positions, dtype=np.int64)] = np.repeat(
                np.arange(offsets.shape[0] - 1, dtype=np.int64), np.diff(offsets)
            )
            self._rows_of_position = rows_of
        return self._rows_of_position[positions]

    # ------------------------------------------------------------------ #
    # Read-outs
    # ------------------------------------------------------------------ #
    def estimate(self) -> Estimate:
        """Current merged estimate (per-shard accumulators folded in shard order)."""
        if self.design == "srs":
            n = self._num_annotated
            if n == 0:
                return Estimate(value=0.0, std_error=float("inf"), num_units=0, num_triples=0)
            p_hat = self._num_correct / n
            if n < 2:
                std_error = float("inf")
            else:
                std_error = float(np.sqrt(p_hat * (1.0 - p_hat) / n))
            return Estimate(value=p_hat, std_error=std_error, num_units=n, num_triples=n)
        if self.design == "twcs-strat":
            return self._stratified_estimate()
        merged = RunningMean()
        for accumulator in self._accumulators:
            merged.merge(accumulator)
        return Estimate(
            value=merged.mean,
            std_error=merged.std_error,
            num_units=merged.count,
            num_triples=int(self._task_triples.sum()),
        )

    def _stratified_estimate(self) -> Estimate:
        value = 0.0
        variance = 0.0
        num_units = 0
        num_triples = 0
        undetermined = False
        for stratum_index, weight in enumerate(self._stratum_weights):
            merged = RunningMean()
            stratum_triples = 0
            for task_id, task_stratum in enumerate(self._task_strata):
                if task_stratum == stratum_index:
                    merged.merge(self._accumulators[task_id])
                    stratum_triples += int(self._task_triples[task_id])
            num_units += merged.count
            num_triples += stratum_triples
            value += weight * merged.mean
            if math.isinf(merged.std_error):
                undetermined = True
            else:
                variance += weight * weight * merged.std_error**2
        std_error = float("inf") if undetermined else float(np.sqrt(variance))
        return Estimate(
            value=value, std_error=std_error, num_units=num_units, num_triples=num_triples
        )

    def cost_summary(self) -> CostSummary:
        """Eq. (4) cost of all draws so far, computed from the exact masks."""
        entities = int(self._row_mask.sum())
        triples = int(self._position_mask.sum())
        seconds = (
            self._cost_model.identification_cost * entities
            + self._cost_model.validation_cost * triples
        )
        return CostSummary(
            entities_identified=entities, triples_annotated=triples, cost_seconds=seconds
        )

    def shard_stats(self) -> list[dict]:
        """Per-shard draw statistics — the single source of truth for them.

        Benchmarks (``BENCH_parallel.json``), exported metrics snapshots and
        the adaptive transport planner's calibration all read this one
        structure: per shard, the units and triples drawn, the number of
        executed tasks, the cumulative worker-side draw seconds (plus the
        mean per task), and the transport kind that executed the shard —
        i.e. what the planner actually chose for the run.
        """
        stats = []
        transport_kind = self._executor.transport.kind
        for index in range(len(self._sources)):
            tasks = int(self._shard_tasks[index])
            seconds = float(self._shard_seconds[index])
            stats.append(
                {
                    "shard": index,
                    "units": int(self._shard_units[index]),
                    "triples": int(self._task_triples[index]),
                    "tasks": tasks,
                    "draw_seconds": seconds,
                    "mean_task_seconds": seconds / tasks if tasks else 0.0,
                    "transport": transport_kind,
                }
            )
        return stats

    @property
    def planner_decision(self):
        """The planner decision that configured this run's executor (or None)."""
        return self._executor.planner_decision

    @property
    def num_units(self) -> int:
        """Units drawn so far across all shards."""
        return self._total_units

    @property
    def rounds(self) -> int:
        """Number of :meth:`step` rounds executed."""
        return self._rounds

    # ------------------------------------------------------------------ #
    # Adaptive loop (mirrors the StaticEvaluator stopping rule)
    # ------------------------------------------------------------------ #
    def drive(self, config) -> tuple[Estimate, int]:
        """Draw batches until the MoE target holds; return (estimate, rounds)."""
        iterations = 0
        while True:
            estimate = self.estimate()
            enough = estimate.num_units >= config.min_units
            if enough and estimate.satisfies(config.moe_target, config.confidence_level):
                break
            if config.max_units is not None and estimate.num_units >= config.max_units:
                break
            before = self._total_units
            self.step(config.batch_size)
            if self._total_units == before:
                break
            iterations += 1
        return self.estimate(), iterations


# --------------------------------------------------------------------------- #
# The executor: pool + attachment factory for runs
# --------------------------------------------------------------------------- #
class ParallelSamplingExecutor:
    """Transport-backed front end for sharded position-surface sampling.

    Parameters
    ----------
    graph:
        The knowledge graph whose CSR index draws run on.  Any backend with
        a CSR index works (columnar, delta view, in-memory cached CSR).
        May be omitted when ``snapshot`` is given.
    workers:
        Convenience shorthand when no ``transport`` is given: ``None`` (or
        0) selects a :class:`SerialTransport` — the *serial position
        surface* of the sharded plan and the parity reference; ``>= 1``
        selects a :class:`ProcessPoolTransport` with that many worker
        processes.
    num_shards:
        Default shard count for plans built by this executor (defaults to
        ``max(workers, 1)``).
    snapshot:
        Optional snapshot *directory* path: pool workers attach to the CSR
        columns memory-mapped instead of inheriting them.
    transport:
        An explicit :class:`ShardTransport` (e.g. a
        :class:`~repro.sampling.rpc.SocketRPCTransport` over remote nodes).
        The executor binds it to the population's CSR index and owns it:
        :meth:`close` closes the transport.  Mutually exclusive with
        ``workers``.
    planner_decision:
        Optional :class:`~repro.sampling.planner.PlannerDecision` recorded
        when the adaptive planner chose this executor's configuration;
        surfaced through :meth:`SamplingRun.shard_stats` and report
        printing.  Never feeds the draw streams.
    """

    def __init__(
        self,
        graph=None,
        *,
        workers: int | None = None,
        num_shards: int | None = None,
        snapshot: str | Path | None = None,
        transport: ShardTransport | None = None,
        planner_decision=None,
    ) -> None:
        if graph is None and snapshot is None:
            raise ValueError("either graph or snapshot is required")
        if transport is not None and workers:
            raise ValueError("pass either transport= or workers=, not both")
        if snapshot is not None and graph is None:
            offsets, positions = _load_snapshot_csr(str(snapshot))
        else:
            csr = graph.backend.csr_arrays()
            if csr is None:
                raise ValueError(
                    f"backend {type(graph.backend).__name__} exposes no CSR index"
                )
            offsets, positions = csr
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.positions = positions
        self.workers = int(workers) if workers else None
        self.snapshot = str(snapshot) if snapshot is not None else None
        if transport is None:
            transport = (
                ProcessPoolTransport(self.workers)
                if self.workers is not None
                else SerialTransport()
            )
        self.transport = transport
        self.planner_decision = planner_decision
        self.transport.bind(self.offsets, self.positions, snapshot=self.snapshot)
        self._bind_generation = transport.bind_generation
        if num_shards is not None:
            self.num_shards = num_shards
        else:
            self.num_shards = transport.default_shards or max(self.workers or 1, 1)
        self._plan: ShardPlan | None = None

    def _map(self, tasks: list[ShardTask]) -> list[ShardResult]:
        """Execute tasks, returning results in task order (not completion order)."""
        if not tasks:
            return []
        if self.transport.bind_generation != self._bind_generation:
            raise RuntimeError(
                "transport was re-bound by another executor; a ShardTransport "
                "serves one live executor at a time"
            )
        return self.transport.execute(tasks)

    def close(self) -> None:
        """Close the transport (worker pools, node connections)."""
        self.transport.close()

    def __enter__(self) -> "ParallelSamplingExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Plans and runs
    # ------------------------------------------------------------------ #
    def plan(self, num_shards: int | None = None) -> ShardPlan:
        """The executor's shard plan (cached for the default shard count)."""
        if num_shards is not None and num_shards != self.num_shards:
            return ShardPlan.from_offsets(self.offsets, num_shards)
        if self._plan is None:
            self._plan = ShardPlan.from_offsets(self.offsets, self.num_shards)
        return self._plan

    def run(
        self,
        design: str,
        label_array: np.ndarray,
        *,
        seed=None,
        second_stage_size: int = 5,
        num_shards: int | None = None,
        plan: ShardPlan | None = None,
        cost_model: CostModel | None = None,
        segment=None,
        strata: list[np.ndarray] | None = None,
        allocation: str = "proportional",
    ) -> SamplingRun:
        """Start a sharded draw/estimate session (see :class:`SamplingRun`)."""
        if plan is None:
            plan = self.plan(num_shards)
        return SamplingRun(
            self,
            design,
            label_array,
            plan,
            seed,
            second_stage_size=second_stage_size,
            cost_model=cost_model,
            segment=segment,
            strata=strata,
            allocation=allocation,
        )

    def sample_rows(
        self,
        rows: np.ndarray,
        cap: int,
        seed,
        plan: ShardPlan | None = None,
    ) -> list[np.ndarray]:
        """Second-stage sample of up to ``cap`` positions from each given row.

        The sharded, fan-out twin of
        :meth:`~repro.kg.graph.KnowledgeGraph.sample_cluster_positions_batch`:
        rows are partitioned by the plan, each shard's clusters are Floyd-
        subsampled under that shard's spawned stream, and the batches return
        in input order — deterministic for a given ``(plan, seed)``
        regardless of worker count or scheduling.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.shape[0] == 0:
            return []
        if plan is None:
            plan = self.plan()
        parts = plan.partition_rows(rows)
        children = np.random.SeedSequence(seed).spawn(plan.num_shards)
        tasks = []
        for shard, indices in parts:
            tasks.append(
                ShardTask(
                    index=shard,
                    design="fixed",
                    source=ShardSource(kind="rows", rows=rows[indices]),
                    count=int(indices.shape[0]),
                    cap=cap,
                    rng_state=np.random.default_rng(children[shard]).bit_generator.state,
                    perm_seed=None,
                    cursor=0,
                )
            )
        results = self._map(tasks)
        out: list[np.ndarray | None] = [None] * rows.shape[0]
        for (_, indices), result in zip(parts, results):
            units = np.split(result.positions, np.cumsum(result.counts)[:-1])
            for slot, unit in zip(indices, units):
                out[int(slot)] = unit
        return out  # type: ignore[return-value]

    @staticmethod
    def default_workers() -> int:
        """A sensible worker count for this machine (CPUs, capped at 8)."""
        return max(1, min(os.cpu_count() or 1, 8))
