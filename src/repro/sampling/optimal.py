"""Expected annotation cost and the optimal second-stage size ``m``.

Implements the cost analyses of Section 5:

* :func:`expected_srs_cost_seconds` — objective (6): the expected cost of an
  SRS sample of ``n_s`` triples, which charges ``c1`` per *distinct* entity the
  sample happens to touch (``E[n_c] = Σ_i (1 - (1 - M_i/M)^{n_s})``) plus
  ``c2`` per triple;
* :func:`expected_twcs_cost_seconds` — the upper-bound objective (11):
  ``n·c1 + n·m·c2`` for ``n`` cluster draws with second-stage size ``m``;
* :func:`optimal_second_stage_size` — minimises objective (12),
  ``V(m)·z²/ε² · (c1 + m·c2)``, by direct search over a discrete range of
  ``m``, exactly as the paper suggests (no closed form exists).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.cost.model import CostModel
from repro.sampling.variance import srs_variance, twcs_v_of_m
from repro.stats.ci import normal_critical_value

__all__ = [
    "expected_srs_cost_seconds",
    "expected_twcs_cost_seconds",
    "required_srs_sample_size",
    "required_twcs_cluster_draws",
    "OptimalSecondStage",
    "optimal_second_stage_size",
]


def expected_srs_cost_seconds(
    cluster_sizes: Sequence[int], num_sampled_triples: int, cost_model: CostModel
) -> float:
    """Objective (6): expected annotation cost of an SRS sample of given size."""
    if num_sampled_triples < 0:
        raise ValueError("num_sampled_triples must be non-negative")
    sizes = np.asarray(cluster_sizes, dtype=float)
    if sizes.size == 0:
        raise ValueError("at least one cluster is required")
    total = sizes.sum()
    expected_entities = float(np.sum(1.0 - np.power(1.0 - sizes / total, num_sampled_triples)))
    return (
        expected_entities * cost_model.identification_cost
        + num_sampled_triples * cost_model.validation_cost
    )


def expected_twcs_cost_seconds(
    num_cluster_draws: int, second_stage_size: int, cost_model: CostModel
) -> float:
    """Objective (11): upper-bound cost ``n·c1 + n·m·c2`` of a TWCS sample."""
    if num_cluster_draws < 0:
        raise ValueError("num_cluster_draws must be non-negative")
    return num_cluster_draws * cost_model.per_cluster_cost_upper_bound(second_stage_size)


def required_srs_sample_size(
    accuracy_guess: float, moe_target: float, confidence_level: float
) -> int:
    """The SRS sample size ``n_s = µ(1-µ) z² / ε²`` from Section 5.1."""
    z = normal_critical_value(confidence_level)
    variance = srs_variance(accuracy_guess)
    return max(1, int(np.ceil(variance * z * z / (moe_target * moe_target))))


def required_twcs_cluster_draws(
    cluster_sizes: Sequence[int],
    cluster_accuracies: Sequence[float],
    second_stage_size: int,
    moe_target: float,
    confidence_level: float,
) -> int:
    """First-stage draws needed so the MoE constraint holds: ``n = V(m) z² / ε²``."""
    if moe_target <= 0:
        raise ValueError("moe_target must be positive")
    z = normal_critical_value(confidence_level)
    v_of_m = twcs_v_of_m(cluster_sizes, cluster_accuracies, second_stage_size)
    return max(1, int(np.ceil(v_of_m * z * z / (moe_target * moe_target))))


@dataclass(frozen=True)
class OptimalSecondStage:
    """Result of the optimal-m search."""

    second_stage_size: int
    num_cluster_draws: int
    expected_cost_seconds: float
    cost_by_m: dict[int, float]

    @property
    def expected_cost_hours(self) -> float:
        """Expected cost in hours at the optimum."""
        return self.expected_cost_seconds / 3600.0


def optimal_second_stage_size(
    cluster_sizes: Sequence[int],
    cluster_accuracies: Sequence[float],
    cost_model: CostModel,
    moe_target: float = 0.05,
    confidence_level: float = 0.95,
    max_second_stage_size: int = 30,
) -> OptimalSecondStage:
    """Minimise objective (12) by direct search over ``m``.

    Parameters
    ----------
    cluster_sizes, cluster_accuracies:
        Population (or pilot-estimated) cluster sizes and accuracies.
    cost_model:
        The ``(c1, c2)`` annotation cost parameters.
    moe_target, confidence_level:
        The quality requirement that fixes the number of first-stage draws for
        each candidate ``m``.
    max_second_stage_size:
        Largest ``m`` considered in the search.
    """
    if max_second_stage_size < 1:
        raise ValueError("max_second_stage_size must be at least 1")
    z = normal_critical_value(confidence_level)
    cost_by_m: dict[int, float] = {}
    best_m = 1
    best_cost = float("inf")
    best_draws = 1
    for m in range(1, max_second_stage_size + 1):
        v_of_m = twcs_v_of_m(cluster_sizes, cluster_accuracies, m)
        draws = max(1, int(np.ceil(v_of_m * z * z / (moe_target * moe_target))))
        cost = expected_twcs_cost_seconds(draws, m, cost_model)
        cost_by_m[m] = cost
        if cost < best_cost:
            best_cost = cost
            best_m = m
            best_draws = draws
    return OptimalSecondStage(
        second_stage_size=best_m,
        num_cluster_draws=best_draws,
        expected_cost_seconds=best_cost,
        cost_by_m=cost_by_m,
    )
