"""Schema'd binary wire codec for the RPC shard transport.

The first RPC transport shipped pickled frames — fine on a trusted loopback,
unacceptable on a real cluster where a stray or hostile peer could feed the
deserializer arbitrary object graphs.  This module replaces pickle with a
small, versioned, *closed* codec: every value on the wire is one of a fixed
set of tagged types, decoded by explicit readers that validate lengths,
dtypes and field types as they go.  Decoding never constructs anything
outside this set, so a malformed or malicious frame can produce exactly one
outcome: :class:`WireError`.

Frame layout (everything big-endian)::

    magic   2 bytes   b"RW"
    version 1 byte    WIRE_VERSION
    flags   1 byte    reserved, must be 0
    length  8 bytes   payload byte count
    crc32   4 bytes   zlib.crc32 of the payload
    payload N bytes   one tagged value

The CRC makes corruption detection deterministic: *any* byte flip in a frame
— header or payload — fails the magic/version/length/CRC checks before a
single value is decoded, which is what lets the fuzz suite assert
``decode(mutate(encode(x)))`` always raises :class:`WireError`.

Value encoding is one tag byte followed by a tag-specific body:

====  =======================================================================
tag   body
====  =======================================================================
``0`` ``None`` (empty body)
``1`` ``True`` / ``2`` ``False``
``3`` int64 (8 bytes, signed)
``4`` big int: sign byte, u32 magnitude length, magnitude bytes
``5`` float64 (8 bytes)
``6`` str: u32 length, UTF-8 bytes
``7`` bytes: u64 length, raw bytes
``8`` list / ``9`` tuple: u32 count, then each element
``10`` dict: u32 count, then (str key, value) pairs — keys must be ``str``
``11`` ndarray: dtype str (u8 length), ndim (u8), shape (u64 each),
       u64 byte length, raw C-order bytes.  Dtypes are restricted to
       bool/int/uint/float kinds ≤ 8 bytes — never object arrays.
``12`` :class:`numpy.random.SeedSequence`: entropy, spawn_key, pool_size,
       n_children_spawned (each a tagged value)
``13`` :class:`~repro.sampling.parallel.ShardTask` (8 tagged fields)
``14`` :class:`~repro.sampling.parallel.ShardResult` (8 tagged fields)
``15`` :class:`~repro.sampling.parallel.ShardSource` (6 tagged fields)
``16`` :class:`~repro.obs.trace.TraceContext` (trace_id, span_id strings)
``17`` traced ShardTask: the 8 fields of tag ``13`` + a TraceContext
``18`` traced ShardResult: the 8 fields of tag ``14`` + a TraceContext
``19`` :class:`~repro.kg.triple.Triple` (subject, predicate, object strings +
       is_entity_object bool)
``20`` :class:`~repro.sampling.base.Estimate` (value, std_error, num_units,
       num_triples)
``21`` :class:`~repro.core.result.EvaluationReport` (a tagged Estimate + the
       8 scalar report fields)
``22`` :class:`~repro.evolving.monitor.MonitorRecord` (7 scalar fields)
====  =======================================================================

Tags ``16``–``18`` are the observability extension: a task or result whose
``trace`` field is ``None`` still encodes under the legacy tags ``13``/``14``
— **byte-identical** to the pre-trace protocol — so tracing-off peers
interoperate unchanged, and a pre-trace peer receiving a traced frame fails
with a typed ``unknown wire tag`` :class:`WireError`, never a hang.

Tags ``19``–``22`` are the ``repro serve`` extension: update triples travel
from clients to the daemon, and cached estimates (reports, monitor records)
travel back.  Like the trace tags they are a pure suffix — every value the
worker protocol exchanges encodes byte-identically to before, so serve-aware
and worker-only peers interoperate on the shared frames, and a pre-serve
peer fed a serve frame fails with the typed ``unknown wire tag`` error.

Generator states (``Generator.bit_generator.state``) need no tag of their
own: they are plain dicts of strs, ints (including the 128-bit PCG64 state
words, carried by the big-int tag) and nested dicts, and round-trip through
the container tags bit-exactly.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.core.result import EvaluationReport
from repro.evolving.monitor import MonitorRecord
from repro.kg.triple import Triple
from repro.obs.trace import TraceContext
from repro.sampling.base import Estimate
from repro.sampling.parallel import ShardResult, ShardSource, ShardTask

__all__ = [
    "WIRE_VERSION",
    "MAGIC",
    "HEADER_SIZE",
    "WireError",
    "dumps",
    "loads",
    "encode_frame",
    "decode_frame",
    "parse_header",
    "check_payload",
]

WIRE_VERSION = 1
MAGIC = b"RW"
_HEADER = struct.Struct(">2sBBQI")
HEADER_SIZE = _HEADER.size

_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_BIGINT = 4
_T_FLOAT = 5
_T_STR = 6
_T_BYTES = 7
_T_LIST = 8
_T_TUPLE = 9
_T_DICT = 10
_T_NDARRAY = 11
_T_SEEDSEQ = 12
_T_TASK = 13
_T_RESULT = 14
_T_SOURCE = 15
_T_TRACECTX = 16
_T_TASK_TRACED = 17
_T_RESULT_TRACED = 18
_T_TRIPLE = 19
_T_ESTIMATE = 20
_T_REPORT = 21
_T_MONITOR_RECORD = 22

_I64 = struct.Struct(">q")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1
#: Nesting bound: real messages are ~4 levels deep; crafted frames don't get
#: to wind the decoder's stack arbitrarily far.
_MAX_DEPTH = 32
_MAX_NDIM = 4
_MAX_BIGINT_BYTES = 1 << 20
#: Array dtype kinds allowed on the wire (never object/void/str kinds).
_ARRAY_KINDS = frozenset("biuf")


class WireError(RuntimeError):
    """A frame or value failed to encode or decode under the wire schema."""


# --------------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------------- #
def _encode_int(value: int, out: bytearray) -> None:
    if _I64_MIN <= value <= _I64_MAX:
        out.append(_T_INT)
        out += _I64.pack(value)
        return
    out.append(_T_BIGINT)
    magnitude = abs(value)
    body = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
    if len(body) > _MAX_BIGINT_BYTES:
        raise WireError(f"integer of {len(body)} bytes exceeds the wire limit")
    out.append(1 if value < 0 else 0)
    out += _U32.pack(len(body))
    out += body


def _encode_str(value: str, out: bytearray) -> None:
    data = value.encode("utf-8")
    out.append(_T_STR)
    out += _U32.pack(len(data))
    out += data


def _encode_array(array: np.ndarray, out: bytearray) -> None:
    if array.dtype.kind not in _ARRAY_KINDS or array.dtype.itemsize > 8:
        raise WireError(f"dtype {array.dtype} is not allowed on the wire")
    if array.ndim > _MAX_NDIM:
        raise WireError(f"{array.ndim}-dimensional arrays are not allowed on the wire")
    array = np.ascontiguousarray(array)
    dtype_str = array.dtype.str.encode("ascii")
    data = array.tobytes()
    out.append(_T_NDARRAY)
    out.append(len(dtype_str))
    out += dtype_str
    out.append(array.ndim)
    for dim in array.shape:
        out += _U64.pack(dim)
    out += _U64.pack(len(data))
    out += data


def _encode(value, out: bytearray, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise WireError("value nests deeper than the wire limit")
    if value is None:
        out.append(_T_NONE)
    elif isinstance(value, (bool, np.bool_)):
        out.append(_T_TRUE if value else _T_FALSE)
    elif isinstance(value, (int, np.integer)):
        _encode_int(int(value), out)
    elif isinstance(value, (float, np.floating)):
        out.append(_T_FLOAT)
        out += _F64.pack(float(value))
    elif isinstance(value, str):
        _encode_str(value, out)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(_T_BYTES)
        out += _U64.pack(len(data))
        out += data
    elif isinstance(value, np.ndarray):
        _encode_array(value, out)
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST if isinstance(value, list) else _T_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _encode(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(f"dict keys on the wire must be str, got {type(key).__name__}")
            data = key.encode("utf-8")
            out += _U32.pack(len(data))
            out += data
            _encode(item, out, depth + 1)
    elif isinstance(value, np.random.SeedSequence):
        out.append(_T_SEEDSEQ)
        _encode(value.entropy, out, depth + 1)
        _encode(tuple(value.spawn_key), out, depth + 1)
        _encode(int(value.pool_size), out, depth + 1)
        _encode(int(value.n_children_spawned), out, depth + 1)
    elif isinstance(value, ShardTask):
        # trace=None stays on the legacy tag, byte-identical to the
        # pre-trace protocol; only traced tasks use the extension tag.
        out.append(_T_TASK if value.trace is None else _T_TASK_TRACED)
        fields = [
            value.index,
            value.design,
            value.source,
            value.count,
            value.cap,
            value.rng_state,
            value.perm_seed,
            value.cursor,
        ]
        if value.trace is not None:
            fields.append(value.trace)
        for field in fields:
            _encode(field, out, depth + 1)
    elif isinstance(value, ShardResult):
        out.append(_T_RESULT if value.trace is None else _T_RESULT_TRACED)
        fields = [
            value.index,
            value.rows,
            value.counts,
            value.sizes,
            value.positions,
            value.rng_state,
            value.cursor,
            value.elapsed,
        ]
        if value.trace is not None:
            fields.append(value.trace)
        for field in fields:
            _encode(field, out, depth + 1)
    elif isinstance(value, ShardSource):
        out.append(_T_SOURCE)
        for field in (value.kind, value.lo, value.hi, value.rows, value.offsets, value.positions):
            _encode(field, out, depth + 1)
    elif isinstance(value, TraceContext):
        out.append(_T_TRACECTX)
        _encode_str(value.trace_id, out)
        _encode_str(value.span_id, out)
    elif isinstance(value, Triple):
        out.append(_T_TRIPLE)
        _encode_str(value.subject, out)
        _encode_str(value.predicate, out)
        _encode_str(value.obj, out)
        out.append(_T_TRUE if value.is_entity_object else _T_FALSE)
    elif isinstance(value, Estimate):
        out.append(_T_ESTIMATE)
        for field in (
            float(value.value),
            float(value.std_error),
            int(value.num_units),
            int(value.num_triples),
        ):
            _encode(field, out, depth + 1)
    elif isinstance(value, EvaluationReport):
        out.append(_T_REPORT)
        for field in (
            value.estimate,
            float(value.confidence_level),
            float(value.moe_target),
            bool(value.satisfied),
            int(value.iterations),
            int(value.num_units),
            int(value.num_triples_annotated),
            int(value.num_entities_identified),
            float(value.annotation_cost_seconds),
        ):
            _encode(field, out, depth + 1)
    elif isinstance(value, MonitorRecord):
        out.append(_T_MONITOR_RECORD)
        for field in (
            int(value.batch_index),
            value.batch_id,
            float(value.estimated_accuracy),
            float(value.margin_of_error),
            float(value.true_accuracy),
            float(value.incremental_cost_hours),
            float(value.cumulative_cost_hours),
        ):
            _encode(field, out, depth + 1)
    else:
        raise WireError(f"type {type(value).__name__} is not allowed on the wire")


def dumps(value) -> bytes:
    """Encode one value to its tagged byte form (payload only, no frame)."""
    out = bytearray()
    _encode(value, out, 0)
    return bytes(out)


# --------------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------------- #
class _Reader:
    """Bounds-checked cursor over a payload buffer."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos

    def take(self, count: int) -> bytes:
        if count < 0 or count > self.remaining:
            raise WireError(f"frame truncated: wanted {count} bytes, {self.remaining} left")
        start = self.pos
        self.pos = start + count
        return self.data[start : self.pos]

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]


def _decode_str(reader: _Reader) -> str:
    data = reader.take(reader.u32())
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"invalid UTF-8 on the wire: {exc}") from None


def _decode_array(reader: _Reader) -> np.ndarray:
    dtype_str = reader.take(reader.u8())
    try:
        dtype = np.dtype(dtype_str.decode("ascii"))
    except (TypeError, ValueError, UnicodeDecodeError):
        raise WireError(f"invalid dtype {dtype_str!r} on the wire") from None
    if dtype.kind not in _ARRAY_KINDS or dtype.itemsize > 8:
        raise WireError(f"dtype {dtype} is not allowed on the wire")
    ndim = reader.u8()
    if ndim > _MAX_NDIM:
        raise WireError(f"{ndim}-dimensional arrays are not allowed on the wire")
    shape = tuple(reader.u64() for _ in range(ndim))
    count = 1
    for dim in shape:
        count *= dim
    length = reader.u64()
    if length != count * dtype.itemsize:
        raise WireError(f"array byte length {length} does not match shape {shape} of {dtype}")
    data = reader.take(length)
    return np.frombuffer(data, dtype=dtype).reshape(shape).copy()


def _expect(value, kinds, what: str):
    if kinds is None:
        if value is not None:
            raise WireError(f"{what} must be None, got {type(value).__name__}")
    elif not isinstance(value, kinds) or isinstance(value, bool) and kinds is int:
        raise WireError(f"bad field type for {what}: {type(value).__name__}")
    return value


def _decode_seedseq(reader: _Reader, depth: int) -> np.random.SeedSequence:
    entropy = _decode(reader, depth)
    spawn_key = _decode(reader, depth)
    pool_size = _decode(reader, depth)
    n_children = _decode(reader, depth)
    if entropy is not None and not isinstance(entropy, int):
        if not isinstance(entropy, (list, tuple)) or not all(
            isinstance(item, int) for item in entropy
        ):
            raise WireError("SeedSequence entropy must be None, int or a sequence of ints")
    if not isinstance(spawn_key, tuple) or not all(isinstance(item, int) for item in spawn_key):
        raise WireError("SeedSequence spawn_key must be a tuple of ints")
    _expect(pool_size, int, "SeedSequence pool_size")
    _expect(n_children, int, "SeedSequence n_children_spawned")
    try:
        return np.random.SeedSequence(
            entropy=entropy,
            spawn_key=spawn_key,
            pool_size=pool_size,
            n_children_spawned=n_children,
        )
    except (TypeError, ValueError) as exc:
        raise WireError(f"invalid SeedSequence on the wire: {exc}") from None


def _decode_source(reader: _Reader, depth: int) -> ShardSource:
    kind = _expect(_decode(reader, depth), str, "ShardSource.kind")
    lo = _expect(_decode(reader, depth), int, "ShardSource.lo")
    hi = _expect(_decode(reader, depth), int, "ShardSource.hi")
    rows = _decode(reader, depth)
    offsets = _decode(reader, depth)
    positions = _decode(reader, depth)
    for name, value in (("rows", rows), ("offsets", offsets), ("positions", positions)):
        if value is not None and not isinstance(value, np.ndarray):
            raise WireError(f"ShardSource.{name} must be an array or None")
    return ShardSource(kind=kind, lo=lo, hi=hi, rows=rows, offsets=offsets, positions=positions)


def _decode_rng_state(value, what: str):
    if value is not None and not isinstance(value, dict):
        raise WireError(f"{what} must be a dict or None")
    return value


def _decode_tracectx(reader: _Reader, depth: int) -> TraceContext:
    trace_id = _expect(_decode(reader, depth), str, "TraceContext.trace_id")
    span_id = _expect(_decode(reader, depth), str, "TraceContext.span_id")
    return TraceContext(trace_id=trace_id, span_id=span_id)


def _decode_trace_field(reader: _Reader, depth: int, what: str) -> TraceContext:
    value = _decode(reader, depth)
    if not isinstance(value, TraceContext):
        raise WireError(f"{what} must be a TraceContext")
    return value


def _decode_task(reader: _Reader, depth: int, *, traced: bool = False) -> ShardTask:
    index = _expect(_decode(reader, depth), int, "ShardTask.index")
    design = _expect(_decode(reader, depth), str, "ShardTask.design")
    source = _decode(reader, depth)
    if not isinstance(source, ShardSource):
        raise WireError("ShardTask.source must be a ShardSource")
    count = _expect(_decode(reader, depth), int, "ShardTask.count")
    cap = _decode(reader, depth)
    if cap is not None and not isinstance(cap, int):
        raise WireError("ShardTask.cap must be an int or None")
    rng_state = _decode_rng_state(_decode(reader, depth), "ShardTask.rng_state")
    perm_seed = _decode(reader, depth)
    if perm_seed is not None and not isinstance(perm_seed, np.random.SeedSequence):
        raise WireError("ShardTask.perm_seed must be a SeedSequence or None")
    cursor = _expect(_decode(reader, depth), int, "ShardTask.cursor")
    trace = _decode_trace_field(reader, depth, "ShardTask.trace") if traced else None
    return ShardTask(
        index=index,
        design=design,
        source=source,
        count=count,
        cap=cap,
        rng_state=rng_state,
        perm_seed=perm_seed,
        cursor=cursor,
        trace=trace,
    )


def _decode_result(reader: _Reader, depth: int, *, traced: bool = False) -> ShardResult:
    index = _expect(_decode(reader, depth), int, "ShardResult.index")
    arrays = []
    for name in ("rows", "counts", "sizes", "positions"):
        value = _decode(reader, depth)
        if not isinstance(value, np.ndarray):
            raise WireError(f"ShardResult.{name} must be an array")
        arrays.append(value)
    rng_state = _decode_rng_state(_decode(reader, depth), "ShardResult.rng_state")
    cursor = _expect(_decode(reader, depth), int, "ShardResult.cursor")
    elapsed = _decode(reader, depth)
    if isinstance(elapsed, bool) or not isinstance(elapsed, (int, float)):
        raise WireError("ShardResult.elapsed must be a number")
    trace = _decode_trace_field(reader, depth, "ShardResult.trace") if traced else None
    return ShardResult(
        index=index,
        rows=arrays[0],
        counts=arrays[1],
        sizes=arrays[2],
        positions=arrays[3],
        rng_state=rng_state,
        cursor=cursor,
        elapsed=float(elapsed),
        trace=trace,
    )


def _decode_float_field(reader: _Reader, depth: int, what: str) -> float:
    value = _decode(reader, depth)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(f"{what} must be a number")
    return float(value)


def _decode_triple(reader: _Reader, depth: int) -> Triple:
    subject = _expect(_decode(reader, depth), str, "Triple.subject")
    predicate = _expect(_decode(reader, depth), str, "Triple.predicate")
    obj = _expect(_decode(reader, depth), str, "Triple.obj")
    flag = _decode(reader, depth)
    if not isinstance(flag, bool):
        raise WireError("Triple.is_entity_object must be a bool")
    return Triple(subject, predicate, obj, is_entity_object=flag)


def _decode_estimate(reader: _Reader, depth: int) -> Estimate:
    value = _decode_float_field(reader, depth, "Estimate.value")
    std_error = _decode_float_field(reader, depth, "Estimate.std_error")
    num_units = _expect(_decode(reader, depth), int, "Estimate.num_units")
    num_triples = _expect(_decode(reader, depth), int, "Estimate.num_triples")
    return Estimate(
        value=value, std_error=std_error, num_units=num_units, num_triples=num_triples
    )


def _decode_report(reader: _Reader, depth: int) -> EvaluationReport:
    estimate = _decode(reader, depth)
    if not isinstance(estimate, Estimate):
        raise WireError("EvaluationReport.estimate must be an Estimate")
    confidence_level = _decode_float_field(reader, depth, "EvaluationReport.confidence_level")
    moe_target = _decode_float_field(reader, depth, "EvaluationReport.moe_target")
    satisfied = _decode(reader, depth)
    if not isinstance(satisfied, bool):
        raise WireError("EvaluationReport.satisfied must be a bool")
    iterations = _expect(_decode(reader, depth), int, "EvaluationReport.iterations")
    num_units = _expect(_decode(reader, depth), int, "EvaluationReport.num_units")
    num_annotated = _expect(_decode(reader, depth), int, "EvaluationReport.num_triples_annotated")
    num_entities = _expect(
        _decode(reader, depth), int, "EvaluationReport.num_entities_identified"
    )
    cost = _decode_float_field(reader, depth, "EvaluationReport.annotation_cost_seconds")
    return EvaluationReport(
        estimate=estimate,
        confidence_level=confidence_level,
        moe_target=moe_target,
        satisfied=satisfied,
        iterations=iterations,
        num_units=num_units,
        num_triples_annotated=num_annotated,
        num_entities_identified=num_entities,
        annotation_cost_seconds=cost,
    )


def _decode_monitor_record(reader: _Reader, depth: int) -> MonitorRecord:
    batch_index = _expect(_decode(reader, depth), int, "MonitorRecord.batch_index")
    batch_id = _expect(_decode(reader, depth), str, "MonitorRecord.batch_id")
    estimated = _decode_float_field(reader, depth, "MonitorRecord.estimated_accuracy")
    moe = _decode_float_field(reader, depth, "MonitorRecord.margin_of_error")
    truth = _decode_float_field(reader, depth, "MonitorRecord.true_accuracy")
    incremental = _decode_float_field(reader, depth, "MonitorRecord.incremental_cost_hours")
    cumulative = _decode_float_field(reader, depth, "MonitorRecord.cumulative_cost_hours")
    return MonitorRecord(
        batch_index=batch_index,
        batch_id=batch_id,
        estimated_accuracy=estimated,
        margin_of_error=moe,
        true_accuracy=truth,
        incremental_cost_hours=incremental,
        cumulative_cost_hours=cumulative,
    )


def _decode(reader: _Reader, depth: int):
    if depth > _MAX_DEPTH:
        raise WireError("frame nests deeper than the wire limit")
    tag = reader.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _I64.unpack(reader.take(8))[0]
    if tag == _T_BIGINT:
        sign = reader.u8()
        if sign not in (0, 1):
            raise WireError(f"invalid big-int sign byte {sign}")
        length = reader.u32()
        if length > _MAX_BIGINT_BYTES:
            raise WireError(f"big int of {length} bytes exceeds the wire limit")
        magnitude = int.from_bytes(reader.take(length), "big")
        return -magnitude if sign else magnitude
    if tag == _T_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        return _decode_str(reader)
    if tag == _T_BYTES:
        return reader.take(reader.u64())
    if tag in (_T_LIST, _T_TUPLE):
        count = reader.u32()
        if count > reader.remaining:
            raise WireError(f"container of {count} items exceeds the frame")
        items = [_decode(reader, depth + 1) for _ in range(count)]
        return items if tag == _T_LIST else tuple(items)
    if tag == _T_DICT:
        count = reader.u32()
        if count > reader.remaining:
            raise WireError(f"dict of {count} items exceeds the frame")
        out = {}
        for _ in range(count):
            key = reader.take(reader.u32())
            try:
                key = key.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireError(f"invalid UTF-8 dict key: {exc}") from None
            out[key] = _decode(reader, depth + 1)
        return out
    if tag == _T_NDARRAY:
        return _decode_array(reader)
    if tag == _T_SEEDSEQ:
        return _decode_seedseq(reader, depth + 1)
    if tag == _T_TASK:
        return _decode_task(reader, depth + 1)
    if tag == _T_RESULT:
        return _decode_result(reader, depth + 1)
    if tag == _T_SOURCE:
        return _decode_source(reader, depth + 1)
    if tag == _T_TRACECTX:
        return _decode_tracectx(reader, depth + 1)
    if tag == _T_TASK_TRACED:
        return _decode_task(reader, depth + 1, traced=True)
    if tag == _T_RESULT_TRACED:
        return _decode_result(reader, depth + 1, traced=True)
    if tag == _T_TRIPLE:
        return _decode_triple(reader, depth + 1)
    if tag == _T_ESTIMATE:
        return _decode_estimate(reader, depth + 1)
    if tag == _T_REPORT:
        return _decode_report(reader, depth + 1)
    if tag == _T_MONITOR_RECORD:
        return _decode_monitor_record(reader, depth + 1)
    raise WireError(f"unknown wire tag {tag}")


def loads(data: bytes):
    """Decode one tagged value; raises :class:`WireError` on any malformation."""
    reader = _Reader(bytes(data))
    value = _decode(reader, 0)
    if reader.remaining:
        raise WireError(f"{reader.remaining} trailing bytes after the decoded value")
    return value


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def encode_frame(value) -> bytes:
    """Encode one value as a complete frame (header + CRC + payload)."""
    payload = dumps(value)
    return _HEADER.pack(MAGIC, WIRE_VERSION, 0, len(payload), zlib.crc32(payload)) + payload


def parse_header(header: bytes) -> tuple[int, int]:
    """Validate a frame header; return ``(payload_length, crc32)``."""
    if len(header) != HEADER_SIZE:
        raise WireError(f"frame header is {len(header)} bytes, expected {HEADER_SIZE}")
    magic, version, flags, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version}, this side speaks {WIRE_VERSION}")
    if flags != 0:
        raise WireError(f"unsupported frame flags {flags:#x}")
    return length, crc


def check_payload(payload: bytes, crc: int):
    """CRC-check a payload then decode it."""
    if zlib.crc32(payload) != crc:
        raise WireError("frame payload failed its CRC check")
    return loads(payload)


def decode_frame(data: bytes):
    """Inverse of :func:`encode_frame` for one complete frame."""
    if len(data) < HEADER_SIZE:
        raise WireError(f"truncated frame: {len(data)} bytes")
    length, crc = parse_header(data[:HEADER_SIZE])
    payload = data[HEADER_SIZE:]
    if len(payload) != length:
        raise WireError(f"frame length mismatch: header {length}, payload {len(payload)}")
    return check_payload(payload, crc)
