"""Stratified two-stage weighted cluster sampling (Section 5.3).

Entity clusters are partitioned into strata (by size, by oracle accuracy, or
by any user-provided signal); TWCS runs independently inside each stratum and
the stratum estimates are combined with the usual stratified estimator:

    µ̂_ss = Σ_h W_h µ̂_{w,m,h}                                 (Eq. 13)
    Var(µ̂_ss) = Σ_h W_h² Var(µ̂_{w,m,h})

When strata are internally homogeneous (clusters of similar accuracy grouped
together) the combined variance is smaller than un-stratified TWCS at the same
sample size, which is what buys the additional cost reduction in Table 7.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.sampling.base import Estimate, SampleUnit, SamplingDesign
from repro.sampling.stratification import Stratum
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.stats.allocation import neyman_allocation, proportional_allocation

__all__ = ["StratifiedTWCSDesign"]


class StratifiedTWCSDesign(SamplingDesign):
    """TWCS within strata, combined with the stratified estimator Eq. (13).

    Parameters
    ----------
    graph:
        The knowledge graph to evaluate.
    strata:
        A partition of the graph's entity clusters (see
        :mod:`repro.sampling.stratification`).  Strata with no entities are
        ignored.
    second_stage_size:
        The TWCS cap ``m`` used inside every stratum.
    seed:
        Seed or generator for reproducible draws.
    allocation:
        How each requested batch is split across strata: ``"proportional"``
        (the default — draws proportional to the stratum weights ``W_h``, the
        allocation the paper uses for its iterative stratified evaluation) or
        ``"neyman"`` (draws proportional to ``W_h · S_h`` where ``S_h`` is the
        stratum's currently observed standard deviation of cluster accuracies;
        it falls back to proportional allocation until every stratum has at
        least two annotated cluster draws).

    Notes
    -----
    Whatever the allocation rule, every stratum is guaranteed at least one
    draw over time so its variance eventually becomes estimable.
    """

    unit_name = "cluster"

    def __init__(
        self,
        graph: KnowledgeGraph,
        strata: Sequence[Stratum],
        second_stage_size: int = 5,
        seed: int | np.random.Generator | None = None,
        allocation: str = "proportional",
    ) -> None:
        if allocation not in ("proportional", "neyman"):
            raise ValueError(
                f"allocation must be 'proportional' or 'neyman', got {allocation!r}"
            )
        populated = [stratum for stratum in strata if stratum.num_entities > 0]
        if not populated:
            raise ValueError("at least one non-empty stratum is required")
        self.graph = graph
        self.second_stage_size = second_stage_size
        self.allocation = allocation
        self._rng = np.random.default_rng(seed)
        self._strata = populated
        self._weights = [stratum.weight for stratum in populated]
        total_weight = sum(self._weights)
        if not math.isclose(total_weight, 1.0, rel_tol=1e-6):
            # Re-normalise: strata may describe a subset of the graph (e.g. the
            # update stratum of an evolving evaluation).
            self._weights = [weight / total_weight for weight in self._weights]
        self._designs = [
            TwoStageWeightedClusterDesign(
                graph.subset(stratum.entity_ids, name=f"{graph.name}:{stratum.label}"),
                second_stage_size=second_stage_size,
                seed=self._rng,
            )
            for stratum in populated
        ]
        self._unit_to_stratum: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # SamplingDesign interface
    # ------------------------------------------------------------------ #
    @property
    def strata(self) -> Sequence[Stratum]:
        """The non-empty strata this design samples from."""
        return tuple(self._strata)

    def reset(self) -> None:
        """Clear the per-stratum estimators."""
        for design in self._designs:
            design.reset()
        self._unit_to_stratum.clear()

    def _allocate(self, count: int) -> list[int]:
        """Split a batch of ``count`` draws across strata per the allocation rule."""
        if self.allocation == "neyman":
            stds = []
            for design in self._designs:
                estimate = design.estimate()
                if estimate.num_units >= 2 and not math.isinf(estimate.std_error):
                    # Recover the stratum's cluster-accuracy standard deviation
                    # from its standard error of the mean.
                    stds.append(estimate.std_error * math.sqrt(estimate.num_units))
                else:
                    stds.append(-1.0)
            if all(std >= 0 for std in stds):
                return neyman_allocation(self._weights, stds, count)
        return proportional_allocation(self._weights, count)

    def draw(self, count: int) -> list[SampleUnit]:
        """Draw ``count`` cluster units, allocated across strata per the allocation rule."""
        if count < 0:
            raise ValueError("count must be non-negative")
        allocation = self._allocate(count)
        units: list[SampleUnit] = []
        for stratum_index, stratum_count in enumerate(allocation):
            if stratum_count == 0:
                continue
            for unit in self._designs[stratum_index].draw(stratum_count):
                self._unit_to_stratum[id(unit)] = stratum_index
                units.append(unit)
        return units

    def update(self, unit: SampleUnit, labels: dict[Triple, bool]) -> None:
        """Route the unit's labels to the estimator of its stratum."""
        stratum_index = self._unit_to_stratum.pop(id(unit), None)
        if stratum_index is None:
            stratum_index = self._stratum_of_entity(unit.entity_id)
        self._designs[stratum_index].update(unit, labels)

    def _stratum_of_entity(self, entity_id: str | None) -> int:
        if entity_id is None:
            raise ValueError("stratified design received a unit without an entity id")
        for index, stratum in enumerate(self._strata):
            if entity_id in stratum.entity_ids:
                return index
        raise KeyError(f"entity {entity_id!r} does not belong to any stratum")

    def estimate(self) -> Estimate:
        """Eq. (13): weighted combination of the per-stratum TWCS estimates."""
        value = 0.0
        variance = 0.0
        num_units = 0
        num_triples = 0
        undetermined = False
        for weight, design in zip(self._weights, self._designs):
            stratum_estimate = design.estimate()
            num_units += stratum_estimate.num_units
            num_triples += stratum_estimate.num_triples
            value += weight * stratum_estimate.value
            if math.isinf(stratum_estimate.std_error):
                undetermined = True
            else:
                variance += weight * weight * stratum_estimate.std_error**2
        std_error = math.inf if undetermined else math.sqrt(variance)
        return Estimate(
            value=value,
            std_error=std_error,
            num_units=num_units,
            num_triples=num_triples,
        )

    # ------------------------------------------------------------------ #
    # Introspection helpers (used by reports and tests)
    # ------------------------------------------------------------------ #
    def stratum_estimates(self) -> list[tuple[Stratum, Estimate]]:
        """Return the current per-stratum estimates."""
        return [
            (stratum, design.estimate())
            for stratum, design in zip(self._strata, self._designs)
        ]
