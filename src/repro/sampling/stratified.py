"""Stratified two-stage weighted cluster sampling (Section 5.3).

Entity clusters are partitioned into strata (by size, by oracle accuracy, or
by any user-provided signal); TWCS runs independently inside each stratum and
the stratum estimates are combined with the usual stratified estimator:

    µ̂_ss = Σ_h W_h µ̂_{w,m,h}                                 (Eq. 13)
    Var(µ̂_ss) = Σ_h W_h² Var(µ̂_{w,m,h})

When strata are internally homogeneous (clusters of similar accuracy grouped
together) the combined variance is smaller than un-stratified TWCS at the same
sample size, which is what buys the additional cost reduction in Table 7.

The design exposes both draw surfaces.  The object surface materialises one
sub-graph per stratum (built lazily on first use) and hands out Triple-backed
units for annotation.  The position surface never materialises sub-graphs:
each stratum keeps an array of parent-graph cluster rows, first-stage draws
are allocated over the strata (proportionally to the stratum position/triple
counts, or by Neyman allocation over the observed stratum spreads) and
sampled straight from the parent graph's CSR index, so a snapshot-loaded
columnar graph is stratified and sampled without a single Triple allocation.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.sampling.base import (
    Estimate,
    PositionUnit,
    SampleUnit,
    SamplingDesign,
    segment_label_sums,
)
from repro.sampling.stratification import Stratum
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.stats.allocation import neyman_allocation, proportional_allocation
from repro.stats.running import RunningMean

__all__ = ["StratifiedTWCSDesign"]


class StratifiedTWCSDesign(SamplingDesign):
    """TWCS within strata, combined with the stratified estimator Eq. (13).

    Parameters
    ----------
    graph:
        The knowledge graph to evaluate.
    strata:
        A partition of the graph's entity clusters (see
        :mod:`repro.sampling.stratification`).  Strata with no entities are
        ignored.
    second_stage_size:
        The TWCS cap ``m`` used inside every stratum.
    seed:
        Seed or generator for reproducible draws.
    allocation:
        How each requested batch is split across strata: ``"proportional"``
        (the default — draws proportional to the stratum weights ``W_h``, the
        allocation the paper uses for its iterative stratified evaluation) or
        ``"neyman"`` (draws proportional to ``W_h · S_h`` where ``S_h`` is the
        stratum's currently observed standard deviation of cluster accuracies;
        it falls back to proportional allocation until every stratum has at
        least two annotated cluster draws).

    Notes
    -----
    Whatever the allocation rule, every stratum is guaranteed at least one
    draw over time so its variance eventually becomes estimable.
    """

    unit_name = "cluster"

    def __init__(
        self,
        graph: KnowledgeGraph,
        strata: Sequence[Stratum],
        second_stage_size: int = 5,
        seed: int | np.random.Generator | None = None,
        allocation: str = "proportional",
    ) -> None:
        if allocation not in ("proportional", "neyman"):
            raise ValueError(f"allocation must be 'proportional' or 'neyman', got {allocation!r}")
        populated = [stratum for stratum in strata if stratum.num_entities > 0]
        if not populated:
            raise ValueError("at least one non-empty stratum is required")
        self.graph = graph
        self.second_stage_size = second_stage_size
        self.allocation = allocation
        self._rng = np.random.default_rng(seed)
        self._strata = populated
        self._weights = [stratum.weight for stratum in populated]
        total_weight = sum(self._weights)
        if not math.isclose(total_weight, 1.0, rel_tol=1e-6):
            # Re-normalise: strata may describe a subset of the graph (e.g. the
            # update stratum of an evolving evaluation).
            self._weights = [weight / total_weight for weight in self._weights]
        # Per-stratum estimator state, fed by both draw surfaces.
        self._means = [RunningMean() for _ in populated]
        self._triples = [0] * len(populated)
        # Object surface: one sub-graph TWCS sampler per stratum, built lazily
        # so position-only runs never pay for sub-graph materialisation.
        self._designs_cache: list[TwoStageWeightedClusterDesign] | None = None
        self._unit_to_stratum: dict[int, int] = {}
        # Position surface: parent-graph rows/sizes per stratum, built lazily.
        self._rows_cache: list[np.ndarray] | None = None
        self._row_weights_cache: list[np.ndarray] | None = None
        self._row_stratum_cache: np.ndarray | None = None
        self._sizes_cache: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Lazy per-surface state
    # ------------------------------------------------------------------ #
    @property
    def _designs(self) -> list[TwoStageWeightedClusterDesign]:
        if self._designs_cache is None:
            self._designs_cache = [
                TwoStageWeightedClusterDesign(
                    self.graph.subset(
                        stratum.entity_ids, name=f"{self.graph.name}:{stratum.label}"
                    ),
                    second_stage_size=self.second_stage_size,
                    seed=self._rng,
                )
                for stratum in self._strata
            ]
        return self._designs_cache

    def _ensure_position_state(self) -> None:
        if self._rows_cache is not None:
            return
        graph = self.graph
        self._sizes_cache = graph.cluster_size_array()
        self._row_stratum_cache = np.full(graph.num_entities, -1, dtype=np.int64)
        rows_per_stratum: list[np.ndarray] = []
        weights_per_stratum: list[np.ndarray] = []
        for index, stratum in enumerate(self._strata):
            rows = np.fromiter(
                (graph.entity_row(entity_id) for entity_id in stratum.entity_ids),
                dtype=np.int64,
                count=stratum.num_entities,
            )
            self._row_stratum_cache[rows] = index
            sizes = self._sizes_cache[rows].astype(float)
            rows_per_stratum.append(rows)
            weights_per_stratum.append(sizes / sizes.sum())
        self._rows_cache = rows_per_stratum
        self._row_weights_cache = weights_per_stratum

    # ------------------------------------------------------------------ #
    # SamplingDesign interface
    # ------------------------------------------------------------------ #
    @property
    def strata(self) -> Sequence[Stratum]:
        """The non-empty strata this design samples from."""
        return tuple(self._strata)

    def reset(self) -> None:
        """Clear the per-stratum estimators."""
        self._means = [RunningMean() for _ in self._strata]
        self._triples = [0] * len(self._strata)
        self._unit_to_stratum.clear()

    def _stratum_estimate(self, index: int) -> Estimate:
        mean = self._means[index]
        return Estimate(
            value=mean.mean,
            std_error=mean.std_error,
            num_units=mean.count,
            num_triples=self._triples[index],
        )

    def _allocate(self, count: int) -> list[int]:
        """Split a batch of ``count`` draws across strata per the allocation rule."""
        if self.allocation == "neyman":
            stds = []
            for index in range(len(self._strata)):
                estimate = self._stratum_estimate(index)
                if estimate.num_units >= 2 and not math.isinf(estimate.std_error):
                    # Recover the stratum's cluster-accuracy standard deviation
                    # from its standard error of the mean.
                    stds.append(estimate.std_error * math.sqrt(estimate.num_units))
                else:
                    stds.append(-1.0)
            if all(std >= 0 for std in stds):
                return neyman_allocation(self._weights, stds, count)
        return proportional_allocation(self._weights, count)

    def draw(self, count: int) -> list[SampleUnit]:
        """Draw ``count`` cluster units, allocated across strata per the allocation rule."""
        if count < 0:
            raise ValueError("count must be non-negative")
        allocation = self._allocate(count)
        units: list[SampleUnit] = []
        for stratum_index, stratum_count in enumerate(allocation):
            if stratum_count == 0:
                continue
            for unit in self._designs[stratum_index].draw(stratum_count):
                self._unit_to_stratum[id(unit)] = stratum_index
                units.append(unit)
        return units

    def update(self, unit: SampleUnit, labels: dict[Triple, bool]) -> None:
        """Fold the unit's labels into the estimator of its stratum."""
        stratum_index = self._unit_to_stratum.pop(id(unit), None)
        if stratum_index is None:
            stratum_index = self._stratum_of_entity(unit.entity_id)
        num_correct = sum(1 for triple in unit.triples if labels[triple])
        self._means[stratum_index].add(num_correct / unit.num_triples)
        self._triples[stratum_index] += unit.num_triples

    def _stratum_of_entity(self, entity_id: str | None) -> int:
        if entity_id is None:
            raise ValueError("stratified design received a unit without an entity id")
        for index, stratum in enumerate(self._strata):
            if entity_id in stratum.entity_ids:
                return index
        raise KeyError(f"entity {entity_id!r} does not belong to any stratum")

    # ------------------------------------------------------------------ #
    # Position surface
    # ------------------------------------------------------------------ #
    def draw_positions(self, count: int) -> list[PositionUnit]:
        """Draw ``count`` cluster units as position-only parent-graph views."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._ensure_position_state()
        assert self._rows_cache is not None and self._row_weights_cache is not None
        assert self._sizes_cache is not None
        allocation = self._allocate(count)
        units: list[PositionUnit] = []
        for stratum_index, stratum_count in enumerate(allocation):
            if stratum_count == 0:
                continue
            stratum_rows = self._rows_cache[stratum_index]
            chosen = self._rng.choice(
                stratum_rows.shape[0],
                size=stratum_count,
                replace=True,
                p=self._row_weights_cache[stratum_index],
            )
            rows = stratum_rows[chosen]
            batches = self.graph.sample_cluster_positions_batch(
                rows, self.second_stage_size, self._rng
            )
            for row, positions in zip(rows, batches):
                unit = PositionUnit(
                    positions=positions,
                    entity_row=int(row),
                    cluster_size=int(self._sizes_cache[row]),
                )
                self._unit_to_stratum[id(unit)] = stratum_index
                units.append(unit)
        return units

    def _stratum_of_position_unit(self, unit: PositionUnit) -> int:
        stratum_index = self._unit_to_stratum.pop(id(unit), None)
        if stratum_index is not None:
            return stratum_index
        self._ensure_position_state()
        assert self._row_stratum_cache is not None
        stratum_index = int(self._row_stratum_cache[unit.entity_row])
        if stratum_index < 0:
            raise KeyError(f"cluster row {unit.entity_row} does not belong to any stratum")
        return stratum_index

    def update_positions(self, unit: PositionUnit, labels: np.ndarray) -> None:
        """Fold one position unit into its stratum's estimator."""
        stratum_index = self._stratum_of_position_unit(unit)
        self._means[stratum_index].add(float(labels.mean()))
        self._triples[stratum_index] += int(labels.shape[0])

    def update_all_positions(self, units: list[PositionUnit], label_array: np.ndarray) -> None:
        """Vectorised batch update: one gather + segment reduction per stratum."""
        if not units:
            return
        grouped: dict[int, list[PositionUnit]] = {}
        for unit in units:
            grouped.setdefault(self._stratum_of_position_unit(unit), []).append(unit)
        for stratum_index, stratum_units in grouped.items():
            counts, sums = segment_label_sums(stratum_units, label_array)
            self._means[stratum_index].add_many(sums / counts)
            self._triples[stratum_index] += int(counts.sum())

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def estimate(self) -> Estimate:
        """Eq. (13): weighted combination of the per-stratum TWCS estimates."""
        value = 0.0
        variance = 0.0
        num_units = 0
        num_triples = 0
        undetermined = False
        for index, weight in enumerate(self._weights):
            stratum_estimate = self._stratum_estimate(index)
            num_units += stratum_estimate.num_units
            num_triples += stratum_estimate.num_triples
            value += weight * stratum_estimate.value
            if math.isinf(stratum_estimate.std_error):
                undetermined = True
            else:
                variance += weight * weight * stratum_estimate.std_error**2
        std_error = math.inf if undetermined else math.sqrt(variance)
        return Estimate(
            value=value,
            std_error=std_error,
            num_units=num_units,
            num_triples=num_triples,
        )

    # ------------------------------------------------------------------ #
    # Introspection helpers (used by reports and tests)
    # ------------------------------------------------------------------ #
    def stratum_estimates(self) -> list[tuple[Stratum, Estimate]]:
        """Return the current per-stratum estimates."""
        return [
            (stratum, self._stratum_estimate(index))
            for index, stratum in enumerate(self._strata)
        ]
