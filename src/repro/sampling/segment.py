"""Position-surface sampling over appended update segments.

The evolving evaluators (Algorithms 1 and 2) never sample the merged evolved
graph: the reservoir scheme treats every per-entity insertion set ``Δ_e`` as
a brand-new cluster, and the stratified scheme samples only inside the newest
batch's stratum.  Both therefore need a cluster-sampling surface over *just
the triples of one update batch*, addressed by their global graph positions.

:class:`PositionSegment` is that surface's population: a small CSR index
(offsets + global positions) over the batch's per-subject clusters, built in
one pass from the batch without materialising a standalone
:class:`~repro.kg.graph.KnowledgeGraph`.  :class:`SegmentTWCSDesign` runs the
TWCS draw/estimate loop on it — size-weighted first stage, capped Floyd
second stage, running mean of within-cluster accuracies — identically on
every storage backend, because a segment is pure integer arrays.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.kg.graph import sample_csr_positions_batch
from repro.kg.triple import Triple
from repro.sampling.base import Estimate, PositionUnit, segment_label_sums
from repro.stats.running import RunningMean

__all__ = ["PositionSegment", "SegmentTWCSDesign"]


@dataclass(frozen=True)
class PositionSegment:
    """CSR view of one update batch's per-subject clusters.

    Attributes
    ----------
    subjects:
        Subject id of each cluster, in first-seen batch order.
    offsets:
        CSR offsets of length ``K + 1`` (``K`` clusters).
    positions:
        Global triple positions, grouped by cluster; cluster ``k`` owns
        ``positions[offsets[k]:offsets[k + 1]]``.
    """

    subjects: tuple[str, ...]
    offsets: np.ndarray
    positions: np.ndarray

    @classmethod
    def from_batch(
        cls,
        triples: Sequence[Triple],
        added: Sequence[bool],
        first_position: int,
    ) -> "PositionSegment":
        """Build the segment for a batch just appended to a graph.

        ``added`` are the per-triple flags returned by the graph's bulk
        insert (duplicates are skipped by every backend identically);
        ``first_position`` is the graph's triple count before the append, so
        the i-th added triple sits at global position ``first_position + i``.
        """
        grouped: dict[str, list[int]] = {}
        position = first_position
        for triple, was_added in zip(triples, added):
            if not was_added:
                continue
            grouped.setdefault(triple.subject, []).append(position)
            position += 1
        subjects = tuple(grouped)
        sizes = np.fromiter(
            (len(grouped[s]) for s in subjects), dtype=np.int64, count=len(subjects)
        )
        offsets = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
        if subjects:
            positions = np.concatenate([np.asarray(grouped[s], dtype=np.int64) for s in subjects])
        else:
            positions = np.empty(0, dtype=np.int64)
        return cls(subjects=subjects, offsets=offsets, positions=positions)

    @property
    def num_clusters(self) -> int:
        """Number of per-subject insertion clusters ``Δ_e``."""
        return len(self.subjects)

    @property
    def num_triples(self) -> int:
        """Number of inserted triples covered by the segment."""
        return int(self.positions.shape[0])

    def sizes(self) -> np.ndarray:
        """Cluster sizes ``|Δ_e|`` in cluster order."""
        return np.diff(self.offsets)

    def cluster_positions(self, cluster: int) -> np.ndarray:
        """Global positions of cluster ``cluster`` (zero-copy slice)."""
        return self.positions[int(self.offsets[cluster]) : int(self.offsets[cluster + 1])]


class SegmentTWCSDesign:
    """TWCS draw/estimate loop over one :class:`PositionSegment`.

    Position-only: draws are :class:`~repro.sampling.base.PositionUnit` views
    whose ``entity_row`` is the *segment-local* cluster index, and labels
    arrive as a graph-position-aligned boolean array.
    """

    def __init__(
        self,
        segment: PositionSegment,
        second_stage_size: int = 5,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if second_stage_size < 1:
            raise ValueError("second_stage_size must be at least 1")
        if segment.num_triples == 0:
            raise ValueError("cannot sample from an empty segment")
        self.segment = segment
        self.second_stage_size = second_stage_size
        self._rng = np.random.default_rng(seed)
        self._sizes = segment.sizes()
        sizes = self._sizes.astype(float)
        self._weights = sizes / sizes.sum()
        self._cluster_means = RunningMean()
        self._num_triples = 0

    def reset(self) -> None:
        """Clear the accumulated within-cluster sample accuracies."""
        self._cluster_means = RunningMean()
        self._num_triples = 0

    def draw_positions(self, count: int) -> list[PositionUnit]:
        """Draw ``count`` cluster units as position-only views."""
        if count < 0:
            raise ValueError("count must be non-negative")
        rows = self._rng.choice(self._sizes.shape[0], size=count, replace=True, p=self._weights)
        batches = sample_csr_positions_batch(
            self.segment.offsets, self.segment.positions, rows, self.second_stage_size, self._rng
        )
        sizes = self._sizes
        return [
            PositionUnit(positions=positions, entity_row=int(row), cluster_size=int(sizes[row]))
            for row, positions in zip(rows, batches)
        ]

    def update_positions(self, unit: PositionUnit, labels: np.ndarray) -> None:
        """Fold one cluster's within-sample accuracy into the running mean."""
        self._cluster_means.add(float(labels.mean()))
        self._num_triples += int(labels.shape[0])

    def update_all_positions(self, units: list[PositionUnit], label_array: np.ndarray) -> None:
        """Vectorised batch update: one gather + segment reduction."""
        if not units:
            return
        counts, sums = segment_label_sums(units, label_array)
        self.absorb_position_stats(counts, sums)

    def absorb_position_stats(self, counts: np.ndarray, sums: np.ndarray) -> None:
        """Fold externally drawn per-cluster ``(counts, sums)`` into the estimator.

        The parallel shard engine's feeding hook, mirroring
        :meth:`~repro.sampling.twcs.TwoStageWeightedClusterDesign.absorb_position_stats`.
        """
        if counts.shape[0] == 0:
            return
        self._cluster_means.add_many(sums / counts)
        self._num_triples += int(counts.sum())

    def estimate(self) -> Estimate:
        """Eq. (9) inside the segment: mean of within-cluster accuracies."""
        return Estimate(
            value=self._cluster_means.mean,
            std_error=self._cluster_means.std_error,
            num_units=self._cluster_means.count,
            num_triples=self._num_triples,
        )
