"""Common types shared by every sampling design."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.kg.triple import Triple
from repro.stats.ci import ConfidenceInterval, normal_interval

__all__ = ["SampleUnit", "Estimate", "SamplingDesign"]


@dataclass(frozen=True)
class SampleUnit:
    """One draw made by a sampling design.

    For triple-level designs a unit is a single triple; for cluster designs it
    is the set of triples selected from one sampled entity cluster (all of them
    for RCS/WCS, at most ``m`` of them for TWCS).

    Attributes
    ----------
    triples:
        The triples that must be annotated for this unit.
    entity_id:
        Subject id of the sampled cluster, or ``None`` for triple-level units.
    cluster_size:
        Size ``M_i`` of the sampled cluster (1 for triple-level units).
    """

    triples: tuple[Triple, ...]
    entity_id: str | None = None
    cluster_size: int = 1

    @property
    def num_triples(self) -> int:
        """Number of triples that need annotation for this unit."""
        return len(self.triples)


@dataclass(frozen=True)
class Estimate:
    """A point estimate of KG accuracy with its sampling uncertainty.

    Attributes
    ----------
    value:
        The unbiased point estimate ``µ̂``.
    std_error:
        Estimated standard error of ``µ̂`` (``inf`` until enough units have
        been observed for a variance estimate).
    num_units:
        Number of sample units the estimate is based on (triples for SRS,
        cluster draws for cluster designs).
    num_triples:
        Total number of triples annotated to produce the estimate.
    """

    value: float
    std_error: float
    num_units: int
    num_triples: int

    def margin_of_error(self, confidence_level: float) -> float:
        """Margin of error at the given confidence level (Eq. 1)."""
        if math.isinf(self.std_error):
            return math.inf
        return normal_interval(self.value, self.std_error, confidence_level).margin_of_error

    def confidence_interval(self, confidence_level: float) -> ConfidenceInterval:
        """Normal-approximation confidence interval, clipped to [0, 1]."""
        if math.isinf(self.std_error):
            return ConfidenceInterval(self.value, 0.0, 1.0, confidence_level)
        return normal_interval(self.value, self.std_error, confidence_level).clipped()

    def satisfies(self, moe_target: float, confidence_level: float) -> bool:
        """Whether the estimate meets the user-required MoE threshold."""
        return self.margin_of_error(confidence_level) <= moe_target


class SamplingDesign(ABC):
    """Abstract interface implemented by every sampling design.

    A design owns both the *sampling* state (what may still be drawn) and the
    *estimation* state (the accumulator over annotated units) so that the
    iterative framework can interleave drawing, annotation and estimation
    without re-reading earlier samples.
    """

    #: Human-readable name of the sampling unit ("triple" or "cluster").
    unit_name: str = "unit"

    @abstractmethod
    def draw(self, count: int) -> list[SampleUnit]:
        """Draw up to ``count`` new sample units.

        May return fewer units than requested when the population is exhausted
        (e.g. SRS without replacement on a small KG); returns an empty list
        when nothing is left to draw.
        """

    @abstractmethod
    def update(self, unit: SampleUnit, labels: dict[Triple, bool]) -> None:
        """Fold the annotation results for one unit into the estimator."""

    @abstractmethod
    def estimate(self) -> Estimate:
        """Return the current estimate of KG accuracy."""

    @abstractmethod
    def reset(self) -> None:
        """Clear all sampling and estimation state (start a fresh run)."""

    # ------------------------------------------------------------------ #
    # Conveniences shared by all designs
    # ------------------------------------------------------------------ #
    def update_all(self, units: list[SampleUnit], labels: dict[Triple, bool]) -> None:
        """Update the estimator with several units at once."""
        for unit in units:
            self.update(unit, labels)

    @property
    def exhausted(self) -> bool:
        """Whether the design can no longer produce new sample units."""
        return False
