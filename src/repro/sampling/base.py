"""Common types shared by every sampling design.

Every design supports two draw/estimate surfaces:

* the object surface (:meth:`SamplingDesign.draw` /
  :meth:`SamplingDesign.update`) — units carry materialised
  :class:`~repro.kg.triple.Triple` tuples and labels arrive as a
  Triple-keyed mapping.  This is what annotation flows need: triples are
  handed to (simulated) annotators.
* the position surface (:meth:`SamplingDesign.draw_positions` /
  :meth:`SamplingDesign.update_positions`) — units carry integer triple
  positions only and labels arrive as boolean arrays, so hot draw/estimate
  loops (benchmarks, oracle-backed simulations, pilot sizing sweeps) never
  allocate per-draw Triple tuples.  Position draws consume the random stream
  differently from object draws (they use the vectorised batch samplers),
  but are fully deterministic under a fixed seed on any storage backend.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.kg.triple import Triple
from repro.stats.ci import ConfidenceInterval, normal_interval

__all__ = ["SampleUnit", "PositionUnit", "Estimate", "SamplingDesign", "segment_label_sums"]


@dataclass(frozen=True)
class SampleUnit:
    """One draw made by a sampling design.

    For triple-level designs a unit is a single triple; for cluster designs it
    is the set of triples selected from one sampled entity cluster (all of them
    for RCS/WCS, at most ``m`` of them for TWCS).

    Attributes
    ----------
    triples:
        The triples that must be annotated for this unit.
    entity_id:
        Subject id of the sampled cluster, or ``None`` for triple-level units.
    cluster_size:
        Size ``M_i`` of the sampled cluster (1 for triple-level units).
    positions:
        Graph positions of :attr:`triples` when the producing design knows
        them (all backends report positions since the storage refactor);
        excluded from equality.  Lets estimate code resolve labels through
        ``KnowledgeGraph.labels_for_positions`` without hashing Triples.
    """

    triples: tuple[Triple, ...]
    entity_id: str | None = None
    cluster_size: int = 1
    positions: np.ndarray | None = field(default=None, compare=False, repr=False)

    @property
    def num_triples(self) -> int:
        """Number of triples that need annotation for this unit."""
        return len(self.triples)


@dataclass(slots=True)
class PositionUnit:
    """One draw expressed purely as triple positions (no Triple objects).

    Attributes
    ----------
    positions:
        Graph positions of the triples selected for this unit — often a
        zero-copy view into the backend's CSR index.
    entity_row:
        Row of the sampled cluster in ``graph.entity_ids`` order, or ``-1``
        for triple-level units.
    cluster_size:
        Size ``M_i`` of the sampled cluster (1 for triple-level units).
    """

    positions: np.ndarray
    entity_row: int = -1
    cluster_size: int = 1

    @property
    def num_triples(self) -> int:
        """Number of triples selected for this unit."""
        return int(self.positions.shape[0])


def segment_label_sums(
    units: list[PositionUnit], label_array: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-unit sizes and correct-label sums for a batch of position units.

    One flat gather over ``label_array`` plus a cumulative-sum segment
    reduction instead of one fancy-index + reduction per unit; the backbone
    of the designs' vectorised ``update_all_positions`` overrides.  Returns
    ``(counts, sums)`` as ``int64`` / ``float64`` arrays aligned with
    ``units``; a zero-length unit contributes a sum of 0.
    """
    if not units:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    counts = np.fromiter(
        (unit.positions.shape[0] for unit in units), dtype=np.int64, count=len(units)
    )
    flat = np.concatenate([unit.positions for unit in units])
    correct = label_array[flat].astype(np.float64)
    # Segment sums via prefix-sum differences (unlike np.add.reduceat, this
    # stays correct when a segment is empty or ends the batch).
    prefix = np.concatenate(([0.0], np.cumsum(correct)))
    ends = np.cumsum(counts)
    return counts, prefix[ends] - prefix[ends - counts]


@dataclass(frozen=True)
class Estimate:
    """A point estimate of KG accuracy with its sampling uncertainty.

    Attributes
    ----------
    value:
        The unbiased point estimate ``µ̂``.
    std_error:
        Estimated standard error of ``µ̂`` (``inf`` until enough units have
        been observed for a variance estimate).
    num_units:
        Number of sample units the estimate is based on (triples for SRS,
        cluster draws for cluster designs).
    num_triples:
        Total number of triples annotated to produce the estimate.
    """

    value: float
    std_error: float
    num_units: int
    num_triples: int

    def margin_of_error(self, confidence_level: float) -> float:
        """Margin of error at the given confidence level (Eq. 1)."""
        if math.isinf(self.std_error):
            return math.inf
        return normal_interval(self.value, self.std_error, confidence_level).margin_of_error

    def confidence_interval(self, confidence_level: float) -> ConfidenceInterval:
        """Normal-approximation confidence interval, clipped to [0, 1]."""
        if math.isinf(self.std_error):
            return ConfidenceInterval(self.value, 0.0, 1.0, confidence_level)
        return normal_interval(self.value, self.std_error, confidence_level).clipped()

    def satisfies(self, moe_target: float, confidence_level: float) -> bool:
        """Whether the estimate meets the user-required MoE threshold."""
        return self.margin_of_error(confidence_level) <= moe_target


class SamplingDesign(ABC):
    """Abstract interface implemented by every sampling design.

    A design owns both the *sampling* state (what may still be drawn) and the
    *estimation* state (the accumulator over annotated units) so that the
    iterative framework can interleave drawing, annotation and estimation
    without re-reading earlier samples.
    """

    #: Human-readable name of the sampling unit ("triple" or "cluster").
    unit_name: str = "unit"

    @abstractmethod
    def draw(self, count: int) -> list[SampleUnit]:
        """Draw up to ``count`` new sample units.

        May return fewer units than requested when the population is exhausted
        (e.g. SRS without replacement on a small KG); returns an empty list
        when nothing is left to draw.
        """

    @abstractmethod
    def update(self, unit: SampleUnit, labels: dict[Triple, bool]) -> None:
        """Fold the annotation results for one unit into the estimator."""

    @abstractmethod
    def estimate(self) -> Estimate:
        """Return the current estimate of KG accuracy."""

    @abstractmethod
    def reset(self) -> None:
        """Clear all sampling and estimation state (start a fresh run)."""

    # ------------------------------------------------------------------ #
    # Position surface (allocation-free draw/estimate loops)
    # ------------------------------------------------------------------ #
    def draw_positions(self, count: int) -> list[PositionUnit]:
        """Draw up to ``count`` units as position-only views.

        Designs that have not been migrated to the position surface raise
        ``NotImplementedError``.  The five core designs (SRS, RCS, WCS,
        TWCS, TSRCS) and ``StratifiedTWCSDesign`` implement it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the position draw surface"
        )

    def update_positions(self, unit: PositionUnit, labels: np.ndarray) -> None:
        """Fold one position unit into the estimator.

        ``labels`` is a boolean array aligned with ``unit.positions``
        (typically ``label_array[unit.positions]``).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the position update surface"
        )

    # ------------------------------------------------------------------ #
    # Conveniences shared by all designs
    # ------------------------------------------------------------------ #
    def update_all(self, units: list[SampleUnit], labels: dict[Triple, bool]) -> None:
        """Update the estimator with several units at once."""
        for unit in units:
            self.update(unit, labels)

    def update_all_positions(self, units: list[PositionUnit], label_array: np.ndarray) -> None:
        """Update the estimator with several position units at once.

        ``label_array`` is a position-aligned boolean array over the whole
        graph (see ``KnowledgeGraph.position_label_array``).
        """
        for unit in units:
            self.update_positions(unit, label_array[unit.positions])

    @property
    def exhausted(self) -> bool:
        """Whether the design can no longer produce new sample units."""
        return False
