"""Two-stage *random* cluster sampling (TSRCS) — the ablation the paper omits.

Section 5.2.3 notes that "a similar approach can be applied to two-stage
random cluster sampling; however, due to its inferior performance, we omit the
discussion."  This module implements that omitted variant so the claim can be
checked empirically (see ``benchmarks/bench_ablation_tsrcs.py``):

1. **First stage** — draw entity clusters *uniformly at random* with
   replacement (not size-weighted).
2. **Second stage** — within each sampled cluster, draw ``min(M_i, m)``
   triples by SRS without replacement.

Because the first stage ignores cluster sizes, the estimator must re-weight
each sampled cluster by its size to stay unbiased (a Hansen–Hurwitz estimator
with uniform inclusion probabilities):

    µ̂ = (N / (M n)) Σ_k M_{I_k} µ̂_{I_k}

which inherits exactly the weakness of RCS: its variance scales with the
spread of cluster sizes, so it loses to TWCS whenever sizes are skewed — which
is why the paper drops it.
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.sampling.base import Estimate, SampleUnit, SamplingDesign
from repro.stats.running import RunningMean

__all__ = ["TwoStageRandomClusterDesign"]


class TwoStageRandomClusterDesign(SamplingDesign):
    """Uniform first-stage cluster draws with a capped SRS second stage.

    Parameters
    ----------
    graph:
        The knowledge graph to evaluate.
    second_stage_size:
        The cap ``m`` on triples annotated per sampled cluster.
    seed:
        Seed or generator for reproducible draws.
    """

    unit_name = "cluster"

    def __init__(
        self,
        graph: KnowledgeGraph,
        second_stage_size: int = 5,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if second_stage_size < 1:
            raise ValueError("second_stage_size must be at least 1")
        if graph.num_triples == 0:
            raise ValueError("cannot sample from an empty knowledge graph")
        self.graph = graph
        self.second_stage_size = second_stage_size
        self._rng = np.random.default_rng(seed)
        self._entity_ids = list(graph.entity_ids)
        self._values = RunningMean()
        self._num_triples = 0

    def reset(self) -> None:
        """Clear the accumulated per-cluster values."""
        self._values = RunningMean()
        self._num_triples = 0

    def draw(self, count: int) -> list[SampleUnit]:
        """Draw ``count`` clusters uniformly (with replacement), ``m``-capped."""
        if count < 0:
            raise ValueError("count must be non-negative")
        indices = self._rng.integers(0, len(self._entity_ids), size=count)
        units = []
        for index in indices:
            entity_id = self._entity_ids[int(index)]
            cluster_size = self.graph.cluster_size(entity_id)
            triples = self.graph.sample_cluster_triples(
                entity_id, self.second_stage_size, self._rng
            )
            units.append(
                SampleUnit(
                    triples=tuple(triples),
                    entity_id=entity_id,
                    cluster_size=cluster_size,
                )
            )
        return units

    def update(self, unit: SampleUnit, labels: dict[Triple, bool]) -> None:
        """Add the size-reweighted value ``(N / M) * M_i * µ̂_i`` of one cluster."""
        within_accuracy = (
            sum(1 for triple in unit.triples if labels[triple]) / unit.num_triples
        )
        scale = self.graph.num_entities / self.graph.num_triples
        self._values.add(scale * unit.cluster_size * within_accuracy)
        self._num_triples += unit.num_triples

    def estimate(self) -> Estimate:
        """Mean of the re-weighted per-cluster values with its standard error."""
        return Estimate(
            value=self._values.mean,
            std_error=self._values.std_error,
            num_units=self._values.count,
            num_triples=self._num_triples,
        )
