"""Two-stage *random* cluster sampling (TSRCS) — the ablation the paper omits.

Section 5.2.3 notes that "a similar approach can be applied to two-stage
random cluster sampling; however, due to its inferior performance, we omit the
discussion."  This module implements that omitted variant so the claim can be
checked empirically (see ``benchmarks/bench_ablation_tsrcs.py``):

1. **First stage** — draw entity clusters *uniformly at random* with
   replacement (not size-weighted).
2. **Second stage** — within each sampled cluster, draw ``min(M_i, m)``
   triples by SRS without replacement.

Because the first stage ignores cluster sizes, the estimator must re-weight
each sampled cluster by its size to stay unbiased (a Hansen–Hurwitz estimator
with uniform inclusion probabilities):

    µ̂ = (N / (M n)) Σ_k M_{I_k} µ̂_{I_k}

which inherits exactly the weakness of RCS: its variance scales with the
spread of cluster sizes, so it loses to TWCS whenever sizes are skewed — which
is why the paper drops it.
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.sampling.base import (
    Estimate,
    PositionUnit,
    SampleUnit,
    SamplingDesign,
    segment_label_sums,
)
from repro.stats.running import RunningMean

__all__ = ["TwoStageRandomClusterDesign"]


class TwoStageRandomClusterDesign(SamplingDesign):
    """Uniform first-stage cluster draws with a capped SRS second stage.

    Parameters
    ----------
    graph:
        The knowledge graph to evaluate.
    second_stage_size:
        The cap ``m`` on triples annotated per sampled cluster.
    seed:
        Seed or generator for reproducible draws.
    """

    unit_name = "cluster"

    def __init__(
        self,
        graph: KnowledgeGraph,
        second_stage_size: int = 5,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if second_stage_size < 1:
            raise ValueError("second_stage_size must be at least 1")
        if graph.num_triples == 0:
            raise ValueError("cannot sample from an empty knowledge graph")
        self.graph = graph
        self.second_stage_size = second_stage_size
        self._rng = np.random.default_rng(seed)
        self._sizes = graph.cluster_size_array()
        self._entity_ids_cache: list[str] | None = None
        self._values = RunningMean()
        self._num_triples = 0

    @property
    def _entity_ids(self) -> list[str]:
        if self._entity_ids_cache is None:
            self._entity_ids_cache = list(self.graph.entity_ids)
        return self._entity_ids_cache

    def reset(self) -> None:
        """Clear the accumulated per-cluster values."""
        self._values = RunningMean()
        self._num_triples = 0

    def draw(self, count: int) -> list[SampleUnit]:
        """Draw ``count`` clusters uniformly (with replacement), ``m``-capped."""
        if count < 0:
            raise ValueError("count must be non-negative")
        entity_ids = self._entity_ids
        indices = self._rng.integers(0, len(entity_ids), size=count)
        graph = self.graph
        units = []
        for index in indices:
            entity_id = entity_ids[int(index)]
            positions = graph.sample_cluster_positions(entity_id, self.second_stage_size, self._rng)
            units.append(
                SampleUnit(
                    triples=tuple(graph.triples_at(positions)),
                    entity_id=entity_id,
                    cluster_size=int(self._sizes[index]),
                    positions=positions,
                )
            )
        return units

    def draw_positions(self, count: int) -> list[PositionUnit]:
        """Draw ``count`` uniform clusters as position-only views."""
        if count < 0:
            raise ValueError("count must be non-negative")
        rows = self._rng.integers(0, self._sizes.shape[0], size=count)
        batches = self.graph.sample_cluster_positions_batch(rows, self.second_stage_size, self._rng)
        sizes = self._sizes
        return [
            PositionUnit(positions=positions, entity_row=int(row), cluster_size=int(sizes[row]))
            for row, positions in zip(rows, batches)
        ]

    def update(self, unit: SampleUnit, labels: dict[Triple, bool]) -> None:
        """Add the size-reweighted value ``(N / M) * M_i * µ̂_i`` of one cluster."""
        within_accuracy = sum(1 for triple in unit.triples if labels[triple]) / unit.num_triples
        scale = self.graph.num_entities / self.graph.num_triples
        self._values.add(scale * unit.cluster_size * within_accuracy)
        self._num_triples += unit.num_triples

    def update_positions(self, unit: PositionUnit, labels: np.ndarray) -> None:
        """Position-surface twin of :meth:`update`."""
        scale = self.graph.num_entities / self.graph.num_triples
        self._values.add(scale * unit.cluster_size * float(labels.mean()))
        self._num_triples += int(labels.shape[0])

    def update_all_positions(self, units: list[PositionUnit], label_array: np.ndarray) -> None:
        """Vectorised batch update: one gather + ``reduceat`` for the whole batch."""
        if not units:
            return
        counts, sums = segment_label_sums(units, label_array)
        sizes = np.fromiter(
            (unit.cluster_size for unit in units), dtype=np.float64, count=len(units)
        )
        scale = self.graph.num_entities / self.graph.num_triples
        self._values.add_many(scale * sizes * (sums / counts))
        self._num_triples += int(counts.sum())

    def estimate(self) -> Estimate:
        """Mean of the re-weighted per-cluster values with its standard error."""
        return Estimate(
            value=self._values.mean,
            std_error=self._values.std_error,
            num_units=self._values.count,
            num_triples=self._num_triples,
        )
