"""Simple random sampling of triples (Section 5.1).

Triples are drawn uniformly without replacement; the estimator is the sample
mean ``µ̂_s`` (Eq. 5) with the Normal-approximation interval
``µ̂_s ± z * sqrt(µ̂_s (1 - µ̂_s) / n_s)``.

Although each triple is drawn independently, annotators still group sampled
triples by subject id when carrying out the task, so the *cost* of an SRS
sample is governed by the number of distinct entities hit — which is why SRS
loses to cluster sampling on large KGs despite needing slightly fewer triples.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.sampling.base import Estimate, PositionUnit, SampleUnit, SamplingDesign

__all__ = ["SimpleRandomDesign"]


class SimpleRandomDesign(SamplingDesign):
    """Triple-level simple random sampling without replacement.

    Parameters
    ----------
    graph:
        The knowledge graph to evaluate.
    seed:
        Seed or generator for reproducible draws.
    """

    unit_name = "triple"

    def __init__(
        self, graph: KnowledgeGraph, seed: int | np.random.Generator | None = None
    ) -> None:
        self.graph = graph
        self._rng = np.random.default_rng(seed)
        self._remaining: np.ndarray | None = None
        self._cursor = 0
        self._num_correct = 0
        self._num_annotated = 0

    # ------------------------------------------------------------------ #
    # SamplingDesign interface
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Forget the draw order and all accumulated labels."""
        self._remaining = None
        self._cursor = 0
        self._num_correct = 0
        self._num_annotated = 0

    def _ensure_permutation(self) -> None:
        if self._remaining is None:
            self._remaining = self._rng.permutation(self.graph.num_triples)
            self._cursor = 0

    @property
    def exhausted(self) -> bool:
        """Whether every triple of the graph has already been drawn."""
        self._ensure_permutation()
        assert self._remaining is not None
        return self._cursor >= self._remaining.size

    def _next_positions(self, count: int) -> np.ndarray:
        self._ensure_permutation()
        assert self._remaining is not None
        end = min(self._cursor + count, self._remaining.size)
        positions = self._remaining[self._cursor : end]
        self._cursor = end
        return positions

    def draw(self, count: int) -> list[SampleUnit]:
        """Draw up to ``count`` previously undrawn triples uniformly at random."""
        if count < 0:
            raise ValueError("count must be non-negative")
        positions = self._next_positions(count)
        triples = self.graph.triples_at(positions)
        return [
            SampleUnit(
                triples=(triple,),
                entity_id=None,
                cluster_size=1,
                positions=positions[index : index + 1],
            )
            for index, triple in enumerate(triples)
        ]

    def draw_positions(self, count: int) -> list[PositionUnit]:
        """Draw up to ``count`` undrawn triples as single-position units."""
        if count < 0:
            raise ValueError("count must be non-negative")
        positions = self._next_positions(count)
        return [
            PositionUnit(positions=positions[index : index + 1], entity_row=-1, cluster_size=1)
            for index in range(positions.shape[0])
        ]

    def update(self, unit: SampleUnit, labels: dict[Triple, bool]) -> None:
        """Add the labels of one drawn triple to the running proportion."""
        for triple in unit.triples:
            self._num_annotated += 1
            if labels[triple]:
                self._num_correct += 1

    def update_positions(self, unit: PositionUnit, labels: np.ndarray) -> None:
        """Position-surface twin of :meth:`update`."""
        self._num_annotated += int(labels.shape[0])
        self._num_correct += int(labels.sum())

    def update_all_positions(self, units: list[PositionUnit], label_array: np.ndarray) -> None:
        """Vectorised batch update: one flat gather for the whole batch."""
        if not units:
            return
        flat = np.concatenate([unit.positions for unit in units])
        self._num_annotated += int(flat.shape[0])
        self._num_correct += int(label_array[flat].sum())

    def estimate(self) -> Estimate:
        """Sample mean with the binomial-proportion standard error (Eq. 5)."""
        n = self._num_annotated
        if n == 0:
            return Estimate(value=0.0, std_error=math.inf, num_units=0, num_triples=0)
        p_hat = self._num_correct / n
        if n < 2:
            std_error = math.inf
        else:
            std_error = math.sqrt(p_hat * (1.0 - p_hat) / n)
        return Estimate(value=p_hat, std_error=std_error, num_units=n, num_triples=n)
