"""Fitting the cost-model parameters ``(c1, c2)`` from timing observations.

Section 7.1.3 / Figure 4 of the paper: given measured annotation times for
several tasks — each characterised by the number of distinct entities and the
number of triples annotated — fit Eq. (4) by least squares and check how well
the fitted function approximates observed times.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.cost.model import CostModel

__all__ = ["CostObservation", "CostFit", "fit_cost_model"]


@dataclass(frozen=True)
class CostObservation:
    """One measured annotation task.

    Parameters
    ----------
    num_entities:
        Distinct subject entities identified during the task.
    num_triples:
        Triples validated during the task.
    observed_seconds:
        Measured wall-clock annotation time in seconds.
    """

    num_entities: int
    num_triples: int
    observed_seconds: float


@dataclass(frozen=True)
class CostFit:
    """Result of fitting Eq. (4) to timing observations."""

    model: CostModel
    residual_seconds: tuple[float, ...]
    r_squared: float

    @property
    def identification_cost(self) -> float:
        """Fitted ``c1`` in seconds."""
        return self.model.identification_cost

    @property
    def validation_cost(self) -> float:
        """Fitted ``c2`` in seconds."""
        return self.model.validation_cost


def fit_cost_model(observations: Sequence[CostObservation]) -> CostFit:
    """Fit ``c1`` and ``c2`` by non-negative least squares.

    The design matrix has one row per observation, with columns
    ``[num_entities, num_triples]``; the response is the observed time.  The
    non-negativity constraint matches the physical meaning of the parameters
    (both are average times), and is enforced with ``scipy.optimize.nnls``.

    Raises
    ------
    ValueError
        If fewer than two observations are provided (the fit would be
        underdetermined).
    """
    if len(observations) < 2:
        raise ValueError("at least two observations are required to fit (c1, c2)")
    from scipy.optimize import nnls

    design = np.array([[obs.num_entities, obs.num_triples] for obs in observations], dtype=float)
    response = np.array([obs.observed_seconds for obs in observations], dtype=float)
    coefficients, _ = nnls(design, response)
    model = CostModel(
        identification_cost=float(coefficients[0]),
        validation_cost=float(coefficients[1]),
    )
    predicted = design @ coefficients
    residuals = response - predicted
    total_variation = float(np.sum((response - response.mean()) ** 2))
    if np.isclose(total_variation, 0.0):
        r_squared = 1.0 if np.allclose(residuals, 0.0) else 0.0
    else:
        r_squared = 1.0 - float(np.sum(residuals**2)) / total_variation
    return CostFit(
        model=model,
        residual_seconds=tuple(float(r) for r in residuals),
        r_squared=r_squared,
    )
