"""The Sample Pool: turning sampled triples into evaluation tasks for annotators.

Figure 2 of the paper places a *Sample Pool* between the sample collector and
the estimator: it accumulates sampled triples, groups them by subject into
Evaluation Tasks (Section 3.1), and hands the tasks to human annotators.  The
framework is "independent of the manual annotation process — users can specify
either single evaluation or multiple evaluations (assigned to different
annotators) per Evaluation Task" (Section 4).

This module implements that component for the simulated setting:

* :class:`NoisyAnnotator` — a simulated annotator whose labels are wrong with
  a configurable probability, standing in for imperfect human workers;
* :class:`AnnotationTaskPool` — groups triples into per-entity tasks, assigns
  each task to one or more annotators (round-robin), resolves disagreements by
  majority vote and accounts for the total annotation cost across the crew.

The pool exposes the same ``annotate_triples`` / cost-accounting interface as
:class:`~repro.cost.annotator.SimulatedAnnotator`, so it can be dropped into
:class:`~repro.core.framework.StaticEvaluator` unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.cost.annotator import AnnotationResult, EvaluationTask, SimulatedAnnotator
from repro.cost.model import CostModel
from repro.kg.triple import Triple
from repro.labels.oracle import LabelOracle

__all__ = ["NoisyAnnotator", "TaskRecord", "AnnotationTaskPool"]


class NoisyAnnotator(SimulatedAnnotator):
    """A simulated annotator that makes mistakes.

    Parameters
    ----------
    oracle:
        Ground-truth labels.
    label_error_rate:
        Probability that each produced label is flipped relative to the truth.
    cost_model, time_noise_sigma, seed:
        As in :class:`~repro.cost.annotator.SimulatedAnnotator`.
    """

    def __init__(
        self,
        oracle: LabelOracle,
        label_error_rate: float = 0.05,
        cost_model: CostModel | None = None,
        time_noise_sigma: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= label_error_rate <= 1.0:
            raise ValueError("label_error_rate must be in [0, 1]")
        # Derive independent child streams for timing noise and label flips.
        # Passing the same `seed` to both would make them identical streams:
        # the k-th label flip and the k-th time-noise factor would be driven
        # by the same underlying draws, silently correlating label errors
        # with annotation cost.
        if isinstance(seed, np.random.Generator):
            cost_rng: np.random.Generator | np.random.SeedSequence = seed
            # Generator.spawn derives an independent child stream without
            # advancing the parent, so callers sharing `seed` are unaffected.
            label_rng_or_seed: np.random.Generator | np.random.SeedSequence = seed.spawn(1)[0]
        else:
            cost_rng, label_rng_or_seed = np.random.SeedSequence(seed).spawn(2)
        super().__init__(
            oracle, cost_model=cost_model, time_noise_sigma=time_noise_sigma, seed=cost_rng
        )
        self.label_error_rate = label_error_rate
        self._label_rng = np.random.default_rng(label_rng_or_seed)

    def annotate_triples(self, triples: Iterable[Triple]) -> AnnotationResult:
        """Annotate triples, flipping each fresh label with the error rate."""
        triples = list(triples)
        fresh = [t for t in triples if t not in self.labelled_triples]
        result = super().annotate_triples(triples)
        if self.label_error_rate == 0.0 or not fresh:
            return result
        flips = self._label_rng.random(len(fresh)) < self.label_error_rate
        labels = dict(result.labels)
        for triple, flip in zip(fresh, flips):
            if flip:
                labels[triple] = not labels[triple]
                self._session.labelled[triple] = labels[triple]
        return AnnotationResult(
            labels=labels,
            cost_seconds=result.cost_seconds,
            newly_identified_entities=result.newly_identified_entities,
            num_triples=result.num_triples,
        )


@dataclass(frozen=True)
class TaskRecord:
    """Bookkeeping for one dispatched evaluation task."""

    task: EvaluationTask
    annotator_indices: tuple[int, ...]
    labels: dict[Triple, bool]
    cost_seconds: float


class AnnotationTaskPool:
    """Groups sampled triples into per-entity tasks and dispatches them to a crew.

    Parameters
    ----------
    annotators:
        The available annotators.  A single annotator reproduces the default
        single-evaluation setting of the paper exactly.
    annotations_per_task:
        How many distinct annotators label each evaluation task; disagreements
        are resolved by majority vote (ties resolve to the first assigned
        annotator's label).
    """

    def __init__(
        self,
        annotators: Sequence[SimulatedAnnotator],
        annotations_per_task: int = 1,
    ) -> None:
        if not annotators:
            raise ValueError("at least one annotator is required")
        if not 1 <= annotations_per_task <= len(annotators):
            raise ValueError("annotations_per_task must be between 1 and the number of annotators")
        self.annotators = list(annotators)
        self.annotations_per_task = annotations_per_task
        self._next_annotator = 0
        self.records: list[TaskRecord] = []

    # ------------------------------------------------------------------ #
    # Task construction and dispatch
    # ------------------------------------------------------------------ #
    @staticmethod
    def build_tasks(triples: Iterable[Triple]) -> list[EvaluationTask]:
        """Group triples by subject id into evaluation tasks (Section 3.1)."""
        grouped: dict[str, list[Triple]] = {}
        for triple in triples:
            grouped.setdefault(triple.subject, []).append(triple)
        return [
            EvaluationTask(entity_id, tuple(entity_triples))
            for entity_id, entity_triples in grouped.items()
        ]

    def _assign(self) -> tuple[int, ...]:
        indices = tuple(
            (self._next_annotator + offset) % len(self.annotators)
            for offset in range(self.annotations_per_task)
        )
        self._next_annotator = (self._next_annotator + 1) % len(self.annotators)
        return indices

    def annotate_task(self, task: EvaluationTask) -> TaskRecord:
        """Dispatch one task to ``annotations_per_task`` annotators and vote."""
        indices = self._assign()
        cost_before = self.total_cost_seconds
        votes: dict[Triple, list[bool]] = {triple: [] for triple in task.triples}
        for index in indices:
            result = self.annotators[index].annotate_task(task)
            for triple in task.triples:
                votes[triple].append(result.labels[triple])
        labels = {
            triple: (sum(ballots) * 2 > len(ballots))
            or (sum(ballots) * 2 == len(ballots) and ballots[0])
            for triple, ballots in votes.items()
        }
        record = TaskRecord(
            task=task,
            annotator_indices=indices,
            labels=labels,
            cost_seconds=self.total_cost_seconds - cost_before,
        )
        self.records.append(record)
        return record

    def annotate_triples(self, triples: Iterable[Triple]) -> AnnotationResult:
        """Annotate a batch of triples through the pool (drop-in annotator API)."""
        tasks = self.build_tasks(triples)
        cost_before = self.total_cost_seconds
        triples_before = self.total_triples_annotated
        entities_before = self.entities_identified
        labels: dict[Triple, bool] = {}
        for task in tasks:
            labels.update(self.annotate_task(task).labels)
        return AnnotationResult(
            labels=labels,
            cost_seconds=self.total_cost_seconds - cost_before,
            newly_identified_entities=self.entities_identified - entities_before,
            num_triples=self.total_triples_annotated - triples_before,
        )

    def reset(self) -> None:
        """Start a fresh session on every annotator and clear task records."""
        for annotator in self.annotators:
            annotator.reset()
        self.records.clear()
        self._next_annotator = 0

    # ------------------------------------------------------------------ #
    # Aggregated accounting (SimulatedAnnotator-compatible surface)
    # ------------------------------------------------------------------ #
    @property
    def total_cost_seconds(self) -> float:
        """Total annotation time charged across the whole crew."""
        return sum(a.total_cost_seconds for a in self.annotators)

    @property
    def total_cost_hours(self) -> float:
        """Total crew annotation time in hours."""
        return self.total_cost_seconds / 3600.0

    @property
    def total_triples_annotated(self) -> int:
        """Distinct (annotator, triple) labelling acts performed so far."""
        return sum(a.total_triples_annotated for a in self.annotators)

    @property
    def entities_identified(self) -> int:
        """Entity identifications performed across the crew (re-identification
        by a second annotator counts, as it costs real time)."""
        return sum(a.entities_identified for a in self.annotators)

    @property
    def labelled_triples(self) -> dict[Triple, bool]:
        """The majority-vote labels produced so far."""
        combined: dict[Triple, bool] = {}
        for record in self.records:
            combined.update(record.labels)
        return combined
