"""The approximate evaluation cost function, Eq. (4) of the paper.

``Cost(G') = |E'| * c1 + |G'| * c2`` where ``E'`` is the set of distinct
subject ids in the sample ``G'``, ``c1`` is the average cost of entity
identification and ``c2`` the average cost of relationship validation.  The
paper fits ``c1 = 45`` seconds and ``c2 = 25`` seconds from the MOVIE
annotation study (Section 7.1.3); those are the defaults here.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.kg.triple import Triple

__all__ = ["CostModel"]

#: Paper-fitted average entity-identification cost, in seconds (Section 7.1.3).
DEFAULT_IDENTIFICATION_COST_SECONDS = 45.0
#: Paper-fitted average relationship-validation cost, in seconds (Section 7.1.3).
DEFAULT_VALIDATION_COST_SECONDS = 25.0


@dataclass(frozen=True)
class CostModel:
    """Parameters of the annotation cost function Eq. (4).

    Parameters
    ----------
    identification_cost:
        ``c1`` — average seconds to identify one subject entity.
    validation_cost:
        ``c2`` — average seconds to validate one triple once its subject has
        been identified.
    """

    identification_cost: float = DEFAULT_IDENTIFICATION_COST_SECONDS
    validation_cost: float = DEFAULT_VALIDATION_COST_SECONDS

    def __post_init__(self) -> None:
        if self.identification_cost < 0 or self.validation_cost < 0:
            raise ValueError("cost parameters must be non-negative")

    # ------------------------------------------------------------------ #
    # Eq. (4)
    # ------------------------------------------------------------------ #
    def cost_seconds(self, num_entities: int, num_triples: int) -> float:
        """Cost in seconds of annotating ``num_triples`` triples drawn from
        ``num_entities`` distinct subject entities."""
        if num_entities < 0 or num_triples < 0:
            raise ValueError("counts must be non-negative")
        return num_entities * self.identification_cost + num_triples * self.validation_cost

    def cost_hours(self, num_entities: int, num_triples: int) -> float:
        """Same as :meth:`cost_seconds` but expressed in hours, the unit used
        by the paper's tables."""
        return self.cost_seconds(num_entities, num_triples) / 3600.0

    def sample_cost_seconds(self, triples: Iterable[Triple]) -> float:
        """Cost in seconds of annotating the given sample of triples.

        Distinct subjects are counted from the sample itself, matching the
        definition of ``E'`` in Eq. (4).
        """
        subjects: set[str] = set()
        count = 0
        for triple in triples:
            subjects.add(triple.subject)
            count += 1
        return self.cost_seconds(len(subjects), count)

    def sample_cost_hours(self, triples: Iterable[Triple]) -> float:
        """Sample cost in hours."""
        return self.sample_cost_seconds(triples) / 3600.0

    # ------------------------------------------------------------------ #
    # Helpers used by the optimal-m search (Eq. 12)
    # ------------------------------------------------------------------ #
    def per_cluster_cost_upper_bound(self, second_stage_size: int) -> float:
        """Upper-bound cost of annotating one sampled cluster under TWCS.

        Assumes the cluster has at least ``second_stage_size`` triples, i.e.
        the bound ``c1 + m * c2`` used in the optimisation objective Eq. (11).
        """
        if second_stage_size < 1:
            raise ValueError("second_stage_size must be at least 1")
        return self.identification_cost + second_stage_size * self.validation_cost
