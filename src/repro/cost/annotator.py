"""A simulated human annotator.

The paper's framework is "generic and independent of the manual annotation
process" (Section 4): the sampling designs only need correctness labels for
the triples they draw, plus an account of how much annotator time those labels
cost.  :class:`SimulatedAnnotator` substitutes for the human annotators used
in the paper:

* labels come from a ground-truth :class:`~repro.labels.oracle.LabelOracle`
  (real annotated files or synthetic label models);
* time is charged with the cost model of Eq. (4) — ``c1`` the first time a
  subject entity is identified within an annotation session and ``c2`` per
  validated triple — optionally with per-step lognormal noise so that
  individual runs resemble the jagged cumulative-time curves of Figure 1.

The substitution preserves the quantities every experiment in the paper
reports: which triples get labelled, what they cost under Eq. (4), and the
resulting estimates.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.cost.model import CostModel
from repro.kg.triple import Triple
from repro.labels.oracle import LabelOracle

__all__ = [
    "EvaluationTask",
    "AnnotationResult",
    "SimulatedAnnotator",
    "PositionAnnotationAccount",
]


@dataclass(frozen=True)
class EvaluationTask:
    """A group of triples sharing a subject id, handed to an annotator at once.

    Section 3.1: sampled triples are prepared (grouped) by their subjects for
    manual evaluation, so the entity only needs to be identified once.
    """

    entity_id: str
    triples: tuple[Triple, ...]

    def __post_init__(self) -> None:
        if not self.triples:
            raise ValueError("an evaluation task must contain at least one triple")
        mismatched = [t for t in self.triples if t.subject != self.entity_id]
        if mismatched:
            raise ValueError(
                f"task for entity {self.entity_id!r} contains triples of other subjects"
            )

    @property
    def size(self) -> int:
        """Number of triples in the task."""
        return len(self.triples)


@dataclass(frozen=True)
class AnnotationResult:
    """Labels and cost for one batch of annotation work."""

    labels: dict[Triple, bool]
    cost_seconds: float
    newly_identified_entities: int
    num_triples: int

    @property
    def cost_hours(self) -> float:
        """Cost in hours (the unit used by the paper's tables)."""
        return self.cost_seconds / 3600.0


@dataclass
class _SessionState:
    """Mutable per-session bookkeeping for a simulated annotator."""

    identified_entities: set[str] = field(default_factory=set)
    total_seconds: float = 0.0
    total_triples: int = 0
    labelled: dict[Triple, bool] = field(default_factory=dict)


class SimulatedAnnotator:
    """Annotates triples against a ground-truth oracle, charging Eq. (4) time.

    Parameters
    ----------
    oracle:
        Ground-truth labels.
    cost_model:
        The ``(c1, c2)`` cost parameters; defaults to the paper's fit.
    time_noise_sigma:
        When positive, each charged cost component is multiplied by an
        independent lognormal factor with this log-scale sigma, so that single
        runs show realistic variation (used for Figure 1 / Figure 4).  The
        noise has mean 1, so expected costs still follow Eq. (4) exactly.
    seed:
        Seed or generator for the timing noise.

    Notes
    -----
    Entity identification is charged once per distinct subject id *per
    session*.  Call :meth:`reset` to start a new session (a new evaluation
    run); the experiment harness does this between independent trials.
    """

    def __init__(
        self,
        oracle: LabelOracle,
        cost_model: CostModel | None = None,
        time_noise_sigma: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if time_noise_sigma < 0:
            raise ValueError("time_noise_sigma must be non-negative")
        self.oracle = oracle
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.time_noise_sigma = time_noise_sigma
        self._rng = np.random.default_rng(seed)
        self._session = _SessionState()

    # ------------------------------------------------------------------ #
    # Session accounting
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Forget identified entities and accumulated cost (new session)."""
        self._session = _SessionState()

    @property
    def total_cost_seconds(self) -> float:
        """Total annotation time charged in the current session."""
        return self._session.total_seconds

    @property
    def total_cost_hours(self) -> float:
        """Total annotation time in hours for the current session."""
        return self._session.total_seconds / 3600.0

    @property
    def total_triples_annotated(self) -> int:
        """Number of (distinct) triples labelled in the current session."""
        return self._session.total_triples

    @property
    def entities_identified(self) -> int:
        """Number of distinct entities identified in the current session."""
        return len(self._session.identified_entities)

    @property
    def labelled_triples(self) -> dict[Triple, bool]:
        """All labels produced in the current session."""
        return dict(self._session.labelled)

    # ------------------------------------------------------------------ #
    # Annotation
    # ------------------------------------------------------------------ #
    def _noise_factor(self) -> float:
        if self.time_noise_sigma == 0.0:
            return 1.0
        sigma = self.time_noise_sigma
        # Lognormal with mean exactly 1: exp(N(-sigma^2/2, sigma^2)).
        return float(np.exp(self._rng.normal(-0.5 * sigma * sigma, sigma)))

    def annotate_task(self, task: EvaluationTask) -> AnnotationResult:
        """Annotate one evaluation task (triples sharing a subject)."""
        return self.annotate_triples(task.triples)

    def annotate_triples(self, triples: Iterable[Triple]) -> AnnotationResult:
        """Annotate an arbitrary batch of triples.

        Triples are implicitly grouped by subject: identification cost is only
        charged for subjects not yet identified in this session, and a triple
        already labelled in this session is neither re-labelled nor re-charged.
        """
        labels: dict[Triple, bool] = {}
        cost = 0.0
        new_entities = 0
        new_triples = 0
        for triple in triples:
            if triple in self._session.labelled:
                labels[triple] = self._session.labelled[triple]
                continue
            if triple.subject not in self._session.identified_entities:
                self._session.identified_entities.add(triple.subject)
                cost += self.cost_model.identification_cost * self._noise_factor()
                new_entities += 1
            label = self.oracle.label(triple)
            cost += self.cost_model.validation_cost * self._noise_factor()
            labels[triple] = label
            self._session.labelled[triple] = label
            new_triples += 1
        self._session.total_seconds += cost
        self._session.total_triples += new_triples
        return AnnotationResult(
            labels=labels,
            cost_seconds=cost,
            newly_identified_entities=new_entities,
            num_triples=new_triples,
        )

    def annotate_with_timeline(
        self, triples: Sequence[Triple]
    ) -> tuple[AnnotationResult, list[float]]:
        """Annotate triples one by one and return the cumulative-time curve.

        Used to reproduce Figure 1 (cumulative evaluation time after each
        triple for triple-level vs entity-level tasks).
        """
        timeline: list[float] = []
        combined_labels: dict[Triple, bool] = {}
        cost_before = self.total_cost_seconds
        entities_before = self.entities_identified
        triples_before = self.total_triples_annotated
        for triple in triples:
            result = self.annotate_triples([triple])
            combined_labels.update(result.labels)
            timeline.append(self.total_cost_seconds - cost_before)
        aggregate = AnnotationResult(
            labels=combined_labels,
            cost_seconds=self.total_cost_seconds - cost_before,
            newly_identified_entities=self.entities_identified - entities_before,
            num_triples=self.total_triples_annotated - triples_before,
        )
        return aggregate, timeline


class PositionAnnotationAccount:
    """Eq. (4) cost accounting for position-surface annotation flows.

    The position surface never materialises Triple objects, so sampled work
    arrives as ``(entity_key, positions)`` pairs of plain integers: the
    cluster's global entity row and the global triple positions selected for
    annotation.  The account mirrors :class:`SimulatedAnnotator`'s session
    semantics exactly — ``c1`` is charged once per distinct entity, ``c2``
    once per distinct triple position, and re-annotating already-labelled
    positions is free — which keeps position-mode cost reports comparable to
    (and as deterministic as) the object-mode ones.

    :meth:`mark_annotated` seeds the account without charging, so a
    monitoring run resumed from a snapshot (format v2 ``annotated`` array)
    does not pay again for annotations persisted by the previous run.
    """

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._identified: set[int] = set()
        self._annotated: set[int] = set()
        self._total_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Charging
    # ------------------------------------------------------------------ #
    def charge(self, entity_key: int, positions: np.ndarray | Sequence[int]) -> int:
        """Charge for annotating ``positions`` of cluster ``entity_key``.

        Returns the number of newly annotated positions (0 when every
        position was already labelled in this session, in which case no
        identification cost is charged either).
        """
        annotated = self._annotated
        new_positions = [int(p) for p in positions if int(p) not in annotated]
        if not new_positions:
            return 0
        cost = self.cost_model.validation_cost * len(new_positions)
        if entity_key not in self._identified:
            self._identified.add(entity_key)
            cost += self.cost_model.identification_cost
        annotated.update(new_positions)
        self._total_seconds += cost
        return len(new_positions)

    def mark_annotated(self, entity_key: int, positions: np.ndarray | Sequence[int]) -> None:
        """Record positions as already annotated without charging any cost."""
        self._identified.add(entity_key)
        self._annotated.update(int(p) for p in positions)

    # ------------------------------------------------------------------ #
    # Read-outs
    # ------------------------------------------------------------------ #
    @property
    def total_cost_seconds(self) -> float:
        """Total annotation time charged so far."""
        return self._total_seconds

    @property
    def total_triples_annotated(self) -> int:
        """Number of distinct triple positions annotated so far."""
        return len(self._annotated)

    @property
    def entities_identified(self) -> int:
        """Number of distinct entities identified so far."""
        return len(self._identified)

    def annotated_mask(self, num_triples: int) -> np.ndarray:
        """Annotated positions as a boolean array of length ``num_triples``."""
        mask = np.zeros(num_triples, dtype=bool)
        if self._annotated:
            mask[np.fromiter(self._annotated, dtype=np.int64, count=len(self._annotated))] = True
        return mask
