"""Annotation-cost modelling.

The central observation of the paper (Section 3) is that the human cost of
annotating a sample is not proportional to the number of triples: annotators
first *identify* the subject entity of an evaluation task (cost ``c1`` per
distinct entity) and then *validate* each relationship (cost ``c2`` per
triple).  This subpackage implements:

* the approximate cost function Eq. (4), :class:`~repro.cost.model.CostModel`;
* a :class:`~repro.cost.annotator.SimulatedAnnotator` that replays the
  annotation process against a ground-truth oracle while charging time with
  that cost model (and optional per-task noise, used to reproduce Figure 1);
* least-squares fitting of ``(c1, c2)`` from timing observations
  (:mod:`repro.cost.fitting`, Figure 4).
"""

from repro.cost.annotator import (
    AnnotationResult,
    EvaluationTask,
    PositionAnnotationAccount,
    SimulatedAnnotator,
)
from repro.cost.fitting import CostFit, CostObservation, fit_cost_model
from repro.cost.model import CostModel
from repro.cost.pool import AnnotationTaskPool, NoisyAnnotator, TaskRecord

__all__ = [
    "CostModel",
    "EvaluationTask",
    "AnnotationResult",
    "SimulatedAnnotator",
    "PositionAnnotationAccount",
    "NoisyAnnotator",
    "AnnotationTaskPool",
    "TaskRecord",
    "CostObservation",
    "CostFit",
    "fit_cost_model",
]
