"""Reservoir Incremental Evaluation — Algorithm 1 of the paper (Section 6.1).

The evaluator maintains a size-weighted sample of entity clusters using the
Efraimidis–Spirakis A-Res keys ``u^{1/weight}``:

* every cluster of the base KG receives a key; the clusters with the largest
  keys form the *reservoir* and are the only ones annotated (at most ``m``
  triples each, as in TWCS);
* when an insertion batch ``Δ`` arrives, each per-entity insertion set ``Δ_e``
  is treated as a brand-new cluster (so weights stay constant), receives a key
  ``u^{1/|Δ_e|}`` and replaces the minimum-key reservoir item whenever its key
  is larger — the replacement step of Algorithm 1;
* the accuracy estimate is the mean of the per-cluster sample accuracies of
  the clusters currently in the reservoir;
* if, after the stochastic refresh, the margin of error exceeds the threshold,
  the reservoir is grown: the not-yet-annotated cluster with the next-largest
  key is pulled in and annotated, exactly as if the static evaluation had
  asked for one more first-stage draw.

Keeping the keys of *all* clusters (annotated or not) makes the reservoir
nested in its capacity, so growing it later never contradicts an earlier
sampling decision.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.core.result import EvaluationReport
from repro.evolving.base import IncrementalEvaluator, UpdateEvaluation
from repro.kg.triple import Triple
from repro.kg.updates import UpdateBatch
from repro.labels.oracle import LabelOracle
from repro.sampling.base import Estimate

__all__ = ["ReservoirIncrementalEvaluator"]


@dataclass
class _ReservoirEntry:
    """One annotated cluster currently in the reservoir."""

    cluster_key: str
    key: float
    weight: float
    triples: tuple[Triple, ...]
    accuracy: float


class ReservoirIncrementalEvaluator(IncrementalEvaluator):
    """Incremental evaluation via weighted reservoir sampling (Algorithm 1)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = np.random.default_rng(self.seed)
        # Annotated clusters, as a min-heap on the A-Res key.
        self._reservoir: list[tuple[float, int, _ReservoirEntry]] = []
        # Clusters that received a key but were never annotated, as a max-heap
        # (negated keys); used when the reservoir needs to grow.
        self._candidates: list[tuple[float, int, str, float, tuple[Triple, ...]]] = []
        self._tiebreak = 0
        self._replacements_total = 0

    # ------------------------------------------------------------------ #
    # Key handling
    # ------------------------------------------------------------------ #
    def _draw_key(self, weight: float) -> float:
        uniform = max(float(self._rng.random()), np.finfo(float).tiny)
        return float(uniform ** (1.0 / weight))

    def _next_tiebreak(self) -> int:
        self._tiebreak += 1
        return self._tiebreak

    # ------------------------------------------------------------------ #
    # Annotation of one cluster (second stage of TWCS)
    # ------------------------------------------------------------------ #
    def _annotate_cluster(self, triples: tuple[Triple, ...]) -> tuple[tuple[Triple, ...], float]:
        take = min(len(triples), self.second_stage_size)
        chosen_indices = self._rng.choice(len(triples), size=take, replace=False)
        chosen = tuple(triples[int(i)] for i in chosen_indices)
        result = self.annotator.annotate_triples(chosen)
        accuracy = sum(1 for t in chosen if result.labels[t]) / len(chosen)
        return chosen, accuracy

    def _insert_annotated(
        self, cluster_key: str, key: float, weight: float, triples: tuple[Triple, ...]
    ) -> None:
        sampled, accuracy = self._annotate_cluster(triples)
        entry = _ReservoirEntry(
            cluster_key=cluster_key,
            key=key,
            weight=weight,
            triples=sampled,
            accuracy=accuracy,
        )
        heapq.heappush(self._reservoir, (key, self._next_tiebreak(), entry))

    def _push_candidate(
        self, cluster_key: str, key: float, weight: float, triples: tuple[Triple, ...]
    ) -> None:
        heapq.heappush(
            self._candidates, (-key, self._next_tiebreak(), cluster_key, weight, triples)
        )

    def _grow_reservoir(self, count: int) -> int:
        """Annotate the ``count`` highest-key candidates; return how many were added."""
        added = 0
        while added < count and self._candidates:
            negated_key, _, cluster_key, weight, triples = heapq.heappop(self._candidates)
            self._insert_annotated(cluster_key, -negated_key, weight, triples)
            added += 1
        return added

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def _current_estimate(self) -> Estimate:
        accuracies = [entry.accuracy for _, _, entry in self._reservoir]
        num_triples = sum(len(entry.triples) for _, _, entry in self._reservoir)
        n = len(accuracies)
        if n == 0:
            return Estimate(value=0.0, std_error=math.inf, num_units=0, num_triples=0)
        mean = float(np.mean(accuracies))
        if n < 2:
            std_error = math.inf
        else:
            std_error = float(np.std(accuracies, ddof=1) / math.sqrt(n))
        return Estimate(value=mean, std_error=std_error, num_units=n, num_triples=num_triples)

    def _satisfy_quality(self) -> tuple[Estimate, int]:
        """Grow the reservoir until the MoE target is met; return (estimate, iterations)."""
        config = self.config
        iterations = 0
        while True:
            estimate = self._current_estimate()
            enough = estimate.num_units >= config.min_units
            if enough and estimate.satisfies(config.moe_target, config.confidence_level):
                break
            if config.max_units is not None and estimate.num_units >= config.max_units:
                break
            if not self._candidates:
                break
            self._grow_reservoir(config.batch_size)
            iterations += 1
        return self._current_estimate(), iterations

    def _build_report(
        self,
        estimate: Estimate,
        iterations: int,
        cost_before: float,
        triples_before: int,
        entities_before: int,
    ) -> EvaluationReport:
        return EvaluationReport(
            estimate=estimate,
            confidence_level=self.config.confidence_level,
            moe_target=self.config.moe_target,
            satisfied=estimate.num_units >= self.config.min_units
            and estimate.satisfies(self.config.moe_target, self.config.confidence_level),
            iterations=iterations,
            num_units=estimate.num_units,
            num_triples_annotated=self.annotator.total_triples_annotated - triples_before,
            num_entities_identified=self.annotator.entities_identified - entities_before,
            annotation_cost_seconds=self.annotator.total_cost_seconds - cost_before,
        )

    # ------------------------------------------------------------------ #
    # IncrementalEvaluator interface
    # ------------------------------------------------------------------ #
    def evaluate_base(self) -> UpdateEvaluation:
        """Key every base cluster, annotate the top-key ones until the MoE target holds."""
        cost_before = self.annotator.total_cost_seconds
        triples_before = self.annotator.total_triples_annotated
        entities_before = self.annotator.entities_identified
        for cluster in self.evolving.base.clusters():
            key = self._draw_key(float(cluster.size))
            self._push_candidate(cluster.entity_id, key, float(cluster.size), cluster.triples)
        estimate, iterations = self._satisfy_quality()
        report = self._build_report(
            estimate, iterations, cost_before, triples_before, entities_before
        )
        return self._record("base", report)

    def apply_update(self, batch: UpdateBatch, batch_oracle: LabelOracle) -> UpdateEvaluation:
        """Algorithm 1: stochastically refresh the reservoir, then re-check quality."""
        if not self._reservoir:
            raise RuntimeError("evaluate_base() must be called before apply_update()")
        self._register_update(batch, batch_oracle)
        cost_before = self.annotator.total_cost_seconds
        triples_before = self.annotator.total_triples_annotated
        entities_before = self.annotator.entities_identified

        replacements = 0
        for cluster_key, insertion in batch.entity_insertions().items():
            weight = float(insertion.size)
            key = self._draw_key(weight)
            smallest_key, _, smallest_entry = self._reservoir[0]
            if key > smallest_key:
                # Replace the minimum-key cluster (its annotations are paid for
                # but no longer contribute to the estimator), as in Algorithm 1.
                heapq.heappop(self._reservoir)
                self._push_candidate(
                    smallest_entry.cluster_key,
                    smallest_entry.key,
                    smallest_entry.weight,
                    smallest_entry.triples,
                )
                self._insert_annotated(cluster_key, key, weight, insertion.triples)
                replacements += 1
            else:
                self._push_candidate(cluster_key, key, weight, insertion.triples)
        self._replacements_total += replacements

        estimate, iterations = self._satisfy_quality()
        report = self._build_report(
            estimate, iterations, cost_before, triples_before, entities_before
        )
        return self._record(batch.batch_id, report)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def reservoir_size(self) -> int:
        """Number of annotated clusters currently in the reservoir."""
        return len(self._reservoir)

    @property
    def total_replacements(self) -> int:
        """Total reservoir replacements performed across all update batches."""
        return self._replacements_total
