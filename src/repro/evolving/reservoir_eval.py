"""Reservoir Incremental Evaluation — Algorithm 1 of the paper (Section 6.1).

The evaluator maintains a size-weighted sample of entity clusters using the
Efraimidis–Spirakis A-Res keys ``u^{1/weight}``:

* every cluster of the base KG receives a key; the clusters with the largest
  keys form the *reservoir* and are the only ones annotated (at most ``m``
  triples each, as in TWCS);
* when an insertion batch ``Δ`` arrives, each per-entity insertion set ``Δ_e``
  is treated as a brand-new cluster (so weights stay constant), receives a key
  ``u^{1/|Δ_e|}`` and replaces the minimum-key reservoir item whenever its key
  is larger — the replacement step of Algorithm 1;
* the accuracy estimate is the mean of the per-cluster sample accuracies of
  the clusters currently in the reservoir, tracked with a running
  (Welford-style) accumulator that supports removal, so the margin-of-error
  check after each refresh/growth step is O(1) instead of a fresh O(n) pass
  over the reservoir;
* if, after the stochastic refresh, the margin of error exceeds the threshold,
  the reservoir is grown: the not-yet-annotated cluster with the next-largest
  key is pulled in and annotated, exactly as if the static evaluation had
  asked for one more first-stage draw.

Keeping the keys of *all* clusters (annotated or not) makes the reservoir
nested in its capacity, so growing it later never contradicts an earlier
sampling decision.

On the position surface (``surface="position"``) clusters are addressed as
CSR rows of the frozen base graph or as clusters of an appended update
segment; annotation resolves boolean label arrays by integer position and
cost is charged through the position account, so the whole update loop runs
without materialising a single Triple.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.core.result import EvaluationReport
from repro.evolving.base import IncrementalEvaluator, UpdateEvaluation
from repro.kg.triple import Triple
from repro.kg.updates import UpdateBatch
from repro.labels.oracle import LabelOracle
from repro.obs import metrics as obs_metrics
from repro.sampling.base import Estimate
from repro.sampling.segment import PositionSegment
from repro.stats.running import RunningMean

__all__ = ["ReservoirIncrementalEvaluator"]


@dataclass
class _ReservoirEntry:
    """One annotated cluster currently in the reservoir (object surface)."""

    cluster_key: str
    key: float
    weight: float
    triples: tuple[Triple, ...]
    accuracy: float


@dataclass
class _PositionEntry:
    """One annotated cluster currently in the reservoir (position surface).

    ``source`` addresses the cluster's population: ``(None, row)`` for a base
    graph CSR row, ``(segment, cluster)`` for a cluster of an appended update
    segment.
    """

    source: tuple[PositionSegment | None, int]
    key: float
    weight: float
    positions: np.ndarray
    accuracy: float

    @property
    def num_triples(self) -> int:
        return int(self.positions.shape[0])


class ReservoirIncrementalEvaluator(IncrementalEvaluator):
    """Incremental evaluation via weighted reservoir sampling (Algorithm 1)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = np.random.default_rng(self.seed)
        # Annotated clusters, as a min-heap on the A-Res key.
        self._reservoir: list[tuple[float, int, object]] = []
        # Clusters that received a key but were never annotated, as a max-heap
        # (negated keys); used when the reservoir needs to grow.
        self._candidates: list[tuple] = []
        self._tiebreak = 0
        self._replacements_total = 0
        # Running per-cluster accuracy stats of the current reservoir, so the
        # margin-of-error check never recomputes over all entries.
        self._stats = RunningMean()
        self._stats_triples = 0

    # ------------------------------------------------------------------ #
    # Key handling
    # ------------------------------------------------------------------ #
    def _draw_key(self, weight: float) -> float:
        uniform = max(float(self._rng.random()), np.finfo(float).tiny)
        return float(uniform ** (1.0 / weight))

    def _draw_keys(self, weights: np.ndarray) -> np.ndarray:
        """Vectorised twin of :meth:`_draw_key`: one A-Res key per weight."""
        uniforms = np.maximum(self._rng.random(weights.shape[0]), np.finfo(float).tiny)
        return uniforms ** (1.0 / weights)

    def _next_tiebreak(self) -> int:
        self._tiebreak += 1
        return self._tiebreak

    # ------------------------------------------------------------------ #
    # Reservoir bookkeeping shared by both surfaces
    # ------------------------------------------------------------------ #
    def _push_reservoir(self, key: float, entry, accuracy: float, num_triples: int) -> None:
        heapq.heappush(self._reservoir, (key, self._next_tiebreak(), entry))
        self._stats.add(accuracy)
        self._stats_triples += num_triples

    def _pop_reservoir_min(self):
        key, tiebreak, entry = heapq.heappop(self._reservoir)
        self._stats.remove(entry.accuracy)
        self._stats_triples -= (
            entry.num_triples if isinstance(entry, _PositionEntry) else len(entry.triples)
        )
        obs_metrics.counter("reservoir_evictions_total").inc()
        return entry

    # ------------------------------------------------------------------ #
    # Object surface: annotation of one cluster (second stage of TWCS)
    # ------------------------------------------------------------------ #
    def _annotate_cluster(self, triples: tuple[Triple, ...]) -> tuple[tuple[Triple, ...], float]:
        take = min(len(triples), self.second_stage_size)
        chosen_indices = self._rng.choice(len(triples), size=take, replace=False)
        chosen = tuple(triples[int(i)] for i in chosen_indices)
        result = self.annotator.annotate_triples(chosen)
        accuracy = sum(1 for t in chosen if result.labels[t]) / len(chosen)
        return chosen, accuracy

    def _insert_annotated(
        self, cluster_key: str, key: float, weight: float, triples: tuple[Triple, ...]
    ) -> None:
        sampled, accuracy = self._annotate_cluster(triples)
        entry = _ReservoirEntry(
            cluster_key=cluster_key,
            key=key,
            weight=weight,
            triples=sampled,
            accuracy=accuracy,
        )
        self._push_reservoir(key, entry, accuracy, len(sampled))

    def _push_candidate(
        self, cluster_key: str, key: float, weight: float, triples: tuple[Triple, ...]
    ) -> None:
        heapq.heappush(
            self._candidates, (-key, self._next_tiebreak(), cluster_key, weight, triples)
        )

    # ------------------------------------------------------------------ #
    # Position surface: annotation of one cluster
    # ------------------------------------------------------------------ #
    def _cluster_population(self, source: tuple[PositionSegment | None, int]) -> np.ndarray:
        segment, index = source
        if segment is None:
            return self.evolving.base.cluster_positions_by_row(index)
        return segment.cluster_positions(index)

    def _entity_key_of(self, source: tuple[PositionSegment | None, int]) -> int:
        segment, index = source
        if segment is None:
            # Base rows coincide with the evolved graph's rows on every
            # backend (first-seen order is preserved by copy and delta view).
            return index
        return self.evolving.current.entity_row(segment.subjects[index])

    def _insert_annotated_positions(
        self,
        source: tuple[PositionSegment | None, int],
        key: float,
        weight: float,
        positions: np.ndarray | None = None,
    ) -> None:
        """Annotate one cluster and place it in the reservoir.

        ``positions`` carries a previously annotated second-stage sample (an
        evicted entry re-entering through the candidate heap): it is reused
        verbatim — the account's dedup makes re-annotation free and the
        accuracy unchanged — mirroring the object surface, which stores the
        sampled triples in the candidate for the same reason.
        """
        assert self._labels is not None and self._account is not None
        if positions is None:
            population = np.asarray(self._cluster_population(source))
            if population.shape[0] > self.second_stage_size:
                chosen = self._rng.choice(
                    population.shape[0], size=self.second_stage_size, replace=False
                )
                positions = population[chosen]
            else:
                positions = population
        accuracy = float(self._labels[positions].mean())
        self._account.charge(self._entity_key_of(source), positions)
        entry = _PositionEntry(
            source=source, key=key, weight=weight, positions=positions, accuracy=accuracy
        )
        self._push_reservoir(key, entry, accuracy, int(positions.shape[0]))

    def _push_position_candidate(
        self,
        source: tuple[PositionSegment | None, int],
        key: float,
        weight: float,
        positions: np.ndarray | None = None,
    ) -> None:
        heapq.heappush(
            self._candidates, (-key, self._next_tiebreak(), weight, source, positions)
        )

    # ------------------------------------------------------------------ #
    # Growth (dispatches on surface)
    # ------------------------------------------------------------------ #
    def _grow_reservoir(self, count: int) -> int:
        """Annotate the ``count`` highest-key candidates; return how many were added."""
        if self.position_mode and self.parallel_mode:
            return self._grow_reservoir_parallel(count)
        added = 0
        while added < count and self._candidates:
            candidate = heapq.heappop(self._candidates)
            if self.position_mode:
                negated_key, _, weight, source, positions = candidate
                self._insert_annotated_positions(source, -negated_key, weight, positions)
            else:
                negated_key, _, cluster_key, weight, triples = candidate
                self._insert_annotated(cluster_key, -negated_key, weight, triples)
            added += 1
        return added

    def _grow_reservoir_parallel(self, count: int) -> int:
        """Sharded growth: fan the batch's second-stage draws across workers.

        The ``count`` highest-key candidates are popped first; the base-row
        candidates that still need a second-stage sample are drawn in one
        :meth:`~repro.sampling.parallel.ParallelSamplingExecutor.sample_rows`
        fan-out (per-shard spawned streams seeded off the main stream), then
        every candidate is inserted in key order — so the reservoir contents
        are deterministic for a given shard plan regardless of worker count
        or scheduling.  Segment-sourced candidates keep the serial path.
        """
        popped = []
        while len(popped) < count and self._candidates:
            popped.append(heapq.heappop(self._candidates))
        if not popped:
            return 0
        pending = [
            (index, candidate)
            for index, candidate in enumerate(popped)
            if candidate[3][0] is None and candidate[4] is None
        ]
        sampled: dict[int, np.ndarray] = {}
        if pending:
            rows = np.fromiter(
                (candidate[3][1] for _, candidate in pending),
                dtype=np.int64,
                count=len(pending),
            )
            entropy = int(self._rng.integers(np.iinfo(np.int64).max))
            batches = self.executor().sample_rows(rows, self.second_stage_size, entropy)
            for (index, _), positions in zip(pending, batches):
                sampled[index] = positions
        for index, (negated_key, _, weight, source, positions) in enumerate(popped):
            self._insert_annotated_positions(
                source, -negated_key, weight, sampled.get(index, positions)
            )
        return len(popped)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def _current_estimate(self) -> Estimate:
        n = self._stats.count
        if n == 0:
            return Estimate(value=0.0, std_error=math.inf, num_units=0, num_triples=0)
        return Estimate(
            value=self._stats.mean,
            std_error=self._stats.std_error,
            num_units=n,
            num_triples=self._stats_triples,
        )

    def _satisfy_quality(self) -> tuple[Estimate, int]:
        """Grow the reservoir until the MoE target is met; return (estimate, iterations)."""
        config = self.config
        iterations = 0
        while True:
            estimate = self._current_estimate()
            enough = estimate.num_units >= config.min_units
            if enough and estimate.satisfies(config.moe_target, config.confidence_level):
                break
            if config.max_units is not None and estimate.num_units >= config.max_units:
                break
            if not self._candidates:
                break
            self._grow_reservoir(config.batch_size)
            iterations += 1
        return self._current_estimate(), iterations

    def _build_report(
        self,
        estimate: Estimate,
        iterations: int,
        totals_before: tuple[float, int, int],
    ) -> EvaluationReport:
        triples, entities, cost_seconds = self._report_fields(totals_before)
        return EvaluationReport(
            estimate=estimate,
            confidence_level=self.config.confidence_level,
            moe_target=self.config.moe_target,
            satisfied=estimate.num_units >= self.config.min_units
            and estimate.satisfies(self.config.moe_target, self.config.confidence_level),
            iterations=iterations,
            num_units=estimate.num_units,
            num_triples_annotated=triples,
            num_entities_identified=entities,
            annotation_cost_seconds=cost_seconds,
        )

    # ------------------------------------------------------------------ #
    # IncrementalEvaluator interface
    # ------------------------------------------------------------------ #
    def evaluate_base(self) -> UpdateEvaluation:
        """Key every base cluster, annotate the top-key ones until the MoE target holds."""
        totals_before = self._cost_totals()
        if self.position_mode:
            sizes = self.evolving.base.cluster_size_array().astype(float)
            keys = self._draw_keys(sizes)
            # Bulk-build the candidate heap: O(N) heapify instead of N pushes.
            assert not self._candidates
            self._candidates = [
                (-key, row + 1, weight, (None, row), None)
                for row, (key, weight) in enumerate(zip(keys.tolist(), sizes.tolist()))
            ]
            heapq.heapify(self._candidates)
            self._tiebreak = sizes.shape[0]
        else:
            for cluster in self.evolving.base.clusters():
                key = self._draw_key(float(cluster.size))
                self._push_candidate(cluster.entity_id, key, float(cluster.size), cluster.triples)
        estimate, iterations = self._satisfy_quality()
        report = self._build_report(estimate, iterations, totals_before)
        return self._record("base", report)

    def apply_update(self, batch: UpdateBatch, batch_oracle: LabelOracle) -> UpdateEvaluation:
        """Algorithm 1: stochastically refresh the reservoir, then re-check quality."""
        if not self._reservoir:
            raise RuntimeError("evaluate_base() must be called before apply_update()")
        totals_before = self._cost_totals()

        replacements = 0
        if self.position_mode:
            segment = self._append_update(batch, batch_oracle)
            sizes = segment.sizes().astype(float)
            if sizes.shape[0]:
                keys = self._draw_keys(sizes)
                reservoir = self._reservoir
                candidates = self._candidates
                heappush = heapq.heappush
                for index, (key, weight) in enumerate(zip(keys.tolist(), sizes.tolist())):
                    if key > reservoir[0][0]:
                        evicted = self._pop_reservoir_min()
                        self._push_position_candidate(
                            evicted.source, evicted.key, evicted.weight, evicted.positions
                        )
                        self._insert_annotated_positions((segment, index), key, weight)
                        replacements += 1
                    else:
                        self._tiebreak += 1
                        heappush(
                            candidates, (-key, self._tiebreak, weight, (segment, index), None)
                        )
        else:
            self._register_update(batch, batch_oracle)
            for cluster_key, insertion in batch.entity_insertions().items():
                weight = float(insertion.size)
                key = self._draw_key(weight)
                smallest_key = self._reservoir[0][0]
                if key > smallest_key:
                    # Replace the minimum-key cluster (its annotations are paid
                    # for but no longer contribute to the estimator), as in
                    # Algorithm 1.
                    evicted = self._pop_reservoir_min()
                    self._push_candidate(
                        evicted.cluster_key, evicted.key, evicted.weight, evicted.triples
                    )
                    self._insert_annotated(cluster_key, key, weight, insertion.triples)
                    replacements += 1
                else:
                    self._push_candidate(cluster_key, key, weight, insertion.triples)
        self._replacements_total += replacements

        estimate, iterations = self._satisfy_quality()
        report = self._build_report(estimate, iterations, totals_before)
        return self._record(batch.batch_id, report)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def reservoir_size(self) -> int:
        """Number of annotated clusters currently in the reservoir."""
        return len(self._reservoir)

    @property
    def total_replacements(self) -> int:
        """Total reservoir replacements performed across all update batches."""
        return self._replacements_total
